//! The probe EDA kernels emit events into.

use crate::{BranchPredictor, CacheSim, CounterSet, MachineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// Collects events from an instrumented kernel: memory accesses flow
/// through a cache hierarchy sized for the target machine, branches
/// through a bimodal predictor, and floating-point work is attributed to
/// AVX hardware when the machine supports it.
///
/// One probe per thread; merge per-thread [`CounterSet`]s with
/// [`PerfProbe::absorb`] after a parallel section (cache/predictor state
/// is per-thread, matching private L1s).
#[derive(Debug, Clone)]
pub struct PerfProbe {
    counters: CounterSet,
    cache: CacheSim,
    branch: BranchPredictor,
    avx_available: bool,
}

/// The final result of a probed run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// All counted events with cache/branch misses folded in.
    pub counters: CounterSet,
}

impl PerfProbe {
    /// Probe with a cache hierarchy and AVX capability matching `machine`.
    #[must_use]
    pub fn for_machine(machine: &MachineConfig) -> Self {
        Self {
            counters: CounterSet::default(),
            cache: CacheSim::for_vcpus(machine.vcpus),
            branch: BranchPredictor::new(4096),
            avx_available: machine.avx,
        }
    }

    /// Probe with an explicit cache hierarchy (used by cache-model
    /// ablations).
    #[must_use]
    pub fn with_cache(cache: CacheSim, avx_available: bool) -> Self {
        Self {
            counters: CounterSet::default(),
            cache,
            branch: BranchPredictor::new(4096),
            avx_available,
        }
    }

    /// Count `n` generic retired instructions.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Simulate a memory read at byte address `addr`.
    #[inline]
    pub fn read(&mut self, addr: u64) {
        self.counters.instructions += 1;
        self.counters.cache_refs += 1;
        if !self.cache.access(addr) {
            self.counters.l1_misses += 1;
        }
    }

    /// Simulate a memory write at byte address `addr` (write-allocate).
    #[inline]
    pub fn write(&mut self, addr: u64) {
        self.read(addr);
    }

    /// Simulate a conditional branch at site `pc` with outcome `taken`.
    #[inline]
    pub fn branch(&mut self, pc: u64, taken: bool) {
        self.counters.instructions += 1;
        self.counters.branches += 1;
        if !self.branch.predict_and_update(pc, taken) {
            self.counters.branch_misses += 1;
        }
    }

    /// Count `n` iterations of a well-predicted loop: the back-edge
    /// branch is taken every iteration and mispredicted only at loop
    /// exit. Engines call this once per loop with the trip count, so
    /// the branch population reflects real control flow instead of only
    /// the data-dependent branches.
    #[inline]
    pub fn loop_branches(&mut self, n: u64) {
        self.counters.instructions += n;
        self.counters.branches += n;
        // Loop predictors capture short trip counts; long loops pay an
        // amortized exit/alias miss.
        self.counters.branch_misses += n / 48;
    }

    /// Count `n` floating-point operations; vectorizable work lands on
    /// AVX hardware when available, otherwise executes as scalar FLOPs.
    #[inline]
    pub fn fp(&mut self, n: u64, vectorizable: bool) {
        self.counters.instructions += n;
        if vectorizable && self.avx_available {
            self.counters.avx_ops += n;
        } else {
            self.counters.flops += n;
        }
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut c = self.counters;
        // Fold LLC misses from the hierarchy (kept there to avoid a
        // second counter increment on the hot path).
        c.llc_misses = self.cache.llc_misses();
        c
    }

    /// Merge counters collected by another probe (e.g. a worker thread).
    pub fn absorb(&mut self, other: CounterSet) {
        self.counters += other;
    }

    /// Whether this probe attributes vector FP work to AVX hardware.
    #[must_use]
    pub fn avx_available(&self) -> bool {
        self.avx_available
    }

    /// Finish the run and produce the report.
    #[must_use]
    pub fn finish(self) -> PerfReport {
        let counters = self.counters();
        PerfReport { counters }
    }
}

/// A thread-safe probe handle for sections where worker threads share one
/// collector; coarse-grained, so workers should batch their events.
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::{MachineConfig, PerfProbe, SharedProbe};
///
/// let shared = SharedProbe::new(PerfProbe::for_machine(&MachineConfig::vcpus(4)));
/// let handle = shared.clone();
/// std::thread::spawn(move || handle.lock().instr(100)).join().unwrap();
/// assert_eq!(shared.lock().counters().instructions, 100);
/// ```
#[derive(Debug, Clone)]
pub struct SharedProbe(Arc<Mutex<PerfProbe>>);

impl SharedProbe {
    /// Wrap a probe for sharing across threads.
    #[must_use]
    pub fn new(probe: PerfProbe) -> Self {
        Self(Arc::new(Mutex::new(probe)))
    }

    /// Lock the inner probe.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, PerfProbe> {
        self.0.lock()
    }

    /// Unwrap if this is the last handle, else return the counters only.
    #[must_use]
    pub fn into_report(self) -> PerfReport {
        match Arc::try_unwrap(self.0) {
            Ok(m) => m.into_inner().finish(),
            Err(arc) => PerfReport {
                counters: arc.lock().counters(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> PerfProbe {
        PerfProbe::for_machine(&MachineConfig::vcpus(1))
    }

    #[test]
    fn reads_flow_through_cache() {
        let mut p = probe();
        p.read(0);
        p.read(0);
        p.read(64 * 1024 * 1024); // far away -> new line
        let c = p.counters();
        assert_eq!(c.cache_refs, 3);
        assert_eq!(c.l1_misses, 2);
        assert_eq!(c.llc_misses, 2);
        assert_eq!(c.instructions, 3);
    }

    #[test]
    fn fp_attribution_depends_on_avx() {
        let mut with = PerfProbe::for_machine(&MachineConfig::vcpus(1));
        with.fp(10, true);
        with.fp(5, false);
        let c = with.counters();
        assert_eq!(c.avx_ops, 10);
        assert_eq!(c.flops, 5);

        let mut without =
            PerfProbe::for_machine(&MachineConfig { avx: false, ..MachineConfig::vcpus(1) });
        without.fp(10, true);
        let c = without.counters();
        assert_eq!(c.avx_ops, 0);
        assert_eq!(c.flops, 10);
    }

    #[test]
    fn absorb_merges_worker_counters() {
        let mut main = probe();
        let mut worker = probe();
        worker.instr(50);
        worker.branch(1, true);
        main.absorb(worker.counters());
        assert_eq!(main.counters().instructions, 51);
        assert_eq!(main.counters().branches, 1);
    }

    #[test]
    fn finish_reports_llc() {
        let mut p = probe();
        for i in 0..1000u64 {
            p.read(i * 4096); // pathological stride
        }
        let report = p.finish();
        assert!(report.counters.llc_misses > 0);
    }
}
