//! Set-associative cache simulator (L1 + last-level).

use serde::{Deserialize, Serialize};

/// One level of set-associative cache with LRU replacement.
///
/// Addresses are byte addresses; the simulator tracks tags only, so it is
/// cheap enough for the EDA kernels to feed every (sampled) access.
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::Cache;
///
/// let mut l1 = Cache::new(32 * 1024, 64, 8);
/// assert!(!l1.access(0x40));      // cold miss
/// assert!(l1.access(0x40));       // now resident
/// assert!(l1.access(0x44));       // same line
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `sets x ways` tag array; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    /// Replacement policy: LRU (true) or deterministic pseudo-random
    /// (false). Large shared LLCs behave closer to random replacement,
    /// which also avoids LRU's all-or-nothing cliff on cyclic scans.
    lru: bool,
}

impl Cache {
    /// Create a cache of `size_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or size not divisible into at least one set).
    #[must_use]
    pub fn new(size_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line size must be a power of two >= 8"
        );
        let lines = size_bytes / line_bytes;
        let sets = (lines / ways).max(1);
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
            lru: true,
        }
    }

    /// Same geometry with deterministic pseudo-random replacement.
    #[must_use]
    pub fn new_random_replacement(size_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        Self {
            lru: false,
            ..Self::new(size_bytes, line_bytes, ways)
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        (self.sets * self.ways) << self.line_shift
    }

    /// Simulate one access; returns `true` on hit. Misses install the
    /// line (allocate-on-miss, LRU eviction).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.tick;
            return true;
        }
        // Miss: evict per policy. Prefer invalid ways first.
        let victim = if let Some(w) = (0..self.ways).find(|&w| self.tags[base + w] == u64::MAX) {
            w
        } else if self.lru {
            (0..self.ways)
                .min_by_key(|&w| self.stamps[base + w])
                .expect("ways > 0")
        } else {
            // Deterministic hash of (tick, line): pseudo-random victim.
            ((self.tick ^ line).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.ways
        };
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Drop all cached lines.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

/// A two-level (L1 + LLC) hierarchy with per-access statistics.
///
/// The LLC capacity models the paper's observation that more vCPUs come
/// with a larger share of the host's last-level cache: construct via
/// [`CacheSim::for_vcpus`] to get a per-vCPU LLC slice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSim {
    l1: Cache,
    llc: Cache,
    accesses: u64,
    l1_misses: u64,
    llc_misses: u64,
}

impl CacheSim {
    /// Build from explicit level geometries.
    #[must_use]
    pub fn new(l1: Cache, llc: Cache) -> Self {
        Self {
            l1,
            llc,
            accesses: 0,
            l1_misses: 0,
            llc_misses: 0,
        }
    }

    /// Hierarchy sized for a VM with `vcpus` virtual CPUs: a private
    /// 32 KiB L1, and an LLC slice that grows *sub-linearly* with the
    /// vCPU count — the hypervisor carves one physical last-level cache
    /// among tenants, so a 1-vCPU tenant still sees a few MiB while an
    /// 8-vCPU tenant gets roughly the paper's Xeon-class share.
    #[must_use]
    pub fn for_vcpus(vcpus: u32) -> Self {
        let vcpus = (vcpus as usize).max(1);
        let llc_bytes = 2_621_440 + vcpus * 393_216; // ~2.9 MiB .. ~5.6 MiB
        Self::new(
            Cache::new(32 * 1024, 64, 8),
            Cache::new_random_replacement(llc_bytes, 64, 16),
        )
    }

    /// Simulate one access through both levels; returns `true` on L1 hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        if self.l1.access(addr) {
            return true;
        }
        self.l1_misses += 1;
        if !self.llc.access(addr) {
            self.llc_misses += 1;
        }
        false
    }

    /// Number of simulated accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that missed L1.
    #[must_use]
    pub fn l1_misses(&self) -> u64 {
        self.l1_misses
    }

    /// Accesses that missed both levels.
    #[must_use]
    pub fn llc_misses(&self) -> u64 {
        self.llc_misses
    }

    /// L1 miss ratio.
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.accesses as f64
        }
    }

    /// Reset statistics and contents.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.llc.flush();
        self.accesses = 0;
        self.l1_misses = 0;
        self.llc_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 64, 2);
        assert!(!c.access(0));
        for _ in 0..10 {
            assert!(c.access(0));
        }
    }

    #[test]
    fn capacity_matches_geometry() {
        let c = Cache::new(32 * 1024, 64, 8);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, 1 set of interest: lines mapping to the same set.
        let mut c = Cache::new(128, 64, 2); // 1 set, 2 ways
        assert!(!c.access(0x000)); // line 0
        assert!(!c.access(0x040)); // line 1
        assert!(c.access(0x000)); // refresh line 0
        assert!(!c.access(0x080)); // line 2 evicts line 1 (LRU)
        assert!(c.access(0x000), "line 0 survived");
        assert!(!c.access(0x040), "line 1 was evicted");
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = Cache::new(1024, 64, 2);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn streaming_larger_than_cache_misses() {
        let mut c = Cache::new(1024, 64, 2);
        // Touch 64 distinct lines twice: second pass still misses because
        // the working set exceeds capacity.
        let mut misses = 0;
        for pass in 0..2 {
            for i in 0..64u64 {
                if !c.access(i * 64) {
                    misses += 1;
                }
                let _ = pass;
            }
        }
        assert_eq!(misses, 128, "pure streaming never hits");
    }

    #[test]
    fn hierarchy_counts_levels_separately() {
        let mut sim = CacheSim::for_vcpus(1);
        sim.access(0);
        sim.access(0);
        assert_eq!(sim.accesses(), 2);
        assert_eq!(sim.l1_misses(), 1);
        assert_eq!(sim.llc_misses(), 1);
        assert!((sim.l1_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l1_miss_can_hit_llc() {
        let mut sim = CacheSim::new(Cache::new(128, 64, 2), Cache::new(64 * 1024, 64, 16));
        // Fill beyond L1 but within LLC.
        for i in 0..16u64 {
            sim.access(i * 64);
        }
        let llc_before = sim.llc_misses();
        // Re-touch an early line: misses L1 (evicted) but hits LLC.
        sim.access(0);
        assert_eq!(sim.llc_misses(), llc_before);
        assert!(sim.l1_misses() > 0);
    }

    #[test]
    fn more_vcpus_mean_more_llc() {
        let a = CacheSim::for_vcpus(1);
        let b = CacheSim::for_vcpus(8);
        assert!(b.llc.capacity_bytes() > a.llc.capacity_bytes());
    }

    #[test]
    fn reset_zeroes_stats() {
        let mut sim = CacheSim::for_vcpus(1);
        sim.access(0);
        sim.reset();
        assert_eq!(sim.accesses(), 0);
        assert!(!sim.access(0), "contents flushed too");
    }
}
