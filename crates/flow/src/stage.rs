//! Stage identity and reporting.

use eda_cloud_perf::{CounterSet, StageWork};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four EDA applications the paper characterizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StageKind {
    /// Logic synthesis (AIG optimization + technology mapping).
    Synthesis,
    /// Analytical placement.
    Placement,
    /// Global routing.
    Routing,
    /// Static timing analysis.
    Sta,
}

impl StageKind {
    /// All stages in flow order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Synthesis,
        StageKind::Placement,
        StageKind::Routing,
        StageKind::Sta,
    ];
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageKind::Synthesis => "synthesis",
            StageKind::Placement => "placement",
            StageKind::Routing => "routing",
            StageKind::Sta => "sta",
        };
        f.write_str(s)
    }
}

/// What one stage run produced, performance-wise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Which application ran.
    pub kind: StageKind,
    /// Simulated runtime in seconds on the context's machine.
    pub runtime_secs: f64,
    /// Raw event counters collected during the run.
    pub counters: CounterSet,
    /// The derived serial/parallel/memory work split.
    pub work: StageWork,
    /// Effective parallel fraction the stage achieved on this machine.
    pub parallel_fraction: f64,
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1}s  br-miss {:.1}%  cache-miss {:.1}%  avx {:.1}%  (p={:.2})",
            self.kind,
            self.runtime_secs,
            100.0 * self.counters.branch_miss_rate(),
            100.0 * self.counters.cache_miss_rate(),
            100.0 * self.counters.avx_share(),
            self.parallel_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display_lowercase() {
        assert_eq!(StageKind::Synthesis.to_string(), "synthesis");
        assert_eq!(StageKind::Sta.to_string(), "sta");
        assert_eq!(StageKind::ALL.len(), 4);
    }

    #[test]
    fn report_display_has_metrics() {
        let r = StageReport {
            kind: StageKind::Routing,
            runtime_secs: 12.5,
            counters: CounterSet::default(),
            work: StageWork::default(),
            parallel_fraction: 0.9,
        };
        let s = r.to_string();
        assert!(s.contains("routing"));
        assert!(s.contains("12.5s"));
    }
}
