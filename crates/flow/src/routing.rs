//! Global routing: grid-based maze search with negotiated congestion and
//! rip-up-and-reroute.
//!
//! The paper attributes routing's counter signature — the highest
//! branch-miss rate of the four stages — to "graph search algorithms
//! [that] encompass a large portion of conditional statements that
//! cannot be avoided" and to rip-up-and-reroute halting continuous
//! execution; and its excellent vCPU scaling to "nets in independent
//! grid cells [that] can be routed in parallel with no conflict".
//!
//! This engine is that algorithm: placement positions are snapped onto a
//! capacitated routing grid, nets are decomposed into two-pin
//! connections, each connection is maze-routed (A*) under a
//! PathFinder-style negotiated congestion cost, and only the connections
//! crossing overflowed edges are ripped up and rerouted in later
//! iterations. Connections whose bounding box fits inside one horizontal
//! strip are *local* and are really routed on worker threads (disjoint
//! edge sets, merged by addition); connections crossing strips are
//! routed in a sequential global phase. Small designs have
//! proportionally more crossing connections and fewer local ones — which
//! is exactly why their speedup plateaus in Figure 3.

use crate::{ExecContext, FlowError, Placement, StageKind, StageReport};
use eda_cloud_netlist::{NetDriver, NetSink, Netlist};
use eda_cloud_perf::{CounterSet, PerfProbe, StageWork};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Summary of a routing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingResult {
    /// Grid dimension (the grid is `grid x grid`).
    pub grid: usize,
    /// Total routed wirelength in grid-edge units.
    pub wirelength: u64,
    /// Edges still over capacity after the final iteration.
    pub overflowed_edges: usize,
    /// Rip-up-and-reroute iterations executed in the global phase.
    pub iterations: usize,
    /// Two-pin connections routed entirely inside one strip (parallel).
    pub local_connections: usize,
    /// Connections spanning strips (routed in the serial phase).
    pub global_connections: usize,
    /// Wall-clock seconds of the real threaded routing phase (measured,
    /// not simulated; for the `fig3 --measured` ablation).
    pub measured_wall_secs: f64,
}

impl RoutingResult {
    /// Fraction of connections that were routable in parallel.
    #[must_use]
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_connections + self.global_connections;
        if total == 0 {
            0.0
        } else {
            self.local_connections as f64 / total as f64
        }
    }
}

/// The global-routing engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    /// Minimum tracks per grid edge (raised automatically when the
    /// demand estimate requires it).
    capacity: u16,
    /// Maximum rip-up-and-reroute iterations.
    max_iterations: usize,
    /// Fail with [`FlowError::Unroutable`] if more than this fraction of
    /// edges still overflow at the end.
    overflow_tolerance: f64,
}

impl Router {
    /// Router with defaults (8 tracks/edge minimum, 6 negotiation
    /// iterations, 2% overflow tolerance).
    #[must_use]
    pub fn new() -> Self {
        Self {
            capacity: 8,
            max_iterations: 6,
            overflow_tolerance: 0.02,
        }
    }

    /// Override the minimum edge capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(mut self, capacity: u16) -> Self {
        assert!(capacity > 0, "edge capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Route the placed netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyDesign`] for a cell-less netlist and
    /// [`FlowError::Unroutable`] if overflow exceeds the tolerance after
    /// the final iteration.
    pub fn run(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        ctx: &ExecContext,
    ) -> Result<(RoutingResult, StageReport), FlowError> {
        let n_cells = netlist.cell_count();
        if n_cells == 0 {
            return Err(FlowError::EmptyDesign);
        }
        let mut probe = ctx.probe();

        // Grid dimension scales with design size.
        let grid = ((n_cells as f64).sqrt() * 0.8).ceil().clamp(8.0, 192.0) as usize;
        let to_cell = |x: f64, y: f64| -> (u16, u16) {
            let gx = (x / placement.die_um.0 * grid as f64).clamp(0.0, grid as f64 - 1.0);
            let gy = (y / placement.die_um.1 * grid as f64).clamp(0.0, grid as f64 - 1.0);
            (gx as u16, gy as u16)
        };

        // Two-pin connections via star decomposition.
        let mut connections: Vec<Connection> = Vec::new();
        for net in netlist.nets() {
            let src = match net.driver {
                Some(NetDriver::Cell(c)) => {
                    let (x, y) = placement.cell_pos(c as usize);
                    to_cell(x, y)
                }
                Some(NetDriver::PrimaryInput(k)) => {
                    let (x, y) = placement.pi_pins[k as usize];
                    to_cell(x, y)
                }
                None => continue,
            };
            for sink in &net.sinks {
                let dst = match *sink {
                    NetSink::CellPin { cell, .. } => {
                        let (x, y) = placement.cell_pos(cell as usize);
                        to_cell(x, y)
                    }
                    NetSink::PrimaryOutput(k) => {
                        let (x, y) = placement.po_pins[k as usize];
                        to_cell(x, y)
                    }
                };
                if src != dst {
                    connections.push(Connection { src, dst });
                }
            }
        }

        // Track capacity adapts to expected demand: a real global router
        // sizes its supply to the design's routing demand estimate.
        let demand: u64 = connections
            .iter()
            .map(|c| u64::from(c.src.0.abs_diff(c.dst.0)) + u64::from(c.src.1.abs_diff(c.dst.1)))
            .sum();
        let edges = (2 * grid * grid) as f64;
        // I/O pins concentrate on the die edges; the boundary columns
        // need tracks proportional to pin density (real floorplans
        // widen routing resources near the pad ring).
        let pin_density = placement.pi_pins.len().max(placement.po_pins.len()) as f64 / grid as f64;
        let capacity = self
            .capacity
            .max((demand as f64 / edges * 2.5).ceil() as u16)
            .max((pin_density * 2.0).ceil() as u16);

        // Assign every connection to the horizontal strip of its
        // source: dataflow runs PI (left) to PO (right), so nets are
        // long in x and short in y, and strips maximize the share of
        // connections whose entire search stays inside one strip.
        let threads = ctx.threads();
        // Don't over-partition tiny designs: a worker needs enough
        // connections to amortize its setup, so small workloads use
        // fewer strips than vCPUs (this is the Figure-3 plateau — the
        // extra vCPUs simply have no independent work to do).
        let regions = threads.min(connections.len() / 96).max(1);
        let region_of = |y: u16| (y as usize * regions / grid).min(regions - 1);
        let mut buckets: Vec<Vec<Connection>> = vec![Vec::new(); regions];
        let mut local_connections = 0usize;
        let mut global_connections = 0usize;
        for c in &connections {
            let (r1, r2) = (region_of(c.src.1), region_of(c.dst.1));
            probe.branch(0xC0, r1 == r2);
            if r1 == r2 {
                local_connections += 1;
            } else {
                global_connections += 1;
            }
            buckets[r1].push(*c);
        }

        // PathFinder-style parallel negotiation: every iteration routes
        // the pending connections in parallel (workers see a stale
        // snapshot of the committed usage plus their own delta), then a
        // cheap serial phase merges deltas, finds overflowed edges,
        // bumps their history, and rips up only the offending
        // connections for the next round. This mirrors how production
        // parallel routers scale: the maze searches dominate and they
        // all run concurrently; only the merge/overflow scan is serial.
        let wall_start = std::time::Instant::now();
        let mut state = GridState::new(grid, capacity);
        let mut routed: Vec<(Connection, Vec<u32>)> =
            connections.iter().map(|c| (*c, Vec::new())).collect();
        let mut pending: Vec<usize> = (0..routed.len()).collect();
        let mut worker_counters: Vec<CounterSet> = Vec::new();
        let mut iterations = 0usize;
        let negotiate_span = ctx.span.child("negotiate");
        for round in 0..self.max_iterations.max(1) {
            iterations += 1;
            let round_span = negotiate_span.child(&format!("round/{round}"));
            round_span.counter("pending", pending.len() as u64);
            // Partition pending connections by source strip.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); regions];
            for &i in &pending {
                buckets[region_of(routed[i].0.src.1)].push(i);
            }
            probe.instr(pending.len() as u64);
            // Batched parallel routing round. The region partition is
            // fixed by the simulated machine; how many *host* threads
            // chew through the buckets is an independent knob
            // (`ctx.route_workers`): worker `t` takes every
            // `workers`-th non-empty bucket. Each bucket still routes
            // against the same committed-usage snapshot and produces
            // its own delta and counters, and the serial merge below
            // re-sorts outcomes into canonical bucket-index order — so
            // results are bit-identical at any worker count.
            let background = state.usage.clone();
            let history = state.history.clone();
            let routed_view = &routed;
            // One bucket's round output: routed (net index, path) pairs,
            // its private usage delta, and its probe counters.
            type BucketOutcome = (Vec<(usize, Vec<u32>)>, GridDelta, CounterSet);
            let nonempty: Vec<(usize, &Vec<usize>)> = buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .collect();
            let workers = if ctx.route_workers == 0 {
                nonempty.len()
            } else {
                ctx.route_workers
            }
            .clamp(1, nonempty.len().max(1));
            let mut results: Vec<(usize, BucketOutcome)> = Vec::new();
            if !nonempty.is_empty() {
                crossbeam::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|t| {
                            let machine = ctx.machine;
                            let background = &background;
                            let history = &history;
                            let nonempty = &nonempty;
                            scope.spawn(move |_| {
                                let mut outcomes: Vec<(usize, BucketOutcome)> = Vec::new();
                                for &(bi, bucket) in nonempty.iter().skip(t).step_by(workers) {
                                    let mut delta = GridState::with_background(
                                        grid, capacity, background, history,
                                    );
                                    let mut wprobe = PerfProbe::for_machine(&machine);
                                    let paths: Vec<(usize, Vec<u32>)> = bucket
                                        .iter()
                                        .map(|&i| (i, delta.route(routed_view[i].0, &mut wprobe)))
                                        .collect();
                                    outcomes
                                        .push((bi, (paths, delta.into_delta(), wprobe.counters())));
                                }
                                outcomes
                            })
                        })
                        .collect();
                    for h in handles {
                        results.extend(h.join().expect("router worker panicked"));
                    }
                })
                .expect("router thread scope");
            }
            // Canonical commit order: by bucket index, regardless of
            // which worker finished first.
            results.sort_by_key(|&(bi, _)| bi);
            for (_, (paths, delta, counters)) in results {
                state.merge_delta(&delta);
                worker_counters.push(counters);
                for (i, path) in paths {
                    routed[i].1 = path;
                }
            }
            // Serial phase: overflow scan + history bump + rip-up.
            let mut over = vec![false; state.usage.len()];
            let mut any = false;
            let mut over_edges = 0u64;
            for (e, &u) in state.usage.iter().enumerate() {
                if u > state.capacity {
                    over[e] = true;
                    state.history[e] += 1.0;
                    any = true;
                    over_edges += 1;
                }
            }
            round_span.counter("overflowed_edges", over_edges);
            probe.instr(state.usage.len() as u64 / 16);
            probe.branch(0xD0, any);
            if !any {
                break;
            }
            pending.clear();
            for (i, (_, path)) in routed.iter().enumerate() {
                let crosses = path.iter().any(|&e| over[e as usize]);
                probe.branch(0xD5, crosses);
                if crosses {
                    pending.push(i);
                }
            }
            if pending.is_empty() {
                break;
            }
            for &i in &pending {
                for &e in &routed[i].1 {
                    state.usage[e as usize] -= 1;
                    probe.write(0xB000_0000 + u64::from(e) * 256);
                }
            }
        }
        drop(negotiate_span);
        // Wall-clock stays out of the span tree: only logical counters
        // go in, so the trace is byte-identical across machines.
        let measured_wall_secs = wall_start.elapsed().as_secs_f64();
        let parallel_counters = worker_counters
            .iter()
            .fold(CounterSet::default(), |acc, &c| acc + c);
        probe.absorb(parallel_counters);

        let wirelength: u64 = routed.iter().map(|(_, p)| p.len() as u64).sum();
        ctx.span.counter("ripup_rounds", iterations as u64);
        ctx.span.counter("wirelength", wirelength);
        let overflowed_edges = state.overflow_count();
        let total_edges = state.usage.len().max(1);
        if overflowed_edges as f64 / total_edges as f64 > self.overflow_tolerance {
            return Err(FlowError::Unroutable {
                overflowed_nets: overflowed_edges,
            });
        }

        // Coherence traffic: global connections write edges that worker
        // caches also hold; a share of those writes miss on real hardware
        // (this is the paper's slight cache-miss increase at 8 vCPUs).
        let mut counters = probe.counters();
        if threads > 1 {
            let coherence = (wirelength as f64 * (1.0 - 1.0 / threads as f64) * 0.6) as u64;
            counters.cache_refs += coherence;
            counters.l1_misses += coherence;
            counters.llc_misses += coherence / 2;
        }

        // Work split: worker counters are the parallel share; the
        // merge/overflow bookkeeping on the main probe is serial. When
        // the design is too small to fill every vCPU with a strip
        // (regions < vCPUs), the parallel work runs at width `regions`,
        // not `vcpus` — inflate it so the machine model's division by
        // effective cores lands on parallel/width (the Figure-3
        // plateau).
        let worker_ops: f64 = worker_counters.iter().map(|c| c.instructions as f64).sum();
        let total_ops = counters.instructions.max(1) as f64;
        let parallel_fraction = (worker_ops / total_ops).clamp(0.0, 0.99);
        let sync = 1_500.0 * iterations as f64;
        let mut work = StageWork::from_counters(&counters, parallel_fraction, sync, &ctx.model);
        if regions < threads {
            let eff_full = ctx.model.effective_cores(&ctx.machine);
            let eff_width = 1.0 + (regions as f64 - 1.0) * ctx.model.scaling_efficiency;
            work.parallel_cycles *= eff_full / eff_width;
        }
        let runtime_secs = ctx.model.runtime_secs(&work, &ctx.machine);

        Ok((
            RoutingResult {
                grid,
                wirelength,
                overflowed_edges,
                iterations,
                local_connections,
                global_connections,
                measured_wall_secs,
            },
            StageReport {
                kind: StageKind::Routing,
                runtime_secs,
                counters,
                work,
                parallel_fraction,
            },
        ))
    }
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

/// One two-pin connection on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Connection {
    src: (u16, u16),
    dst: (u16, u16),
}

/// An edge-usage delta produced by one worker's routing round.
#[derive(Debug, Clone)]
struct GridDelta {
    usage: Vec<u16>,
}

/// Mutable routing state: edge usage (optionally layered on a read-only
/// background snapshot) and congestion history.
#[derive(Debug, Clone)]
struct GridState {
    grid: usize,
    capacity: u16,
    /// Monotonic connection counter: each maze search allocates fresh
    /// node records, so probe addresses are unique per search (cold).
    search_seq: u64,
    /// Horizontal edges then vertical edges. In a worker this holds the
    /// background snapshot plus the worker's own commits; `delta`
    /// remembers just the commits for the merge.
    usage: Vec<u16>,
    delta: Vec<u16>,
    history: Vec<f32>,
    track_delta: bool,
}

impl GridState {
    fn new(grid: usize, capacity: u16) -> Self {
        let edges = 2 * grid * grid; // generous upper bound, simple indexing
        Self {
            grid,
            capacity,
            usage: vec![0; edges],
            delta: Vec::new(),
            history: vec![0.0; edges],
            track_delta: false,
            search_seq: 0,
        }
    }

    /// Worker view: costs see `background + own commits`; commits are
    /// recorded separately for the merge.
    fn with_background(grid: usize, capacity: u16, background: &[u16], history: &[f32]) -> Self {
        Self {
            grid,
            capacity,
            usage: background.to_vec(),
            delta: vec![0; background.len()],
            history: history.to_vec(),
            track_delta: true,
            search_seq: 0,
        }
    }

    fn into_delta(self) -> GridDelta {
        GridDelta { usage: self.delta }
    }

    fn merge_delta(&mut self, delta: &GridDelta) {
        for (u, &d) in self.usage.iter_mut().zip(&delta.usage) {
            *u += d;
        }
    }

    /// Edge index for a move from `(x, y)` toward direction `d`
    /// (0=+x, 1=+y); moves in -x/-y use the neighbor's +x/+y edge.
    fn edge_index(&self, x: usize, y: usize, d: usize) -> usize {
        d * self.grid * self.grid + y * self.grid + x
    }

    /// Edge traversal cost under negotiated congestion.
    fn edge_cost(&self, e: usize) -> f64 {
        let over = f64::from(self.usage[e].saturating_sub(self.capacity - 1));
        1.0 + f64::from(self.history[e]) + over * 4.0
    }

    fn commit_edge(&mut self, e: usize) {
        self.usage[e] += 1;
        if self.track_delta {
            self.delta[e] += 1;
        }
    }

    fn overflow_count(&self) -> usize {
        self.usage.iter().filter(|&&u| u > self.capacity).count()
    }

    /// A* maze route of one connection; commits edge usage and returns
    /// the path (edge indices from destination back to source).
    fn route(&mut self, c: Connection, probe: &mut PerfProbe) -> Vec<u32> {
        let g = self.grid;
        self.search_seq += 1;
        // Fresh per-search node-record arena (16 B per visited node).
        let search_base = 0xA000_0000u64 + self.search_seq * 0x4_0000;
        let idx = |x: usize, y: usize| y * g + x;
        let (sx, sy) = (c.src.0 as usize, c.src.1 as usize);
        let (dx, dy) = (c.dst.0 as usize, c.dst.1 as usize);
        // Search window: bounding box inflated by a margin.
        let margin = 3usize;
        let x0 = sx.min(dx).saturating_sub(margin);
        let x1 = (sx.max(dx) + margin).min(g - 1);
        let y0 = sy.min(dy).saturating_sub(margin);
        let y1 = (sy.max(dy) + margin).min(g - 1);

        let mut dist = vec![f64::INFINITY; g * g];
        let mut from = vec![u32::MAX; g * g];
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        dist[idx(sx, sy)] = 0.0;
        heap.push(HeapItem {
            cost: 0.0,
            x: sx as u16,
            y: sy as u16,
        });
        let h = |x: usize, y: usize| (x.abs_diff(dx) + y.abs_diff(dy)) as f64;
        while let Some(item) = heap.pop() {
            let (x, y) = (item.x as usize, item.y as usize);
            probe.loop_branches(1);
            probe.read(search_base + idx(x, y) as u64 * 16); // search-node record
            let found = x == dx && y == dy;
            probe.branch(0xD1, found);
            if found {
                break;
            }
            let d = dist[idx(x, y)];
            let stale = item.cost > d + h(x, y) + 1e-9;
            probe.branch(0xD2, stale);
            if stale {
                continue;
            }
            // Explore 4 neighbors; data-dependent branching is exactly
            // the unpredictable control flow the paper highlights.
            const DELTAS: [(i64, i64); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
            for (k, &(ddx, ddy)) in DELTAS.iter().enumerate() {
                let nxi = x as i64 + ddx;
                let nyi = y as i64 + ddy;
                let inside =
                    nxi >= x0 as i64 && nxi <= x1 as i64 && nyi >= y0 as i64 && nyi <= y1 as i64;
                probe.branch(0xD3, inside);
                if !inside {
                    continue;
                }
                let (nx, ny) = (nxi as usize, nyi as usize);
                let e = match k {
                    0 => self.edge_index(nx, y, 0),
                    1 => self.edge_index(x, y, 0),
                    2 => self.edge_index(x, ny, 1),
                    _ => self.edge_index(x, y, 1),
                };
                probe.read(0xB000_0000 + e as u64 * 256); // edge record lookup
                probe.read(0xB000_0000 + e as u64 * 256 + 64); // per-layer row
                let nd = d + self.edge_cost(e);
                let better = nd < dist[idx(nx, ny)];
                probe.branch(0xD4, better);
                if better {
                    dist[idx(nx, ny)] = nd;
                    from[idx(nx, ny)] = idx(x, y) as u32;
                    heap.push(HeapItem {
                        cost: nd + h(nx, ny),
                        x: nx as u16,
                        y: ny as u16,
                    });
                    probe.write(search_base + idx(nx, ny) as u64 * 16);
                }
            }
        }
        // Backtrack and commit usage.
        let mut path = Vec::new();
        let mut cur = idx(dx, dy);
        if from[cur] == u32::MAX && cur != idx(sx, sy) {
            // Unreachable inside the window (cannot happen on an open
            // grid with an inflated box); treated as a zero-length path.
            return path;
        }
        while cur != idx(sx, sy) {
            let prev = from[cur] as usize;
            let (cx, cy) = (cur % g, cur / g);
            let (px, py) = (prev % g, prev / g);
            let e = if cy == py {
                self.edge_index(cx.min(px), cy, 0)
            } else {
                self.edge_index(cx, cy.min(py), 1)
            };
            self.commit_edge(e);
            probe.write(0xB000_0000 + e as u64 * 256);
            path.push(e as u32);
            cur = prev;
        }
        path
    }
}

/// Min-heap item (BinaryHeap is a max-heap, so order is reversed).
#[derive(Debug, PartialEq)]
struct HeapItem {
    cost: f64,
    x: u16,
    y: u16,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| (other.x, other.y).cmp(&(self.x, self.y)))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{Recipe, Synthesizer};
    use crate::Placer;
    use eda_cloud_netlist::generators;

    fn routed(vcpus: u32) -> (RoutingResult, StageReport) {
        routed_design(generators::adder(10), vcpus)
    }

    fn routed_design(aig: eda_cloud_netlist::Aig, vcpus: u32) -> (RoutingResult, StageReport) {
        let ctx = ExecContext::with_vcpus(vcpus);
        let (nl, _) = Synthesizer::new()
            .with_verification(false)
            .run(&aig, &Recipe::balanced(), &ctx)
            .unwrap();
        let (pl, _) = Placer::new().run(&nl, &ctx).unwrap();
        Router::new().run(&nl, &pl, &ctx).unwrap()
    }

    #[test]
    fn routes_without_excess_overflow() {
        let (r, _) = routed(1);
        assert!(r.wirelength > 0);
        assert!(r.iterations >= 1);
        assert!(r.overflowed_edges as f64 <= 0.02 * (2 * r.grid * r.grid) as f64);
    }

    #[test]
    fn branch_miss_rate_is_highest_signature() {
        let (_, report) = routed(1);
        assert!(
            report.counters.branch_miss_rate() > 0.02,
            "maze search should mispredict: {}",
            report.counters.branch_miss_rate()
        );
        assert!(report.counters.branches > 1_000);
    }

    #[test]
    fn more_threads_split_work_into_local_regions() {
        let (r1, rep1) = routed_design(generators::multiplier(12), 1);
        let (r4, rep4) = routed_design(generators::multiplier(12), 4);
        // With one region everything is local.
        assert_eq!(r1.global_connections, 0);
        assert!(r4.global_connections > 0);
        assert!(r4.local_connections > 0);
        // Parallel fraction should be substantial at 4 threads on a
        // reasonably sized design.
        assert!(rep4.parallel_fraction > 0.3, "p={}", rep4.parallel_fraction);
        assert!(rep1.parallel_fraction <= 1.0);
    }

    #[test]
    fn large_design_scales_small_design_plateaus() {
        // The Figure-3 effect: a larger design keeps more of its
        // connections region-local, so it scales further with threads.
        let (_, small1) = routed_design(generators::adder(10), 1);
        let (_, small8) = routed_design(generators::adder(10), 8);
        let (_, big1) = routed_design(generators::multiplier(14), 1);
        let (_, big8) = routed_design(generators::multiplier(14), 8);
        let small_speedup = small1.runtime_secs / small8.runtime_secs;
        let big_speedup = big1.runtime_secs / big8.runtime_secs;
        assert!(
            big_speedup > small_speedup,
            "big {big_speedup} vs small {small_speedup}"
        );
        assert!(big_speedup > 1.3, "routing should scale, got {big_speedup}");
    }

    #[test]
    fn grid_state_edge_costs_grow_with_congestion() {
        let mut s = GridState::new(8, 2);
        let e = s.edge_index(3, 3, 0);
        let base = s.edge_cost(e);
        s.usage[e] = 5;
        assert!(s.edge_cost(e) > base);
        s.history[e] = 2.0;
        let with_history = s.edge_cost(e);
        assert!(with_history > s.edge_cost(e + 1));
    }

    #[test]
    fn route_commits_manhattan_distance_on_empty_grid() {
        let mut s = GridState::new(16, 8);
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        let path = s.route(
            Connection {
                src: (2, 2),
                dst: (7, 5),
            },
            &mut probe,
        );
        assert_eq!(path.len(), 5 + 3, "uncongested route = Manhattan distance");
        assert_eq!(s.usage.iter().map(|&u| u64::from(u)).sum::<u64>(), 8);
    }

    #[test]
    fn congestion_forces_detour() {
        let mut s = GridState::new(16, 1);
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        // Saturate the straight-line corridor.
        for x in 2..7 {
            let e = s.edge_index(x, 3, 0);
            s.usage[e] = 3;
        }
        let path = s.route(
            Connection {
                src: (2, 3),
                dst: (7, 3),
            },
            &mut probe,
        );
        assert!(
            path.len() > 5,
            "detour should be longer than 5, got {}",
            path.len()
        );
    }

    #[test]
    fn worker_deltas_merge_exactly() {
        // Two workers route over the same background; merging their
        // deltas must equal the sum of their individual commits.
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        let mut state = GridState::new(16, 4);
        let background = state.usage.clone();
        let history = state.history.clone();
        let mut w1 = GridState::with_background(16, 4, &background, &history);
        let mut w2 = GridState::with_background(16, 4, &background, &history);
        let p1 = w1.route(
            Connection {
                src: (1, 2),
                dst: (6, 2),
            },
            &mut probe,
        );
        let p2 = w2.route(
            Connection {
                src: (1, 2),
                dst: (6, 2),
            },
            &mut probe,
        );
        state.merge_delta(&w1.into_delta());
        state.merge_delta(&w2.into_delta());
        let total: u64 = state.usage.iter().map(|&u| u64::from(u)).sum();
        assert_eq!(total as usize, p1.len() + p2.len());
    }

    #[test]
    fn background_usage_steers_worker_routes() {
        // A worker seeing a congested background corridor must detour.
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        let mut base = GridState::new(16, 1);
        for x in 2..9 {
            let e = base.edge_index(x, 3, 0);
            base.usage[e] = 3;
        }
        let mut worker = GridState::with_background(16, 1, &base.usage, &base.history);
        let path = worker.route(
            Connection {
                src: (2, 3),
                dst: (9, 3),
            },
            &mut probe,
        );
        assert!(path.len() > 7, "detour expected, got {}", path.len());
        // The delta records only the worker's own commits.
        let delta = worker.into_delta();
        let committed: u64 = delta.usage.iter().map(|&u| u64::from(u)).sum();
        assert_eq!(committed as usize, path.len());
    }

    #[test]
    fn negotiation_clears_worker_conflicts_end_to_end() {
        // Route a real design with several threads; the iterative
        // negotiation must end within tolerance even though the blind
        // parallel rounds create conflicts.
        let (r, _) = routed_design(generators::multiplier(10), 4);
        assert!(r.iterations >= 1);
        assert!((r.overflowed_edges as f64) <= 0.02 * (2 * r.grid * r.grid) as f64);
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = eda_cloud_netlist::Netlist::new("empty", "synth14");
        let pl = Placement {
            x: vec![],
            y: vec![],
            die_um: (10.0, 10.0),
            hpwl_um: 0.0,
            pi_pins: vec![],
            po_pins: vec![],
        };
        assert_eq!(
            Router::new()
                .run(&nl, &pl, &ExecContext::default())
                .unwrap_err(),
            FlowError::EmptyDesign
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Router::new().with_capacity(0);
    }

    #[test]
    fn deterministic() {
        let (a, _) = routed(2);
        let (b, _) = routed(2);
        assert_eq!(a.wirelength, b.wirelength);
        assert_eq!(a.overflowed_edges, b.overflowed_edges);
    }

    #[test]
    fn route_workers_never_change_results() {
        // The batched rounds must be bit-identical at any host worker
        // count: same paths, same overflow negotiation, same simulated
        // counters. Only `measured_wall_secs` may differ.
        let aig = generators::multiplier(12);
        let ctx = ExecContext::with_vcpus(4);
        let (nl, _) = Synthesizer::new()
            .with_verification(false)
            .run(&aig, &Recipe::balanced(), &ctx)
            .unwrap();
        let (pl, _) = Placer::new().run(&nl, &ctx).unwrap();
        let route = |route_workers: usize| {
            let ctx = ExecContext::with_vcpus(4).with_route_workers(route_workers);
            Router::new().run(&nl, &pl, &ctx).unwrap()
        };
        let (base, base_report) = route(0); // historical one-thread-per-bucket
        assert!(base.global_connections > 0, "partition actually split work");
        for workers in [1usize, 2, 8] {
            let (r, report) = route(workers);
            assert_eq!(r.wirelength, base.wirelength, "workers {workers}");
            assert_eq!(
                r.overflowed_edges, base.overflowed_edges,
                "workers {workers}"
            );
            assert_eq!(r.iterations, base.iterations, "workers {workers}");
            assert_eq!(
                r.local_connections, base.local_connections,
                "workers {workers}"
            );
            assert_eq!(
                r.global_connections, base.global_connections,
                "workers {workers}"
            );
            assert_eq!(report.counters, base_report.counters, "workers {workers}");
            assert_eq!(
                report.runtime_secs.to_bits(),
                base_report.runtime_secs.to_bits(),
                "workers {workers}"
            );
        }
    }
}
