//! EDA flow engines: logic synthesis, analytical placement, grid
//! routing, and static timing analysis.
//!
//! The paper characterizes four applications of a **commercial** EDA
//! flow; that flow is license-gated, so this crate implements each stage
//! from scratch with the same algorithmic skeleton the paper attributes
//! its observations to:
//!
//! * [`synthesis`] — AIG optimization passes (balance / rewrite /
//!   refactor) followed by pattern-based technology mapping. Pass-
//!   dominated and hash-heavy: modest parallelism, balanced counters.
//! * [`placement`] — analytical quadratic placement by gradient descent
//!   with bin-based spreading and row legalization. Convex-optimization
//!   inner loops over large coordinate vectors: heavy vectorizable FP
//!   work and high cache-miss rates, exactly the signature in Fig. 2.
//! * [`routing`] — grid-based maze routing with negotiated congestion
//!   and rip-up-and-reroute. Graph search over irregular frontiers:
//!   the highest branch-miss rate of the four, and near-embarrassing
//!   parallelism across independent regions (Fig. 2d / Fig. 3).
//! * [`sta`] — levelized arrival/required/slack propagation with library
//!   float lookups: AVX-friendly but dependency-bound.
//!
//! Every engine emits its memory / branch / FP events into an
//! [`eda_cloud_perf::PerfProbe`] and reports a [`StageReport`] whose
//! simulated runtime comes from the calibrated machine model.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_flow::{ExecContext, synthesis::{Synthesizer, Recipe}};
//! use eda_cloud_netlist::generators;
//!
//! let aig = generators::adder(8);
//! let ctx = ExecContext::with_vcpus(2);
//! let (netlist, report) = Synthesizer::new().run(&aig, &Recipe::balanced(), &ctx)?;
//! assert!(netlist.cell_count() > 0);
//! assert!(report.runtime_secs > 0.0);
//! # Ok::<(), eda_cloud_flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
pub mod placement;
pub mod routing;
mod stage;
pub mod sta;
pub mod synthesis;

pub use error::FlowError;
pub use exec::ExecContext;
pub use placement::{Placement, Placer};
pub use routing::{Router, RoutingResult};
pub use sta::{StaEngine, TimingReport};
pub use stage::{StageKind, StageReport};
pub use synthesis::{Pass, Recipe, SynthesisTrace, Synthesizer, VerifyMode};

use eda_cloud_netlist::{Aig, Netlist};

/// Outputs of a full four-stage flow run.
#[derive(Debug, Clone)]
pub struct FlowOutputs {
    /// The mapped netlist from synthesis.
    pub netlist: Netlist,
    /// Cell placement.
    pub placement: Placement,
    /// Routing solution summary.
    pub routing: RoutingResult,
    /// Timing analysis result.
    pub timing: TimingReport,
    /// One report per stage, in flow order.
    pub reports: [StageReport; 4],
}

/// Run synthesis → placement → routing → STA on one machine
/// configuration.
///
/// # Errors
///
/// Propagates any stage's [`FlowError`].
pub fn run_full_flow(
    aig: &Aig,
    recipe: &Recipe,
    ctx: &ExecContext,
) -> Result<FlowOutputs, FlowError> {
    let (netlist, syn_report) = Synthesizer::new().run(aig, recipe, ctx)?;
    let (placement, place_report) = Placer::new().run(&netlist, ctx)?;
    let (routing, route_report) = Router::new().run(&netlist, &placement, ctx)?;
    let (timing, sta_report) = StaEngine::new().run(&netlist, &placement, ctx)?;
    Ok(FlowOutputs {
        netlist,
        placement,
        routing,
        timing,
        reports: [syn_report, place_report, route_report, sta_report],
    })
}
