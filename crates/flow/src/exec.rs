//! Execution context shared by all stages.

use eda_cloud_perf::{MachineConfig, MachineModel, PerfProbe};
use eda_cloud_trace::Span;

/// Where and how a flow stage executes: the target machine configuration
/// plus the calibrated cost model converting counted work into seconds.
///
/// # Examples
///
/// ```
/// use eda_cloud_flow::ExecContext;
///
/// let ctx = ExecContext::with_vcpus(4);
/// assert_eq!(ctx.machine.vcpus, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The VM configuration the job runs on.
    pub machine: MachineConfig,
    /// Cost model (cycle weights, scaling efficiency, work scale).
    pub model: MachineModel,
    /// Number of OS threads stages may really spawn for measured
    /// parallelism (capped at `machine.vcpus`).
    pub real_threads: usize,
    /// Host threads for the router's batched parallel rounds; 0 (the
    /// default) spawns one thread per non-empty region bucket, matching
    /// the historical behavior. Purely a host execution knob — the
    /// region partition (and thus every simulated quantity) is set by
    /// `real_threads`, and results are bit-identical at any value.
    pub route_workers: usize,
    /// Parent trace span the stage hangs its phase spans under.
    /// Disabled by default; instrumentation is a no-op then.
    pub span: Span,
}

// `span` is a recording handle and `route_workers` a host scheduling
// knob that never changes results: neither is part of the context's
// identity.
impl PartialEq for ExecContext {
    fn eq(&self, other: &Self) -> bool {
        self.machine == other.machine
            && self.model == other.model
            && self.real_threads == other.real_threads
    }
}

impl ExecContext {
    /// Context for a general-purpose VM with `vcpus` cores.
    #[must_use]
    pub fn with_vcpus(vcpus: u32) -> Self {
        Self::new(MachineConfig::vcpus(vcpus))
    }

    /// Context for an explicit machine configuration.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        Self {
            machine,
            model: MachineModel::default(),
            real_threads: machine.vcpus as usize,
            route_workers: 0,
            span: Span::disabled(),
        }
    }

    /// Set the router's host-thread count (see
    /// [`ExecContext::route_workers`]).
    #[must_use]
    pub fn with_route_workers(mut self, route_workers: usize) -> Self {
        self.route_workers = route_workers;
        self
    }

    /// Replace the cost model (e.g. to apply a work-scale calibration).
    #[must_use]
    pub fn with_model(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Attach a parent span; stages open phase children under it.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The same context with tracing detached (used by caches so the
    /// trace shape cannot depend on hit/miss patterns).
    #[must_use]
    pub fn without_span(&self) -> Self {
        self.clone().with_span(Span::disabled())
    }

    /// A fresh probe wired to this machine's cache hierarchy and AVX
    /// capability.
    #[must_use]
    pub fn probe(&self) -> PerfProbe {
        PerfProbe::for_machine(&self.machine)
    }

    /// Threads a stage should actually spawn (at least one).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.real_threads
            .clamp(1, (self.machine.vcpus as usize).max(1))
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::with_vcpus(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_core() {
        let ctx = ExecContext::default();
        assert_eq!(ctx.machine.vcpus, 1);
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn probe_matches_machine() {
        let ctx = ExecContext::with_vcpus(2);
        let p = ctx.probe();
        assert!(p.avx_available());
    }

    #[test]
    fn threads_clamped_to_vcpus() {
        let mut ctx = ExecContext::with_vcpus(2);
        ctx.real_threads = 64;
        assert_eq!(ctx.threads(), 2);
        ctx.real_threads = 0;
        assert_eq!(ctx.threads(), 1);
    }
}
