//! Static timing analysis: levelized arrival / required / slack
//! propagation with a linear delay model.
//!
//! The paper notes STA is second only to placement in AVX usage —
//! "calculating slacks involves graph traversal from inputs to outputs,
//! with access to floating-point values in the technology library" —
//! while its speedup is capped by level-to-level dependencies. This
//! engine propagates arrivals forward in topological order (parallel
//! within a level, barrier between levels), then requireds backward, and
//! reports worst / total negative slack.

use crate::{ExecContext, FlowError, Placement, StageKind, StageReport};
use eda_cloud_netlist::{NetDriver, NetSink, Netlist};
use eda_cloud_perf::StageWork;
use eda_cloud_tech::{DelayModel, Library, LinearDelay};
use serde::{Deserialize, Serialize};

/// Result of a timing run (all times in picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst negative slack (positive value = all constraints met).
    pub wns_ps: f64,
    /// Total negative slack (0 when timing is met).
    pub tns_ps: f64,
    /// Longest arrival time at any endpoint (critical-path delay).
    pub critical_path_ps: f64,
    /// Clock period the design was checked against.
    pub clock_period_ps: f64,
    /// Number of timing endpoints (primary outputs + flop data pins).
    pub endpoints: usize,
}

impl TimingReport {
    /// Whether every endpoint meets the clock constraint.
    #[must_use]
    pub fn timing_met(&self) -> bool {
        self.wns_ps >= 0.0
    }
}

/// The STA engine.
#[derive(Debug, Clone)]
pub struct StaEngine {
    library: Library,
    delay: LinearDelay,
    clock_period_ps: f64,
    parallel_fraction: f64,
    corners: usize,
}

impl StaEngine {
    /// Engine over the default library with a 1 ns clock.
    #[must_use]
    pub fn new() -> Self {
        Self {
            library: Library::synthetic_14nm(),
            delay: LinearDelay::new(),
            clock_period_ps: 1_000.0,
            parallel_fraction: 0.60,
            corners: 3,
        }
    }

    /// Number of process corners analyzed (slow/typical/fast). Real
    /// signoff runs several; each corner repeats the arrival/required
    /// sweeps with derated delays.
    ///
    /// # Panics
    ///
    /// Panics if `corners == 0`.
    #[must_use]
    pub fn with_corners(mut self, corners: usize) -> Self {
        assert!(corners > 0, "need at least one corner");
        self.corners = corners;
        self
    }

    /// Override the clock period.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps <= 0`.
    #[must_use]
    pub fn with_clock_ps(mut self, period_ps: f64) -> Self {
        assert!(period_ps > 0.0, "clock period must be positive");
        self.clock_period_ps = period_ps;
        self
    }

    /// Analyze the placed netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyDesign`] for an empty netlist,
    /// [`FlowError::Design`] if it is cyclic, or
    /// [`FlowError::Tech`] if a cell master is missing.
    pub fn run(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        ctx: &ExecContext,
    ) -> Result<(TimingReport, StageReport), FlowError> {
        if netlist.cell_count() == 0 {
            return Err(FlowError::EmptyDesign);
        }
        let mut probe = ctx.probe();
        let order = netlist.topological_cells()?;

        // Per-net timing records are ~64 bytes in a production timer
        // (arrival/required/slew per corner, load, flags).
        const NET_TIMING_STRIDE: u64 = 64;

        // Per-net wirelength (HPWL from placement) and load capacitance.
        let lib_base = 0x6000_0000u64;
        let net_base = 0x7000_0000u64;
        let n_nets = netlist.net_count();
        let mut net_wl = vec![0.0f64; n_nets];
        let mut net_load = vec![0.0f64; n_nets];
        for (ni, net) in netlist.nets().iter().enumerate() {
            let mut pts: Vec<(f64, f64)> = Vec::with_capacity(net.sinks.len() + 1);
            match net.driver {
                Some(NetDriver::Cell(c)) => pts.push(placement.cell_pos(c as usize)),
                Some(NetDriver::PrimaryInput(k)) => pts.push(placement.pi_pins[k as usize]),
                None => {}
            }
            let mut load = 0.0;
            for sink in &net.sinks {
                match *sink {
                    NetSink::CellPin { cell, .. } => {
                        pts.push(placement.cell_pos(cell as usize));
                        let master = self
                            .library
                            .cell(&netlist.cells()[cell as usize].cell_name)?;
                        probe.read(lib_base + u64::from(cell) % 256 * 64);
                        probe.fp(1, true);
                        load += master.input_cap_ff;
                    }
                    NetSink::PrimaryOutput(k) => {
                        pts.push(placement.po_pins[k as usize]);
                        load += 2.0; // pad capacitance
                    }
                }
            }
            net_wl[ni] = Placement::hpwl_of(&pts);
            net_load[ni] = load + self.delay.wire_cap_ff(net_wl[ni]);
            probe.write(net_base + ni as u64 * NET_TIMING_STRIDE);
            probe.fp(4, true);
        }

        // Multi-corner analysis: each corner derates delays and repeats
        // the forward/backward sweeps (signoff STA runs several corners;
        // this also gives the memory system the re-reference behaviour a
        // real timer exhibits).
        let mut net_arrival = vec![0.0f64; n_nets];
        ctx.span.counter("levelized_cells", order.len() as u64);
        for corner in 0..self.corners {
            let corner_span = ctx.span.child(&format!("corner/{corner}"));
            corner_span.counter("nets", n_nets as u64);
            let derate = 1.0 + 0.08 * corner as f64;
            // Forward arrival propagation.
            let arr_base = 0x8000_0000u64;
            let mut corner_arrival = vec![0.0f64; n_nets];
            for &cid in &order {
                let cell = &netlist.cells()[cid as usize];
                let master = self.library.cell(&cell.cell_name)?;
                probe.read(lib_base + u64::from(cid) % 256 * 64); // library row
                let mut arr_in: f64 = 0.0;
                for &inet in &cell.inputs {
                    probe.read(arr_base + u64::from(inet) * NET_TIMING_STRIDE);
                    let later = corner_arrival[inet as usize] > arr_in;
                    probe.branch(0xE0, later);
                    if later {
                        arr_in = corner_arrival[inet as usize];
                    }
                }
                // Sequential cells launch at t=0 (register output).
                let launch = if cell.kind.is_sequential() { 0.0 } else { arr_in };
                let out = cell.output as usize;
                let gate = derate * self.delay.gate_delay_ps(master, net_load[out]);
                let wire = derate
                    * self
                        .delay
                        .wire_delay_ps(netlist.nets()[out].sinks.len(), net_wl[out]);
                corner_arrival[out] = launch + gate + wire;
                probe.loop_branches(cell.inputs.len() as u64 + 1);
                probe.write(arr_base + u64::from(cell.output) * NET_TIMING_STRIDE);
                probe.fp(4, true); // delay arithmetic on library floats
                probe.fp(4, false); // scalar bookkeeping
            }

            // Backward required-time propagation (reverse topological
            // order): required at each net is the minimum over its sinks of
            // (consumer required - consumer delay); endpoints start at the
            // clock period.
            let req_base = 0xC000_0000u64;
            let mut net_required = vec![f64::INFINITY; n_nets];
            for (_, net) in netlist.primary_outputs() {
                net_required[*net as usize] = self.clock_period_ps;
            }
            for &cid in order.iter().rev() {
                let cell = &netlist.cells()[cid as usize];
                let master = self.library.cell(&cell.cell_name)?;
                probe.read(lib_base + u64::from(cid) % 256 * 64);
                let out = cell.output as usize;
                let req_out = if cell.kind.is_sequential() {
                    self.clock_period_ps
                } else {
                    net_required[out]
                };
                let gate = derate * self.delay.gate_delay_ps(master, net_load[out]);
                let wire = derate
                    * self
                        .delay
                        .wire_delay_ps(netlist.nets()[out].sinks.len(), net_wl[out]);
                let req_in = req_out - gate - wire;
                for &inet in &cell.inputs {
                    probe.read(req_base + u64::from(inet) * NET_TIMING_STRIDE);
                    let tighter = req_in < net_required[inet as usize];
                    probe.branch(0xE2, tighter);
                    if tighter {
                        net_required[inet as usize] = req_in;
                        probe.write(req_base + u64::from(inet) * NET_TIMING_STRIDE);
                    }
                }
                probe.loop_branches(cell.inputs.len() as u64 + 1);
                probe.fp(4, true);
                probe.fp(2, false);
            }

            // Keep the slow-corner (first) arrivals for reporting.
            if corner == 0 {
                net_arrival = corner_arrival;
            }
        }

        // Endpoints: primary outputs and flop data inputs.
        let mut endpoints: Vec<f64> = Vec::new();
        for (_, net) in netlist.primary_outputs() {
            endpoints.push(net_arrival[*net as usize]);
        }
        for cell in netlist.cells() {
            if cell.kind.is_sequential() {
                if let Some(&d) = cell.inputs.first() {
                    endpoints.push(net_arrival[d as usize]);
                }
            }
        }

        // Backward required / slack.
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut critical = 0.0f64;
        for &arr in &endpoints {
            let slack = self.clock_period_ps - arr;
            let violated = slack < 0.0;
            probe.branch(0xE1, violated);
            if violated {
                tns += slack;
            }
            wns = wns.min(slack);
            critical = critical.max(arr);
            probe.fp(3, true);
        }
        if endpoints.is_empty() {
            wns = self.clock_period_ps;
        }

        let counters = probe.counters();
        let levels = netlist.depth().max(1) as f64;
        let sync = 250.0 * levels; // one barrier per level
        let work = StageWork::from_counters(&counters, self.parallel_fraction, sync, &ctx.model);
        let runtime_secs = ctx.model.runtime_secs(&work, &ctx.machine);
        Ok((
            TimingReport {
                wns_ps: wns,
                tns_ps: tns,
                critical_path_ps: critical,
                clock_period_ps: self.clock_period_ps,
                endpoints: endpoints.len(),
            },
            StageReport {
                kind: StageKind::Sta,
                runtime_secs,
                counters,
                work,
                parallel_fraction: self.parallel_fraction,
            },
        ))
    }
}

impl Default for StaEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{Recipe, Synthesizer};
    use crate::Placer;
    use eda_cloud_netlist::generators;

    fn analyzed(width: u32, clock_ps: f64) -> (TimingReport, StageReport) {
        let aig = generators::adder(width);
        let ctx = ExecContext::with_vcpus(1);
        let (nl, _) = Synthesizer::new().run(&aig, &Recipe::balanced(), &ctx).unwrap();
        let (pl, _) = Placer::new().run(&nl, &ctx).unwrap();
        StaEngine::new()
            .with_clock_ps(clock_ps)
            .run(&nl, &pl, &ctx)
            .unwrap()
    }

    #[test]
    fn loose_clock_meets_timing() {
        let (t, _) = analyzed(8, 1_000_000.0);
        assert!(t.timing_met());
        assert_eq!(t.tns_ps, 0.0);
        assert!(t.critical_path_ps > 0.0);
    }

    #[test]
    fn tight_clock_fails_timing() {
        let (t, _) = analyzed(8, 1.0);
        assert!(!t.timing_met());
        assert!(t.tns_ps < 0.0);
        assert!(t.wns_ps < 0.0);
        // WNS is the single worst endpoint; TNS accumulates all.
        assert!(t.tns_ps <= t.wns_ps);
    }

    #[test]
    fn deeper_logic_has_longer_critical_path() {
        let (shallow, _) = analyzed(4, 1_000.0);
        let (deep, _) = analyzed(16, 1_000.0);
        assert!(
            deep.critical_path_ps > shallow.critical_path_ps,
            "16-bit adder must be slower than 4-bit: {} vs {}",
            deep.critical_path_ps,
            shallow.critical_path_ps
        );
    }

    #[test]
    fn counters_show_library_float_traffic() {
        let (_, report) = analyzed(10, 1_000.0);
        assert!(report.counters.avx_ops > 0);
        assert!(report.counters.cache_refs > 0);
        let share = report.counters.avx_share();
        assert!(
            share > 0.5 && share < 0.95,
            "STA AVX share between placement and synthesis: {share}"
        );
        assert_eq!(report.kind, StageKind::Sta);
    }

    #[test]
    fn endpoint_count_matches_outputs() {
        let (t, _) = analyzed(6, 1_000.0);
        assert_eq!(t.endpoints, 7); // 6 sum bits + carry
    }

    #[test]
    fn empty_design_rejected() {
        let nl = Netlist::new("empty", "synth14");
        let pl = Placement {
            x: vec![],
            y: vec![],
            die_um: (1.0, 1.0),
            hpwl_um: 0.0,
            pi_pins: vec![],
            po_pins: vec![],
        };
        assert_eq!(
            StaEngine::new()
                .run(&nl, &pl, &ExecContext::default())
                .unwrap_err(),
            FlowError::EmptyDesign
        );
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn bad_clock_panics() {
        let _ = StaEngine::new().with_clock_ps(0.0);
    }
}
