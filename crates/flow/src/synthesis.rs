//! Logic synthesis: AIG optimization passes and technology mapping.
//!
//! Mirrors the structure of an ABC-style synthesis flow: a *recipe* of
//! optimization passes (balance / rewrite / refactor) transforms the AIG,
//! then a pattern-based technology mapper covers it with library cells
//! (detecting XOR and MUX structures, choosing NAND/NOR/AND/OR polarity
//! by fanout vote, inserting inverters on demand), and an optional
//! 64-way random simulation verifies the mapped netlist against the
//! source AIG.
//!
//! Different recipes produce structurally different netlists computing
//! the same function — exactly how the paper turns 18 designs into 330
//! netlists to challenge its GCN.

use crate::{ExecContext, FlowError, StageKind, StageReport};
use eda_cloud_netlist::{Aig, AigNode, Lit, NetId, Netlist};
use eda_cloud_perf::{CounterSet, PerfProbe, ProbeTrace, StageWork};
use eda_cloud_tech::{CellKind, Library};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pass {
    /// Reassociate AND chains into balanced trees (depth reduction).
    Balance,
    /// Rebuild through the structural hasher with local simplification
    /// rules (node-count reduction).
    Rewrite,
    /// Seeded restructuring: perturb chain association order. Preserves
    /// function, changes structure — used to generate dataset variants.
    Refactor(u64),
    /// Dead-logic sweep: drop AND nodes not in any output's transitive
    /// fanin (generators and earlier passes can leave unreferenced
    /// logic).
    Sweep,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Balance => write!(f, "balance"),
            Pass::Rewrite => write!(f, "rewrite"),
            Pass::Refactor(seed) => write!(f, "refactor({seed})"),
            Pass::Sweep => write!(f, "sweep"),
        }
    }
}

/// A named sequence of passes.
///
/// # Examples
///
/// ```
/// use eda_cloud_flow::Recipe;
///
/// let recipes = Recipe::standard_suite();
/// assert!(recipes.len() >= 18);
/// assert!(recipes.iter().any(|r| r.name() == "resyn"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recipe {
    name: String,
    passes: Vec<Pass>,
}

impl Recipe {
    /// Build a recipe from explicit passes.
    ///
    /// An empty pass list is rejected with
    /// [`FlowError::EmptyRecipe`]: a pass-free recipe would silently
    /// degenerate the runtime estimate (the `.max(1)` guard in the
    /// synchronization-overhead model) and poison recipe-search
    /// alphabets. The deliberate pass-free baseline is [`Recipe::raw`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyRecipe`] when `passes` is empty.
    pub fn new(name: impl Into<String>, passes: Vec<Pass>) -> Result<Self, FlowError> {
        let name = name.into();
        if passes.is_empty() {
            return Err(FlowError::EmptyRecipe { name });
        }
        Ok(Self { name, passes })
    }

    /// Internal constructor for the known-good built-in recipes.
    fn from_parts(name: impl Into<String>, passes: Vec<Pass>) -> Self {
        Self {
            name: name.into(),
            passes,
        }
    }

    /// The light default: balance then rewrite.
    #[must_use]
    pub fn balanced() -> Self {
        Self::from_parts("balanced", vec![Pass::Balance, Pass::Rewrite])
    }

    /// Map directly with no optimization. This is the one sanctioned
    /// pass-free recipe; [`Recipe::new`] rejects empty pass lists.
    #[must_use]
    pub fn raw() -> Self {
        Self::from_parts("raw", Vec::new())
    }

    /// The variant-generation suite: ~20 recipes combining pass orders
    /// and refactor seeds, mirroring the paper's per-design netlist
    /// variants (330 netlists from 18 designs).
    #[must_use]
    pub fn standard_suite() -> Vec<Recipe> {
        let mut suite = vec![
            Self::raw(),
            Self::balanced(),
            Self::from_parts("resyn", vec![Pass::Balance, Pass::Rewrite, Pass::Balance]),
            Self::from_parts(
                "resyn2",
                vec![
                    Pass::Balance,
                    Pass::Rewrite,
                    Pass::Refactor(2),
                    Pass::Balance,
                    Pass::Rewrite,
                ],
            ),
            Self::from_parts("rw", vec![Pass::Rewrite]),
            Self::from_parts("rwrw", vec![Pass::Rewrite, Pass::Rewrite]),
            Self::from_parts("sweep", vec![Pass::Sweep]),
            Self::from_parts("swb", vec![Pass::Sweep, Pass::Balance]),
        ];
        for seed in 0..8u64 {
            suite.push(Self::from_parts(
                format!("rf{seed}"),
                vec![Pass::Refactor(seed), Pass::Balance],
            ));
            suite.push(Self::from_parts(
                format!("rfrw{seed}"),
                vec![Pass::Refactor(seed.wrapping_mul(7919) + 13), Pass::Rewrite],
            ));
        }
        suite
    }

    /// Recipe name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pass sequence.
    #[must_use]
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }
}

impl Default for Recipe {
    fn default() -> Self {
        Self::balanced()
    }
}

/// How the mapped netlist is verified against the source AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerifyMode {
    /// No verification.
    Off,
    /// Random-vector simulation (fast, unsound).
    Random,
    /// Random pre-filter, then a sound SAT equivalence check of the
    /// miter (falls back to the random result if the SAT budget is
    /// exhausted on a pathological instance).
    Sat,
}

/// The synthesis engine.
///
/// Pass-dominated: each optimization pass is an inherently sequential
/// sweep, with only local transforms parallelizable — the paper measures
/// a ~1.8x speedup at 8 vCPUs, the weakest scaling of the four stages.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    library: Library,
    verify: VerifyMode,
    parallel_fraction: f64,
}

impl Synthesizer {
    /// Engine over the default synthetic library, with verification on.
    #[must_use]
    pub fn new() -> Self {
        Self {
            library: Library::synthetic_14nm(),
            verify: VerifyMode::Random,
            parallel_fraction: 0.48,
        }
    }

    /// Toggle the post-mapping equivalence spot-check (random vectors).
    #[must_use]
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = if verify { VerifyMode::Random } else { VerifyMode::Off };
        self
    }

    /// Select the verification mode explicitly.
    #[must_use]
    pub fn with_verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }

    /// Use a custom library.
    #[must_use]
    pub fn with_library(mut self, library: Library) -> Self {
        self.library = library;
        self
    }

    /// Run the recipe and map to cells.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyDesign`] for a logic-free AIG and
    /// [`FlowError::Design`] if verification detects a mismatch (which
    /// would indicate an engine bug) or the input is malformed.
    pub fn run(
        &self,
        aig: &Aig,
        recipe: &Recipe,
        ctx: &ExecContext,
    ) -> Result<(Netlist, StageReport), FlowError> {
        let mut probe = ctx.probe();
        let netlist = self.execute(aig, recipe, &ctx.span, &mut probe)?;
        let report = self.finalize(probe.counters(), recipe, ctx);
        Ok((netlist, report))
    }

    /// Like [`Synthesizer::run`], additionally recording the probe
    /// event stream into a replayable [`SynthesisTrace`].
    ///
    /// The engine never reads probe state back, so the event stream is
    /// a pure function of `(aig, recipe, verify-mode)` — machine-
    /// independent. Calling [`Synthesizer::report_from_trace`] with the
    /// trace and another context yields a report bit-identical to
    /// re-running synthesis under that context, without re-doing the
    /// structural work.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Synthesizer::run`].
    pub fn run_traced(
        &self,
        aig: &Aig,
        recipe: &Recipe,
        ctx: &ExecContext,
    ) -> Result<(Netlist, StageReport, SynthesisTrace), FlowError> {
        let mut probe = PerfProbe::for_machine_traced(&ctx.machine);
        let netlist = self.execute(aig, recipe, &ctx.span, &mut probe)?;
        let (counters, events) = probe.into_traced();
        let report = self.finalize(counters, recipe, ctx);
        let trace = SynthesisTrace {
            events,
            sync_cycles: sync_overhead(recipe),
            parallel_fraction: self.parallel_fraction,
        };
        Ok((netlist, report, trace))
    }

    /// Recompute the stage report a fresh [`Synthesizer::run`] under
    /// `ctx` would produce, from a recorded trace instead of a re-run.
    #[must_use]
    pub fn report_from_trace(trace: &SynthesisTrace, ctx: &ExecContext) -> StageReport {
        let counters = trace.events.replay(&ctx.machine);
        let work =
            StageWork::from_counters(&counters, trace.parallel_fraction, trace.sync_cycles, &ctx.model);
        let runtime_secs = ctx.model.runtime_secs(&work, &ctx.machine);
        StageReport {
            kind: StageKind::Synthesis,
            runtime_secs,
            counters,
            work,
            parallel_fraction: trace.parallel_fraction,
        }
    }

    /// The structural pipeline: passes, mapping, verification.
    fn execute(
        &self,
        aig: &Aig,
        recipe: &Recipe,
        span: &eda_cloud_trace::Span,
        probe: &mut PerfProbe,
    ) -> Result<Netlist, FlowError> {
        if aig.output_count() == 0 {
            return Err(FlowError::EmptyDesign);
        }
        aig.check()?;

        // Optimization passes.
        let mut working = aig.clone();
        probe.instr(working.node_count() as u64); // initial strash sweep
        for pass in recipe.passes() {
            let label = match pass {
                Pass::Balance => "pass/balance",
                Pass::Rewrite => "pass/rewrite",
                Pass::Refactor(_) => "pass/refactor",
                Pass::Sweep => "pass/sweep",
            };
            let pass_span = span.child(label);
            pass_span.counter("nodes_in", working.node_count() as u64);
            working = match pass {
                Pass::Balance => balance(&working, probe),
                Pass::Rewrite => rewrite(&working, probe),
                Pass::Refactor(seed) => refactor(&working, *seed, probe),
                Pass::Sweep => sweep(&working, probe),
            };
            pass_span.counter("nodes_out", working.node_count() as u64);
        }

        // Technology mapping.
        let netlist = {
            let map_span = span.child("map");
            let netlist = map_to_cells(&working, &self.library, aig.name(), recipe, probe);
            map_span.counter("cells", netlist.cell_count() as u64);
            netlist
        };

        // Equivalence checking.
        match self.verify {
            VerifyMode::Off => {}
            VerifyMode::Random => {
                let _v = span.child("verify/random");
                verify_equivalence(aig, &netlist, probe)?;
            }
            VerifyMode::Sat => {
                let _v = span.child("verify/sat");
                verify_equivalence(aig, &netlist, probe)?;
                verify_equivalence_sat(aig, &netlist, probe)?;
            }
        }
        Ok(netlist)
    }

    /// Turn final counters into the stage report for `ctx`.
    fn finalize(&self, counters: CounterSet, recipe: &Recipe, ctx: &ExecContext) -> StageReport {
        let work = StageWork::from_counters(
            &counters,
            self.parallel_fraction,
            sync_overhead(recipe),
            &ctx.model,
        );
        let runtime_secs = ctx.model.runtime_secs(&work, &ctx.machine);
        StageReport {
            kind: StageKind::Synthesis,
            runtime_secs,
            counters,
            work,
            parallel_fraction: self.parallel_fraction,
        }
    }
}

/// Synchronization overhead attributed to a recipe's pass pipeline.
fn sync_overhead(recipe: &Recipe) -> f64 {
    600.0 * recipe.passes().len().max(1) as f64
}

/// A replayable recording of one synthesis run: the machine-independent
/// probe event stream plus the report parameters that depend only on
/// the recipe and engine (not the machine).
///
/// Produced by [`Synthesizer::run_traced`]; consumed by
/// [`Synthesizer::report_from_trace`] to re-cost the same run on other
/// machine configurations without repeating the structural work — the
/// basis of the sweep engine's flow-result cache.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisTrace {
    events: ProbeTrace,
    sync_cycles: f64,
    parallel_fraction: f64,
}

impl SynthesisTrace {
    /// Number of recorded probe events.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Passes.
// ---------------------------------------------------------------------

/// Copy `aig` into a fresh structurally-hashed AIG, applying `assoc` to
/// reassociate conjunction chains.
fn rebuild_with<F>(aig: &Aig, probe: &mut PerfProbe, mut assoc: F) -> Aig
where
    F: FnMut(&mut Aig, Vec<Lit>, &mut PerfProbe) -> Lit,
{
    let fanouts = aig.fanouts();
    let mut out = Aig::new(aig.name());
    let mut map: Vec<Lit> = Vec::with_capacity(aig.node_count());
    let translate = |map: &[Lit], l: Lit| map[l.node() as usize].complement_if(l.is_complemented());
    for (i, node) in aig.nodes().iter().enumerate() {
        probe.read(i as u64 * 16); // node table walk
        let lit = match node {
            AigNode::Const0 => Lit::FALSE,
            AigNode::Pi(_) => out.add_pi(),
            AigNode::And(a, b) => {
                // Collect the conjunction chain rooted here: descend into
                // plain (non-complemented) AND fanins with single fanout.
                let mut leaves: Vec<Lit> = Vec::new();
                let mut stack = vec![*a, *b];
                while let Some(l) = stack.pop() {
                    probe.read(u64::from(l.raw()) * 8 + 4);
                    let expandable = !l.is_complemented()
                        && fanouts[l.node() as usize] == 1
                        && matches!(aig.nodes()[l.node() as usize], AigNode::And(..));
                    probe.branch(0x51, expandable);
                    if expandable {
                        if let AigNode::And(x, y) = aig.nodes()[l.node() as usize] {
                            stack.push(x);
                            stack.push(y);
                        }
                    } else {
                        leaves.push(translate(&map, l));
                    }
                }
                probe.loop_branches(leaves.len() as u64);
                // Hash computation + canonicalization per rebuilt node.
                probe.instr(14 + 4 * leaves.len() as u64);
                assoc(&mut out, leaves, probe)
            }
        };
        map.push(lit);
    }
    for (name, l) in aig.outputs() {
        out.add_po(name.clone(), translate(&map, *l));
    }
    out
}

/// Balance: rebuild conjunction chains as balanced trees.
fn balance(aig: &Aig, probe: &mut PerfProbe) -> Aig {
    rebuild_with(aig, probe, |out, leaves, probe| {
        probe.instr(leaves.len() as u64);
        out.and_many(leaves)
    })
}

/// Rewrite: rebuild through the structural hasher (folds constants,
/// shares duplicates) keeping left-deep association.
fn rewrite(aig: &Aig, probe: &mut PerfProbe) -> Aig {
    rebuild_with(aig, probe, |out, mut leaves, probe| {
        probe.instr(leaves.len() as u64);
        leaves.sort_unstable(); // canonical operand order: more sharing
        let mut acc = match leaves.first() {
            Some(&l) => l,
            None => return Lit::TRUE,
        };
        for &l in &leaves[1..] {
            acc = out.and2(acc, l);
        }
        acc
    })
}

/// Refactor: seeded chain permutation — same function, new structure.
fn refactor(aig: &Aig, seed: u64, probe: &mut PerfProbe) -> Aig {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rebuild_with(aig, probe, move |out, mut leaves, probe| {
        probe.instr(leaves.len() as u64);
        // Fisher-Yates shuffle of the chain, then left-deep rebuild.
        for i in (1..leaves.len()).rev() {
            let j = rng.gen_range(0..=i);
            leaves.swap(i, j);
        }
        let mut acc = match leaves.first() {
            Some(&l) => l,
            None => return Lit::TRUE,
        };
        for &l in &leaves[1..] {
            acc = out.and2(acc, l);
        }
        acc
    })
}

/// Sweep: copy only the nodes reachable from a primary output.
fn sweep(aig: &Aig, probe: &mut PerfProbe) -> Aig {
    let n = aig.node_count();
    let mut live = vec![false; n];
    let mut stack: Vec<u32> = aig.outputs().iter().map(|(_, l)| l.node()).collect();
    while let Some(id) = stack.pop() {
        probe.read(0xF000_0000 + u64::from(id) * 4);
        if std::mem::replace(&mut live[id as usize], true) {
            probe.branch(0x55, true);
            continue;
        }
        probe.branch(0x55, false);
        if let AigNode::And(a, b) = aig.nodes()[id as usize] {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    let mut out = Aig::new(aig.name());
    let mut map: Vec<Lit> = vec![Lit::FALSE; n];
    for (i, node) in aig.nodes().iter().enumerate() {
        match node {
            AigNode::Const0 => {}
            // PIs are always kept so the interface is unchanged.
            AigNode::Pi(_) => map[i] = out.add_pi(),
            AigNode::And(a, b) => {
                if live[i] {
                    let la = map[a.node() as usize].complement_if(a.is_complemented());
                    let lb = map[b.node() as usize].complement_if(b.is_complemented());
                    map[i] = out.and2(la, lb);
                    probe.instr(6);
                }
            }
        }
    }
    for (name, l) in aig.outputs() {
        out.add_po(
            name.clone(),
            map[l.node() as usize].complement_if(l.is_complemented()),
        );
    }
    out
}

// ---------------------------------------------------------------------
// Technology mapping.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Covered {
    /// Node is mapped as its own gate.
    Root,
    /// Node is absorbed inside an XOR/MUX pattern rooted elsewhere.
    Absorbed,
}

/// Map the AIG onto library cells.
fn map_to_cells(
    aig: &Aig,
    lib: &Library,
    design_name: &str,
    recipe: &Recipe,
    probe: &mut PerfProbe,
) -> Netlist {
    let nodes = aig.nodes();
    let n = nodes.len();

    // Usage polarity vote: how often each node is referenced plain vs
    // complemented (POs included).
    let mut plain_uses = vec![0u32; n];
    let mut compl_uses = vec![0u32; n];
    let tally = |l: &Lit, plain: &mut [u32], compl: &mut [u32]| {
        if l.is_complemented() {
            compl[l.node() as usize] += 1;
        } else {
            plain[l.node() as usize] += 1;
        }
    };
    for node in nodes {
        if let AigNode::And(a, b) = node {
            tally(a, &mut plain_uses, &mut compl_uses);
            tally(b, &mut plain_uses, &mut compl_uses);
        }
    }
    for (_, l) in aig.outputs() {
        tally(l, &mut plain_uses, &mut compl_uses);
    }

    // Pattern detection: XOR / MUX rooted at complemented-use AND nodes.
    // xor2(a,b) in this AIG builder is !AND(!AND(a,!b), !AND(!a,b));
    // mux2(s,t,e) is !AND(!AND(s,t), !AND(!s,e)).
    #[derive(Debug, Clone, Copy)]
    enum Pattern {
        Xor { a: Lit, b: Lit },
        Mux { s: Lit, t: Lit, e: Lit },
    }
    let mut pattern: Vec<Option<Pattern>> = vec![None; n];
    let mut covered = vec![Covered::Root; n];
    let single_internal_use =
        |i: usize, plain: &[u32], compl: &[u32]| plain[i] == 0 && compl[i] == 1;
    for (i, node) in nodes.iter().enumerate() {
        probe.read(i as u64 * 16 + 1);
        let AigNode::And(l1, l2) = node else { continue };
        let is_candidate = l1.is_complemented() && l2.is_complemented();
        probe.branch(0x70, is_candidate);
        if !is_candidate {
            continue;
        }
        let (x, y) = (l1.node() as usize, l2.node() as usize);
        let (AigNode::And(xa, xb), AigNode::And(ya, yb)) = (nodes[x], nodes[y]) else {
            continue;
        };
        // Children must be used only inside this pattern.
        if !single_internal_use(x, &plain_uses, &compl_uses)
            || !single_internal_use(y, &plain_uses, &compl_uses)
        {
            probe.branch(0x71, false);
            continue;
        }
        probe.branch(0x71, true);
        // XOR: x = (a & !b), y = (!a & b).
        let mut found = None;
        for (p, q) in [(xa, xb), (xb, xa)] {
            for (r, s) in [(ya, yb), (yb, ya)] {
                if p == !r && q == !s && !p.is_complemented() && q.is_complemented() {
                    found = Some(Pattern::Xor { a: p, b: !q });
                }
            }
        }
        // MUX: x = (s & t), y = (!s & e).
        if found.is_none() {
            for (p, q) in [(xa, xb), (xb, xa)] {
                for (r, s) in [(ya, yb), (yb, ya)] {
                    if r == !p {
                        found = Some(Pattern::Mux { s: p, t: q, e: s });
                    }
                }
            }
        }
        probe.branch(0x72, found.is_some());
        if let Some(pat) = found {
            pattern[i] = Some(pat);
            covered[x] = Covered::Absorbed;
            covered[y] = Covered::Absorbed;
        }
    }

    // Emit the netlist. Each mapped node implements one polarity of its
    // literal; inverters bridge polarity mismatches on demand.
    let mut nl = Netlist::new(format!("{design_name}.{}", recipe.name()), lib.name());
    // net id of the *plain* literal of each node (if materialized), and
    // of the complemented literal.
    let mut net_plain: Vec<Option<NetId>> = vec![None; n];
    let mut net_compl: Vec<Option<NetId>> = vec![None; n];
    let mut inv_count = 0u32;
    let mut gate_count = 0u32;

    // Constant nets on demand.
    let mut const0: Option<NetId> = None;
    let mut const1: Option<NetId> = None;

    for (k, &pi) in aig.inputs().iter().enumerate() {
        let net = nl.add_input(format!("pi{k}"));
        net_plain[pi as usize] = Some(net);
    }

    // Fetch (or synthesize via INV / TIE) the net for a literal. The
    // argument list is the full memo state of the conversion; bundling
    // it into a struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn literal_net(
        l: Lit,
        nl: &mut Netlist,
        net_plain: &mut [Option<NetId>],
        net_compl: &mut [Option<NetId>],
        const0: &mut Option<NetId>,
        const1: &mut Option<NetId>,
        inv_count: &mut u32,
        probe: &mut PerfProbe,
    ) -> NetId {
        probe.read(u64::from(l.raw()) * 8 + 2);
        if l.is_const() {
            let (slot, master, kind) = if l.is_complemented() {
                (const1, "TIE1_X1", CellKind::Tie1)
            } else {
                (const0, "TIE0_X1", CellKind::Tie0)
            };
            return *slot.get_or_insert_with(|| {
                let net = nl.add_net(if kind == CellKind::Tie1 { "const1" } else { "const0" });
                nl.add_cell(format!("tie_{kind}"), master, kind, vec![], net);
                net
            });
        }
        let i = l.node() as usize;
        let (have, want) = if l.is_complemented() {
            (&mut net_compl[i], &net_plain[i])
        } else {
            (&mut net_plain[i], &net_compl[i])
        };
        if let Some(net) = *have {
            return net;
        }
        // Invert the other polarity (which must exist: nodes are
        // materialized before use in topological order).
        let src = want.expect("source polarity materialized before use");
        let inv_net = nl.add_net(format!("inv{inv_count}"));
        nl.add_cell(
            format!("u_inv{inv_count}"),
            "INV_X1",
            CellKind::Inv,
            vec![src],
            inv_net,
        );
        *inv_count += 1;
        *have = Some(inv_net);
        inv_net
    }

    macro_rules! lit_net {
        ($l:expr) => {
            literal_net(
                $l,
                &mut nl,
                &mut net_plain,
                &mut net_compl,
                &mut const0,
                &mut const1,
                &mut inv_count,
                probe,
            )
        };
    }

    for (i, node) in nodes.iter().enumerate() {
        let AigNode::And(a, b) = *node else { continue };
        if covered[i] == Covered::Absorbed {
            continue;
        }
        probe.instr(18); // gate selection, polarity vote, naming
        probe.loop_branches(1);
        let out_net = nl.add_net(format!("n{i}"));
        if let Some(pat) = pattern[i] {
            // The pattern computes the *complemented* literal of node i.
            match pat {
                Pattern::Xor { a, b } => {
                    let na = lit_net!(a);
                    let nb = lit_net!(b);
                    nl.add_cell(
                        format!("g{gate_count}"),
                        "XOR2_X1",
                        CellKind::Xor2,
                        vec![na, nb],
                        out_net,
                    );
                }
                Pattern::Mux { s, t, e } => {
                    let ne = lit_net!(e);
                    let nt = lit_net!(t);
                    let ns = lit_net!(s);
                    nl.add_cell(
                        format!("g{gate_count}"),
                        "MUX2_X1",
                        CellKind::Mux2,
                        vec![ne, nt, ns],
                        out_net,
                    );
                }
            }
            gate_count += 1;
            net_compl[i] = Some(out_net);
            continue;
        }
        // Polarity vote decides NAND/AND (and OR/NOR via De Morgan).
        let want_compl = compl_uses[i] > plain_uses[i];
        let both_compl = a.is_complemented() && b.is_complemented();
        probe.branch(0x80, want_compl);
        probe.branch(0x81, both_compl);
        let (kind, master, in_a, in_b, is_compl_out) = if both_compl && want_compl {
            // !(!a & !b) = a | b  -> OR gives plain of... careful:
            // node literal plain = !a & !b; complemented = a | b.
            (CellKind::Or2, "OR2_X1", !a, !b, true)
        } else if both_compl {
            // plain polarity of !a & !b directly: NOR(a, b).
            (CellKind::Nor2, "NOR2_X1", !a, !b, false)
        } else if want_compl {
            (CellKind::Nand2, "NAND2_X1", a, b, true)
        } else {
            (CellKind::And2, "AND2_X1", a, b, false)
        };
        let na = lit_net!(in_a);
        let nb = lit_net!(in_b);
        nl.add_cell(
            format!("g{gate_count}"),
            master,
            kind,
            vec![na, nb],
            out_net,
        );
        gate_count += 1;
        if is_compl_out {
            net_compl[i] = Some(out_net);
        } else {
            net_plain[i] = Some(out_net);
        }
    }

    for (k, (name, l)) in aig.outputs().iter().enumerate() {
        let mut net = lit_net!(*l);
        // A PO cannot share a net with a PI in this netlist model
        // (ports are nets); buffer PI-fed outputs.
        let is_pi_net = nl.primary_inputs().contains(&net);
        probe.branch(0x90, is_pi_net);
        if is_pi_net {
            let buf_net = nl.add_net(format!("po_buf{k}"));
            nl.add_cell(
                format!("u_pobuf{k}"),
                "BUF_X1",
                CellKind::Buf,
                vec![net],
                buf_net,
            );
            net = buf_net;
        }
        nl.add_output(name.clone(), net);
    }
    nl
}

/// Random-vector equivalence spot-check between source AIG and mapped
/// netlist.
fn verify_equivalence(
    aig: &Aig,
    netlist: &Netlist,
    probe: &mut PerfProbe,
) -> Result<(), FlowError> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE9A);
    let rounds = if aig.input_count() <= 10 { 4 } else { 2 };
    for _ in 0..rounds {
        let inputs: Vec<bool> = (0..aig.input_count()).map(|_| rng.gen_bool(0.5)).collect();
        probe.instr((aig.node_count() + netlist.cell_count()) as u64);
        let golden = aig.simulate(&inputs)?;
        let mapped = netlist.simulate(&inputs)?;
        if golden != mapped {
            return Err(FlowError::Design(
                eda_cloud_netlist::NetlistError::Parse {
                    line: 0,
                    col: 0,
                    message: "mapped netlist mismatches AIG on a random vector".to_owned(),
                },
            ));
        }
    }
    Ok(())
}

/// Sound SAT-based miter check of the mapped netlist against the AIG.
/// Falls back silently when the propagation budget runs out (the random
/// pre-filter has already passed at that point).
fn verify_equivalence_sat(
    aig: &Aig,
    netlist: &Netlist,
    probe: &mut PerfProbe,
) -> Result<(), FlowError> {
    use eda_cloud_netlist::cec::{self, CecResult};
    let mapped_aig = cec::netlist_to_aig(netlist)?;
    probe.instr((aig.node_count() + mapped_aig.node_count()) as u64 * 4);
    let budget = 5_000_000;
    match cec::check_equivalence(aig, &mapped_aig, budget) {
        Ok(CecResult::Equivalent) => Ok(()),
        Ok(CecResult::Inequivalent { .. }) => Err(FlowError::Design(
            eda_cloud_netlist::NetlistError::Parse {
                line: 0,
                col: 0,
                message: "SAT found a distinguishing input for the mapped netlist".to_owned(),
            },
        )),
        // Budget exhausted: keep the random-simulation verdict.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::generators;

    fn ctx() -> ExecContext {
        ExecContext::with_vcpus(1)
    }

    #[test]
    fn maps_adder_correctly() {
        let aig = generators::adder(6);
        let (nl, report) = Synthesizer::new()
            .run(&aig, &Recipe::balanced(), &ctx())
            .expect("synthesis succeeds");
        nl.check().expect("netlist well-formed");
        assert!(report.runtime_secs > 0.0);
        assert_eq!(nl.primary_inputs().len(), 12);
        assert_eq!(nl.primary_outputs().len(), 7);
    }

    #[test]
    fn all_recipes_preserve_function() {
        let aig = generators::alu(4);
        for recipe in Recipe::standard_suite() {
            // Verification inside run() checks random vectors.
            let (nl, _) = Synthesizer::new()
                .run(&aig, &recipe, &ctx())
                .unwrap_or_else(|e| panic!("recipe {} failed: {e}", recipe.name()));
            nl.check().expect("well-formed");
        }
    }

    #[test]
    fn xor_pattern_is_detected() {
        let aig = generators::parity(8);
        let (nl, _) = Synthesizer::new()
            .run(&aig, &Recipe::raw(), &ctx())
            .expect("synthesis");
        let xors = nl
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Xor2)
            .count();
        assert!(xors >= 7, "parity tree should map to XOR cells, got {xors}");
    }

    #[test]
    fn mux_pattern_is_detected() {
        let aig = generators::barrel(8);
        let (nl, _) = Synthesizer::new()
            .run(&aig, &Recipe::raw(), &ctx())
            .expect("synthesis");
        let muxes = nl
            .cells()
            .iter()
            .filter(|c| c.kind == CellKind::Mux2)
            .count();
        assert!(muxes > 0, "barrel shifter should map to MUX cells");
    }

    #[test]
    fn empty_recipe_is_rejected_at_construction() {
        let err = Recipe::new("broken", Vec::new()).expect_err("empty pass list must fail");
        assert_eq!(err, FlowError::EmptyRecipe { name: "broken".into() });
        assert!(err.to_string().contains("Recipe::raw()"));
        // The sanctioned pass-free baseline still exists and the suite
        // still carries it, so downstream datasets are unchanged.
        assert!(Recipe::raw().passes().is_empty());
        assert!(Recipe::standard_suite().iter().any(|r| r.passes().is_empty()));
    }

    #[test]
    fn valid_recipe_construction_keeps_name_and_passes() {
        let recipe = Recipe::new("one", vec![Pass::Sweep]).expect("single pass is valid");
        assert_eq!(recipe.name(), "one");
        assert_eq!(recipe.passes(), [Pass::Sweep]);
    }

    #[test]
    fn recipes_change_structure() {
        let aig = generators::ctrl(3, 300);
        let syn = Synthesizer::new();
        let (a, _) = syn.run(&aig, &Recipe::raw(), &ctx()).expect("raw");
        let (b, _) = syn
            .run(
                &aig,
                &Recipe::new("rf", vec![Pass::Refactor(5), Pass::Balance]).expect("non-empty"),
                &ctx(),
            )
            .expect("refactor");
        assert_ne!(
            a.cell_count(),
            b.cell_count(),
            "different recipes should give structurally different netlists"
        );
    }

    #[test]
    fn balance_reduces_depth_of_chains() {
        // A long AND chain.
        let mut aig = Aig::new("chain");
        let mut acc = aig.add_pi();
        for _ in 0..31 {
            let x = aig.add_pi();
            acc = aig.and2(acc, x);
        }
        aig.add_po("y", acc);
        assert_eq!(aig.depth(), 31);
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        let balanced = balance(&aig, &mut probe);
        assert!(balanced.depth() <= 6, "depth={}", balanced.depth());
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut aig = Aig::new("deadwood");
        let a = aig.add_pi();
        let b = aig.add_pi();
        let live = aig.and2(a, b);
        // Dead cone: never reaches an output.
        let d1 = aig.and2(!a, b);
        let _d2 = aig.and2(d1, a);
        aig.add_po("y", live);
        assert_eq!(aig.and_count(), 3);
        let mut probe = PerfProbe::for_machine(&eda_cloud_perf::MachineConfig::vcpus(1));
        let swept = sweep(&aig, &mut probe);
        assert_eq!(swept.and_count(), 1);
        assert_eq!(swept.input_count(), 2, "interface preserved");
        for (x, y) in [(false, false), (true, true), (true, false)] {
            assert_eq!(
                swept.simulate(&[x, y]).unwrap(),
                aig.simulate(&[x, y]).unwrap()
            );
        }
    }

    #[test]
    fn empty_design_rejected() {
        let aig = Aig::new("empty");
        assert_eq!(
            Synthesizer::new()
                .run(&aig, &Recipe::raw(), &ctx())
                .unwrap_err(),
            FlowError::EmptyDesign
        );
    }

    #[test]
    fn constant_output_maps_to_tie() {
        let mut aig = Aig::new("konst");
        let _ = aig.add_pi();
        aig.add_po("zero", Lit::FALSE);
        aig.add_po("one", Lit::TRUE);
        let (nl, _) = Synthesizer::new()
            .run(&aig, &Recipe::raw(), &ctx())
            .expect("synthesis");
        let ties = nl
            .cells()
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Tie0 | CellKind::Tie1))
            .count();
        assert_eq!(ties, 2);
        assert_eq!(nl.simulate(&[true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn pi_fed_output_gets_buffer() {
        let mut aig = Aig::new("wire");
        let a = aig.add_pi();
        aig.add_po("y", a);
        let (nl, _) = Synthesizer::new()
            .run(&aig, &Recipe::raw(), &ctx())
            .expect("synthesis");
        assert!(nl.cells().iter().any(|c| c.kind == CellKind::Buf));
        assert_eq!(nl.simulate(&[true]).unwrap(), vec![true]);
    }

    #[test]
    fn sat_verification_passes_on_real_recipes() {
        let aig = generators::alu(3);
        for recipe in [Recipe::raw(), Recipe::balanced()] {
            let (nl, _) = Synthesizer::new()
                .with_verify_mode(VerifyMode::Sat)
                .run(&aig, &recipe, &ctx())
                .unwrap_or_else(|e| panic!("SAT-verified synthesis failed: {e}"));
            nl.check().expect("well-formed");
        }
    }

    #[test]
    fn report_counters_populated() {
        let aig = generators::multiplier(6);
        let (_, report) = Synthesizer::new()
            .run(&aig, &Recipe::balanced(), &ctx())
            .expect("synthesis");
        assert!(report.counters.instructions > 0);
        assert!(report.counters.branches > 0);
        assert!(report.counters.cache_refs > 0);
        assert_eq!(report.kind, StageKind::Synthesis);
    }

    #[test]
    fn traced_run_matches_plain_run() {
        let aig = generators::multiplier(6);
        let syn = Synthesizer::new();
        let ctx = ctx();
        let (nl_plain, rep_plain) = syn.run(&aig, &Recipe::balanced(), &ctx).expect("run");
        let (nl_traced, rep_traced, trace) =
            syn.run_traced(&aig, &Recipe::balanced(), &ctx).expect("traced run");
        assert_eq!(nl_plain.cell_count(), nl_traced.cell_count());
        assert_eq!(format!("{nl_plain:?}"), format!("{nl_traced:?}"));
        assert_eq!(rep_plain, rep_traced);
        assert!(trace.event_count() > 0);
    }

    #[test]
    fn trace_replays_bit_identical_reports_across_machines() {
        let aig = generators::multiplier(6);
        let syn = Synthesizer::new();
        let (_, _, trace) = syn
            .run_traced(&aig, &Recipe::balanced(), &ExecContext::with_vcpus(1))
            .expect("traced run");
        for vcpus in [1u32, 2, 4, 8] {
            let ctx = ExecContext::with_vcpus(vcpus);
            let (_, fresh) = syn.run(&aig, &Recipe::balanced(), &ctx).expect("fresh run");
            let replayed = Synthesizer::report_from_trace(&trace, &ctx);
            assert_eq!(fresh, replayed, "mismatch at {vcpus} vCPUs");
        }
    }

    #[test]
    fn more_vcpus_reduce_runtime() {
        let aig = generators::multiplier(8);
        let syn = Synthesizer::new().with_verification(false);
        let (_, r1) = syn.run(&aig, &Recipe::balanced(), &ExecContext::with_vcpus(1)).unwrap();
        let (_, r8) = syn.run(&aig, &Recipe::balanced(), &ExecContext::with_vcpus(8)).unwrap();
        let speedup = r1.runtime_secs / r8.runtime_secs;
        assert!(
            speedup > 1.2 && speedup < 2.6,
            "synthesis speedup at 8 vCPUs should be modest, got {speedup}"
        );
    }
}
