//! Flow-level errors.

use eda_cloud_netlist::NetlistError;
use eda_cloud_tech::TechError;
use std::error::Error;
use std::fmt;

/// Errors raised by the flow engines.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The input design is malformed.
    Design(NetlistError),
    /// A required library cell is missing.
    Tech(TechError),
    /// The routing grid has no capacity for the design.
    Unroutable {
        /// Nets that still overflow after the final rip-up iteration.
        overflowed_nets: usize,
    },
    /// The placement did not converge within the iteration budget.
    PlacementDiverged,
    /// An empty design was given to a stage that needs logic.
    EmptyDesign,
    /// A recipe was constructed with no passes. The explicit pass-free
    /// baseline is [`Recipe::raw`](crate::Recipe::raw); every other
    /// recipe must name at least one pass so runtime estimates and
    /// search alphabets never silently degenerate.
    EmptyRecipe {
        /// Name the caller tried to give the empty recipe.
        name: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Design(e) => write!(f, "malformed design: {e}"),
            FlowError::Tech(e) => write!(f, "technology library problem: {e}"),
            FlowError::Unroutable { overflowed_nets } => {
                write!(f, "routing failed with {overflowed_nets} overflowed nets")
            }
            FlowError::PlacementDiverged => write!(f, "placement failed to converge"),
            FlowError::EmptyDesign => write!(f, "design has no logic to process"),
            FlowError::EmptyRecipe { name } => {
                write!(f, "recipe `{name}` has no passes; use Recipe::raw() for the pass-free baseline")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Design(e) => Some(e),
            FlowError::Tech(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Design(e)
    }
}

impl From<TechError> for FlowError {
    fn from(e: TechError) -> Self {
        FlowError::Tech(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FlowError::Unroutable { overflowed_nets: 3 };
        assert!(e.to_string().contains("3 overflowed"));
        assert!(e.source().is_none());
        let e: FlowError = NetlistError::CombinationalCycle.into();
        assert!(e.source().is_some());
        let e: FlowError = TechError::UnknownCell("X".into()).into();
        assert!(e.to_string().contains('X'));
        let e = FlowError::EmptyRecipe { name: "broken".into() };
        assert!(e.to_string().contains("`broken`"));
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<FlowError>();
    }
}
