//! Analytical placement: quadratic wirelength minimization by gradient
//! descent with bin-based density spreading and row legalization.
//!
//! The paper attributes placement's counter signature — the highest
//! cache-miss rate and the heaviest AVX floating-point usage of the four
//! stages — to "the analytical component in the placement engine that
//! tries to optimize the wirelength across all the chip instances using
//! convex optimization methods ... access to large vectors to calculate
//! the gradients". This engine is exactly that component: every
//! iteration computes per-net centroids and per-cell gradients over
//! large coordinate vectors (vectorizable FP, emitted as AVX ops), with
//! connectivity-ordered accesses that thrash small caches and benefit
//! from the larger LLC share that comes with more vCPUs.

use crate::{ExecContext, FlowError, StageKind, StageReport};
use eda_cloud_netlist::{NetId, Netlist};
use eda_cloud_perf::StageWork;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of placement: one coordinate pair per cell on a die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Cell x coordinates in µm (index = cell id).
    pub x: Vec<f64>,
    /// Cell y coordinates in µm.
    pub y: Vec<f64>,
    /// Die dimensions in µm.
    pub die_um: (f64, f64),
    /// Final half-perimeter wirelength in µm.
    pub hpwl_um: f64,
    /// Fixed pin positions for primary inputs (left edge).
    pub pi_pins: Vec<(f64, f64)>,
    /// Fixed pin positions for primary outputs (right edge).
    pub po_pins: Vec<(f64, f64)>,
}

impl Placement {
    /// Position of the driver/sink identified by a net endpoint.
    #[must_use]
    pub fn cell_pos(&self, cell: usize) -> (f64, f64) {
        (self.x[cell], self.y[cell])
    }

    /// Half-perimeter wirelength of one net given its endpoint
    /// positions.
    #[must_use]
    pub fn hpwl_of(points: &[(f64, f64)]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in points {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        (x1 - x0) + (y1 - y0)
    }
}

/// The analytical placement engine.
///
/// Gradient loops are data-parallel, but the outer descent iterations,
/// density spreading, and legalization are sequential — the paper
/// measures ~2.3x speedup at 8 vCPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Placer {
    iterations: usize,
    utilization: f64,
    seed: u64,
    parallel_fraction: f64,
}

impl Placer {
    /// Placer with default settings (40 descent iterations, 70% target
    /// utilization).
    #[must_use]
    pub fn new() -> Self {
        Self {
            iterations: 64,
            utilization: 0.70,
            seed: 0x9_1ACE,
            parallel_fraction: 0.66,
        }
    }

    /// Override the descent iteration count.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "placement needs at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Place the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::EmptyDesign`] when there are no cells, or
    /// [`FlowError::PlacementDiverged`] if coordinates become
    /// non-finite.
    pub fn run(
        &self,
        netlist: &Netlist,
        ctx: &ExecContext,
    ) -> Result<(Placement, StageReport), FlowError> {
        let n = netlist.cell_count();
        if n == 0 {
            return Err(FlowError::EmptyDesign);
        }
        let mut probe = ctx.probe();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Die: square sized for the cell count at target utilization
        // (average master ~0.4 µm² in synth14).
        let total_area = 0.4 * n as f64;
        let side = (total_area / self.utilization).sqrt().max(1.0);
        let die = (side, side);

        // Fixed I/O pins on the die edges.
        let pin_spread = |count: usize, edge_x: f64| -> Vec<(f64, f64)> {
            (0..count)
                .map(|k| (edge_x, side * (k as f64 + 0.5) / count.max(1) as f64))
                .collect()
        };
        let pi_pins = pin_spread(netlist.primary_inputs().len(), 0.0);
        let po_pins = pin_spread(netlist.primary_outputs().len(), side);

        // Initial positions: seeded uniform.
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..side)).collect();
        let mut y: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..side)).collect();

        // Net endpoint table: (cell ids, fixed points).
        let endpoints = net_endpoints(netlist, &pi_pins, &po_pins);

        // Gradient descent with density spreading.
        let bins = ((n as f64).sqrt() / 3.0).ceil().max(2.0) as usize;
        let mut cx = vec![0.0f64; endpoints.len()];
        let mut cy = vec![0.0f64; endpoints.len()];
        // Real analytical placers keep tens of bytes of state per cell
        // and per net (coordinates, gradients, net endpoint lists,
        // sparse-matrix rows); stride the probe addresses accordingly
        // so the cache footprint matches a production engine.
        const CELL_STRIDE: u64 = 192;
        const NET_STRIDE: u64 = 224;
        // Pin-level connectivity records (driver/sink entries) are the
        // placer's largest structure: one ~32-byte record per pin.
        const PIN_STRIDE: u64 = 32;
        let x_base = 0x1000_0000u64;
        let y_base = 0x5000_0000u64;
        let c_base = 0x9000_0000u64;
        let g_base = 0xD000_0000u64;
        let pin_base = 0x1_2000_0000u64;
        let gd_span = ctx.span.child("gradient_descent");
        for iter in 0..self.iterations {
            let iter_span = gd_span.child(&format!("iter/{iter}"));
            // 1) Net centroids (reads of scattered cell coordinates).
            for (ni, ep) in endpoints.iter().enumerate() {
                let mut sx = 0.0;
                let mut sy = 0.0;
                for &cell in &ep.cells {
                    probe.read(x_base + cell as u64 * CELL_STRIDE);
                    probe.read(y_base + cell as u64 * CELL_STRIDE);
                    sx += x[cell];
                    sy += y[cell];
                }
                for &(fx, fy) in &ep.fixed {
                    sx += fx;
                    sy += fy;
                }
                let k = (ep.cells.len() + ep.fixed.len()).max(1) as f64;
                cx[ni] = sx / k;
                cy[ni] = sy / k;
                probe.write(c_base + ni as u64 * NET_STRIDE);
                probe.loop_branches(ep.cells.len() as u64 + 1);
                probe.fp(2 * (ep.cells.len() + ep.fixed.len()) as u64 + 4, true); // centroid vector math
            }
            // 2) Cell gradients: move toward the mean of its nets'
            //    centroids (quadratic-wirelength gradient step).
            let alpha = 0.55 * (1.0 - iter as f64 / (2.0 * self.iterations as f64));
            for (cell, nets) in cell_nets(netlist).iter().enumerate() {
                if nets.is_empty() {
                    continue;
                }
                let mut gx = 0.0;
                let mut gy = 0.0;
                for (k, &ni) in nets.iter().enumerate() {
                    probe.read(c_base + u64::from(ni) * NET_STRIDE);
                    // Pin record for this (cell, net) incidence.
                    probe.read(pin_base + (cell as u64 * 8 + k as u64) * PIN_STRIDE);
                    gx += cx[ni as usize];
                    gy += cy[ni as usize];
                }
                let k = nets.len() as f64;
                x[cell] += alpha * (gx / k - x[cell]);
                y[cell] += alpha * (gy / k - y[cell]);
                probe.write(x_base + cell as u64 * CELL_STRIDE);
                probe.write(y_base + cell as u64 * CELL_STRIDE);
                probe.write(g_base + cell as u64 * CELL_STRIDE); // gradient vector
                probe.loop_branches(nets.len() as u64 + 1);
                probe.fp(2 * nets.len() as u64 + 8, true); // gradient vector math
            }
            // 3) Density spreading on a coarse bin grid.
            let cap = (n as f64) / (bins * bins) as f64 * 1.4;
            let mut load = vec![0u32; bins * bins];
            for cell in 0..n {
                let bx = ((x[cell] / side) * bins as f64).clamp(0.0, bins as f64 - 1.0) as usize;
                let by = ((y[cell] / side) * bins as f64).clamp(0.0, bins as f64 - 1.0) as usize;
                load[by * bins + bx] += 1;
                probe.read(0x4000_0000 + (by * bins + bx) as u64 * 4);
            }
            let mut overfull_cells = 0u64;
            for cell in 0..n {
                let bx = ((x[cell] / side) * bins as f64).clamp(0.0, bins as f64 - 1.0) as usize;
                let by = ((y[cell] / side) * bins as f64).clamp(0.0, bins as f64 - 1.0) as usize;
                let overfull = f64::from(load[by * bins + bx]) > cap;
                probe.branch(0xB000 + (by * bins + bx) as u64, overfull);
                if overfull {
                    overfull_cells += 1;
                    // Jitter toward the die center scaled by overflow.
                    let push = 0.12 * side / bins as f64;
                    x[cell] += rng.gen_range(-push..push) + (side / 2.0 - x[cell]) * 0.01;
                    y[cell] += rng.gen_range(-push..push) + (side / 2.0 - y[cell]) * 0.01;
                    probe.fp(6, true);
                }
                x[cell] = x[cell].clamp(0.0, side);
                y[cell] = y[cell].clamp(0.0, side);
            }
            // 4) Quantile spreading every few iterations: blend each
            //    coordinate toward its rank position. This is the
            //    locality-preserving answer to quadratic placement's
            //    tendency to collapse into a blob: order (and therefore
            //    neighborhoods) is kept, but the distribution is pulled
            //    toward uniform die coverage.
            if iter % 3 == 2 {
                iter_span.counter("quantile_spread", 1);
                for coords in [&mut x, &mut y] {
                    let mut order: Vec<usize> = (0..n).collect();
                    order.sort_by(|&a, &b| coords[a].total_cmp(&coords[b]));
                    probe.instr((n as f64 * (n as f64).log2().max(1.0)) as u64);
                    for (rank, &cell) in order.iter().enumerate() {
                        let target = (rank as f64 + 0.5) / n as f64 * side;
                        coords[cell] += 0.3 * (target - coords[cell]);
                        probe.write(0x4800_0000 + cell as u64 * 8);
                        probe.fp(2, true);
                    }
                }
            }
            iter_span.counter("overfull_cells", overfull_cells);
        }
        drop(gd_span);
        if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(FlowError::PlacementDiverged);
        }

        // Legalization: snap to rows (sequential sort-based).
        {
            let _legalize_span = ctx.span.child("legalize");
            legalize(&mut x, &mut y, side, &mut probe);
        }

        // Detailed placement: greedy swap refinement. Walk seeded random
        // cell pairs and swap whenever the half-perimeter wirelength of
        // the touched nets improves — the cheap tail-end pass every
        // production placer runs after legalization.
        let cell_net_list = cell_nets(netlist);
        let hpwl_of_cell = |cell: usize, x: &[f64], y: &[f64]| -> f64 {
            let mut total = 0.0;
            for &ni in &cell_net_list[cell] {
                let ep = &endpoints[ni as usize];
                let mut pts: Vec<(f64, f64)> =
                    ep.cells.iter().map(|&c| (x[c], y[c])).collect();
                pts.extend_from_slice(&ep.fixed);
                total += Placement::hpwl_of(&pts);
            }
            total
        };
        let detailed_span = ctx.span.child("detailed");
        let swaps = (n * 2).min(40_000);
        let mut improved = 0u32;
        for _ in 0..swaps {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            probe.read(x_base + a as u64 * CELL_STRIDE);
            probe.read(x_base + b as u64 * CELL_STRIDE);
            let before = hpwl_of_cell(a, &x, &y) + hpwl_of_cell(b, &x, &y);
            x.swap(a, b);
            y.swap(a, b);
            let after = hpwl_of_cell(a, &x, &y) + hpwl_of_cell(b, &x, &y);
            probe.fp(8, true);
            let keep = after < before;
            probe.branch(0xB5, keep);
            if keep {
                improved += 1;
                probe.write(x_base + a as u64 * CELL_STRIDE);
                probe.write(x_base + b as u64 * CELL_STRIDE);
            } else {
                x.swap(a, b);
                y.swap(a, b);
            }
        }
        detailed_span.counter("swaps_tried", swaps as u64);
        detailed_span.counter("swaps_improved", u64::from(improved));
        drop(detailed_span);

        // Final HPWL.
        let mut hpwl = 0.0;
        for ep in &endpoints {
            let mut pts: Vec<(f64, f64)> =
                ep.cells.iter().map(|&c| (x[c], y[c])).collect();
            pts.extend_from_slice(&ep.fixed);
            hpwl += Placement::hpwl_of(&pts);
            probe.fp(2 * pts.len() as u64, true);
        }

        let counters = probe.counters();
        let sync = 900.0 * self.iterations as f64;
        let work = StageWork::from_counters(&counters, self.parallel_fraction, sync, &ctx.model);
        let runtime_secs = ctx.model.runtime_secs(&work, &ctx.machine);
        Ok((
            Placement {
                x,
                y,
                die_um: die,
                hpwl_um: hpwl,
                pi_pins,
                po_pins,
            },
            StageReport {
                kind: StageKind::Placement,
                runtime_secs,
                counters,
                work,
                parallel_fraction: self.parallel_fraction,
            },
        ))
    }
}

impl Default for Placer {
    fn default() -> Self {
        Self::new()
    }
}

/// Endpoints of one net: movable cells + fixed pin points.
#[derive(Debug, Clone)]
struct NetEndpoints {
    cells: Vec<usize>,
    fixed: Vec<(f64, f64)>,
}

fn net_endpoints(
    netlist: &Netlist,
    pi_pins: &[(f64, f64)],
    po_pins: &[(f64, f64)],
) -> Vec<NetEndpoints> {
    netlist
        .nets()
        .iter()
        .map(|net| {
            let mut cells = Vec::new();
            let mut fixed = Vec::new();
            match net.driver {
                Some(eda_cloud_netlist::NetDriver::Cell(c)) => cells.push(c as usize),
                Some(eda_cloud_netlist::NetDriver::PrimaryInput(k)) => {
                    fixed.push(pi_pins[k as usize]);
                }
                None => {}
            }
            for sink in &net.sinks {
                match *sink {
                    eda_cloud_netlist::NetSink::CellPin { cell, .. } => cells.push(cell as usize),
                    eda_cloud_netlist::NetSink::PrimaryOutput(k) => {
                        fixed.push(po_pins[k as usize]);
                    }
                }
            }
            cells.sort_unstable();
            cells.dedup();
            NetEndpoints { cells, fixed }
        })
        .collect()
}

/// For each cell, the nets touching it.
fn cell_nets(netlist: &Netlist) -> Vec<Vec<NetId>> {
    let mut out = vec![Vec::new(); netlist.cell_count()];
    for (ni, net) in netlist.nets().iter().enumerate() {
        if let Some(eda_cloud_netlist::NetDriver::Cell(c)) = net.driver {
            out[c as usize].push(ni as NetId);
        }
        for sink in &net.sinks {
            if let eda_cloud_netlist::NetSink::CellPin { cell, .. } = *sink {
                out[cell as usize].push(ni as NetId);
            }
        }
    }
    for nets in &mut out {
        nets.sort_unstable();
        nets.dedup();
    }
    out
}

/// Row legalization: order cells by (row, x) and assign uniform slots.
fn legalize(x: &mut [f64], y: &mut [f64], side: f64, probe: &mut eda_cloud_perf::PerfProbe) {
    let n = x.len();
    let rows = (n as f64).sqrt().ceil().max(1.0) as usize;
    let row_height = side / rows as f64;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = (y[a] / row_height) as i64;
        let rb = (y[b] / row_height) as i64;
        ra.cmp(&rb).then(x[a].total_cmp(&x[b]))
    });
    probe.instr((n as f64 * (n as f64).log2().max(1.0)) as u64); // sort cost
    let per_row = n.div_ceil(rows);
    for (slot, &cell) in order.iter().enumerate() {
        let row = slot / per_row;
        let col = slot % per_row;
        y[cell] = (row as f64 + 0.5) * row_height;
        x[cell] = (col as f64 + 0.5) * side / per_row as f64;
        probe.write(0x5000_0000 + cell as u64 * 16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::{Recipe, Synthesizer};
    use eda_cloud_netlist::generators;

    fn placed(width: u32) -> (Placement, StageReport) {
        let aig = generators::adder(width);
        let ctx = ExecContext::with_vcpus(1);
        let (nl, _) = Synthesizer::new().run(&aig, &Recipe::balanced(), &ctx).unwrap();
        Placer::new().run(&nl, &ctx).unwrap()
    }

    #[test]
    fn coordinates_inside_die() {
        let (p, _) = placed(8);
        for (&x, &y) in p.x.iter().zip(&p.y) {
            assert!(x >= 0.0 && x <= p.die_um.0);
            assert!(y >= 0.0 && y <= p.die_um.1);
        }
    }

    #[test]
    fn placement_improves_over_random() {
        // The optimized HPWL must beat a random placement of the same
        // netlist by a sound margin.
        let aig = generators::multiplier(6);
        let ctx = ExecContext::with_vcpus(1);
        let (nl, _) = Synthesizer::new().run(&aig, &Recipe::balanced(), &ctx).unwrap();
        let (p, _) = Placer::new().run(&nl, &ctx).unwrap();

        // Random baseline with the same endpoints.
        let endpoints = net_endpoints(&nl, &p.pi_pins, &p.po_pins);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let rx: Vec<f64> = (0..nl.cell_count()).map(|_| rng.gen_range(0.0..p.die_um.0)).collect();
        let ry: Vec<f64> = (0..nl.cell_count()).map(|_| rng.gen_range(0.0..p.die_um.1)).collect();
        let mut random_hpwl = 0.0;
        for ep in &endpoints {
            let mut pts: Vec<(f64, f64)> = ep.cells.iter().map(|&c| (rx[c], ry[c])).collect();
            pts.extend_from_slice(&ep.fixed);
            random_hpwl += Placement::hpwl_of(&pts);
        }
        assert!(
            p.hpwl_um < 0.8 * random_hpwl,
            "placed {} vs random {random_hpwl}",
            p.hpwl_um
        );
    }

    #[test]
    fn legalization_separates_cells() {
        let (p, _) = placed(8);
        // No two cells at the same legalized position.
        let mut seen: Vec<(i64, i64)> = p
            .x
            .iter()
            .zip(&p.y)
            .map(|(&x, &y)| ((x * 1000.0) as i64, (y * 1000.0) as i64))
            .collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before, "duplicate legalized positions");
    }

    #[test]
    fn counters_show_fp_and_cache_traffic() {
        let (_, report) = placed(10);
        assert!(report.counters.avx_ops > 0, "placement emits AVX work");
        assert!(report.counters.cache_refs > 0);
        assert!(
            report.counters.avx_share() > 0.3,
            "placement is the most FP-heavy stage: {}",
            report.counters.avx_share()
        );
    }

    #[test]
    fn hpwl_of_degenerate_nets() {
        assert_eq!(Placement::hpwl_of(&[]), 0.0);
        assert_eq!(Placement::hpwl_of(&[(3.0, 4.0)]), 0.0);
        assert_eq!(Placement::hpwl_of(&[(0.0, 0.0), (2.0, 3.0)]), 5.0);
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new("empty", "synth14");
        let err = Placer::new().run(&nl, &ExecContext::default()).unwrap_err();
        assert_eq!(err, FlowError::EmptyDesign);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = Placer::new().with_iterations(0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (a, _) = placed(8);
        let (b, _) = placed(8);
        assert_eq!(a.x, b.x);
        assert_eq!(a.hpwl_um, b.hpwl_um);
    }
}
