//! Property test: the flow-result cache is exactly transparent.
//!
//! For an arbitrary (design family, recipe, vCPU count) pick, a stage
//! report replayed from the cache's recorded probe trace must be
//! identical to one computed by a fresh synthesis run on the same
//! machine — the invariant that lets the sweep engine compute each
//! (design, recipe) pair once and reuse it across the 1/2/4/8-vCPU
//! sweep without changing any output.

use eda_cloud_core::{design_fingerprint, FlowCache, FlowKey, Workflow};
use eda_cloud_flow::{Recipe, StageKind, Synthesizer};
use eda_cloud_netlist::generators;
use proptest::prelude::*;
use proptest::sample::select;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_and_fresh_synthesis_reports_are_identical(
        family in select(generators::FAMILY_NAMES.to_vec()),
        size in 4u32..9,
        recipe_index in 0usize..6,
        vcpus in select(vec![1u32, 2, 4, 8]),
        verify in select(vec![false, true]),
    ) {
        let aig = generators::build_family(family, size).expect("known family");
        let recipe: Recipe = Recipe::standard_suite()
            .into_iter()
            .nth(recipe_index)
            .expect("suite has six recipes");
        let workflow = Workflow::with_defaults();
        let synthesizer = Synthesizer::new().with_verification(verify);

        let cache = FlowCache::new();
        let key = FlowKey {
            design: design_fingerprint(&aig),
            recipe: recipe.name().to_owned(),
            verify,
        };
        // Prime the cache on a machine the sweep would visit first …
        let prime_ctx = workflow.exec_context(StageKind::Synthesis, 1);
        let _ = cache
            .synthesize(&synthesizer, &aig, &key, &recipe, &prime_ctx)
            .expect("priming run");
        // … then serve the arbitrary pick from the cache and compare
        // against a fresh run on that machine.
        let ctx = workflow.exec_context(StageKind::Synthesis, vcpus);
        let (cached_nl, cached) = cache
            .synthesize(&synthesizer, &aig, &key, &recipe, &ctx)
            .expect("cached run");
        let (fresh_nl, fresh) = synthesizer
            .run(&aig, &recipe, &ctx)
            .expect("fresh run");

        prop_assert_eq!(&cached, &fresh);
        prop_assert_eq!(cached.counters, fresh.counters);
        prop_assert_eq!(cached.runtime_secs, fresh.runtime_secs);
        prop_assert_eq!(cached_nl.cell_count(), fresh_nl.cell_count());
        prop_assert_eq!(cache.misses(), 1);
        prop_assert!(cache.hits() >= 1);
    }
}
