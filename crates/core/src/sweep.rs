//! The parallel sweep engine: a shared-queue job pool with canonical
//! (index-keyed) result reduction, plus a keyed flow-result cache.
//!
//! Characterization sweeps and dataset generation fan the same shape of
//! work out many times: run the four-stage flow for every point of a
//! `(design, recipe, vcpus)` grid. Two properties make that grid cheap
//! to parallelize *without* giving up the repository's determinism
//! guarantees:
//!
//! 1. **Canonical reduction.** Jobs are numbered up front and results
//!    land in index-keyed slots, so the reduced output is a function of
//!    the job list alone — never of thread scheduling. Parallel runs
//!    are bit-identical to serial runs (`workers = 1`), and when
//!    several jobs fail, the error reported is the one the serial loop
//!    would have hit first.
//! 2. **Synthesis is machine-independent.** The synthesis engine's
//!    probe event stream depends only on `(design, recipe, verify)`, so
//!    [`FlowCache`] records it once ([`Synthesizer::run_traced`]) and
//!    replays it per machine configuration — the 1/2/4/8-vCPU sweep
//!    performs the expensive structural work once instead of four
//!    times, with counters bit-identical to a fresh run at each vCPU
//!    count. Placement, routing, and STA genuinely depend on the
//!    machine (thread partitioning, coherence traffic), so they run per
//!    sweep point on the cached netlist.

use crossbeam::channel;
use eda_cloud_flow::{ExecContext, FlowError, Recipe, StageReport, SynthesisTrace, Synthesizer};
use eda_cloud_netlist::{Aig, AigNode, Netlist};
use eda_cloud_trace::Metrics;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Resolve a `workers` knob to a concrete worker count: `0` (the
/// configs' default) asks for one worker per available core, capped at
/// 8 — the widest useful fan-out for a 1/2/4/8-vCPU sweep grid row.
#[must_use]
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8)
}

/// Run `f` over every `(index, item)` pair on a pool of `workers`
/// scoped threads and return the results **in item order**.
///
/// Workers pull jobs from a shared queue (fast items steal the slack
/// left by slow ones) and push `(index, result)` pairs back; the
/// reducer writes each result into its index's slot, so the output
/// order — and therefore every downstream artifact — is independent of
/// completion order. With `workers <= 1` (or one item) the pool is
/// bypassed entirely and `f` runs on the caller's thread.
///
/// A panicking job propagates with its **original payload**: remaining
/// jobs may or may not run, and the worker's panic resurfaces from the
/// explicit joins below — the same observable outcome as a panic in a
/// serial loop (a send-side `expect` must never shadow it).
// Production sweeps all go through the metered variant; this plain
// wrapper stays as the pool's minimal contract (and its test surface).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn run_indexed<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    run_indexed_metered(workers, items, &Metrics::disabled(), f)
}

/// [`run_indexed`] plus pool observability: counts jobs, samples each
/// job's queue wait into a histogram, and reports aggregate worker
/// occupancy (busy time / pool wall time) as a gauge. All recording
/// goes through [`Metrics`], which is scheduling-dependent by contract
/// — nothing here touches the deterministic trace.
pub(crate) fn run_indexed_metered<I, T, F>(
    workers: usize,
    items: Vec<I>,
    metrics: &Metrics,
    f: F,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    metrics.add("sweep.jobs", n as u64);
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        metrics.set_gauge("sweep.worker_occupancy", 1.0);
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let pool_start = Instant::now();
    let (job_tx, job_rx) = channel::unbounded::<(usize, I, Instant)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, T)>();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let busy_secs = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                let f = &f;
                scope.spawn(move |_| {
                    let mut busy = 0.0f64;
                    while let Ok((index, item, enqueued)) = job_rx.recv() {
                        metrics.observe(
                            "sweep.queue_wait_secs",
                            enqueued.elapsed().as_secs_f64(),
                        );
                        let job_start = Instant::now();
                        let result = f(index, item);
                        busy += job_start.elapsed().as_secs_f64();
                        if result_tx.send((index, result)).is_err() {
                            break;
                        }
                    }
                    busy
                })
            })
            .collect();
        // Only the workers' clones keep the channels alive now; when
        // the queue drains, workers exit and the result stream ends.
        drop(job_rx);
        drop(result_tx);
        for (index, item) in items.into_iter().enumerate() {
            // A failed send means every worker is gone — one panicked
            // and the rest drained out behind it. Stop feeding and fall
            // through to the joins, which re-raise the worker's own
            // panic; an `expect` here would mask it with a send error.
            if job_tx.send((index, item, Instant::now())).is_err() {
                break;
            }
        }
        drop(job_tx);
        for (index, result) in result_rx.iter() {
            slots[index] = Some(result);
        }
        let mut busy_total = 0.0f64;
        for handle in handles {
            match handle.join() {
                Ok(busy) => busy_total += busy,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        busy_total
    })
    .expect("sweep worker scope");
    let wall = pool_start.elapsed().as_secs_f64();
    if wall > 0.0 {
        metrics.set_gauge(
            "sweep.worker_occupancy",
            (busy_secs / (wall * workers as f64)).clamp(0.0, 1.0),
        );
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job reduced exactly once"))
        .collect()
}

/// Reduce per-job `Result`s canonically: return all successes in order,
/// or the error the lowest-indexed failing job produced — exactly what
/// a serial loop with `?` would have returned.
pub(crate) fn reduce_results<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    results.into_iter().collect()
}

/// Key identifying one synthesis computation: the design's structural
/// fingerprint plus the recipe and verification toggle. Machine
/// configuration is deliberately absent — that is the point of the
/// cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// [`design_fingerprint`] of the input AIG.
    pub design: u64,
    /// Recipe name (recipes in a suite are name-unique).
    pub recipe: String,
    /// Whether synthesis runs its equivalence spot-check.
    pub verify: bool,
}

struct CachedSynthesis {
    netlist: Arc<Netlist>,
    trace: SynthesisTrace,
}

/// A keyed cache of synthesis results shared across the points of a
/// sweep.
///
/// The first lookup for a key runs [`Synthesizer::run_traced`] and
/// stores the mapped netlist plus the machine-independent probe trace;
/// later lookups — the remaining vCPU counts of the sweep, on any
/// worker thread — replay the trace against their machine
/// configuration, which is bit-identical to a fresh run there (see
/// [`Synthesizer::report_from_trace`]). The cache is exactly
/// transparent: no output of a sweep changes by routing synthesis
/// through it.
pub struct FlowCache {
    entries: Mutex<HashMap<FlowKey, Arc<CachedSynthesis>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FlowCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Synthesize `aig` under `recipe` for `ctx`, computing the
    /// structural work at most once per [`FlowKey`].
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures; errors are not cached (the next
    /// lookup retries, matching the serial loop's behavior of failing
    /// at its own sweep point).
    pub fn synthesize(
        &self,
        synthesizer: &Synthesizer,
        aig: &Aig,
        key: &FlowKey,
        recipe: &Recipe,
        ctx: &ExecContext,
    ) -> Result<(Arc<Netlist>, StageReport), FlowError> {
        // The cache is trace-transparent: hit/miss is scheduling-
        // dependent, so the engine-internal pass spans (which only a
        // miss would produce) are suppressed and one uniform stage span
        // is recorded from the report — identical on either path, since
        // replayed reports are bit-identical to fresh runs.
        let record_span = |report: &StageReport| {
            let span = ctx.span.child("synthesis");
            span.counter("instructions", report.counters.instructions);
        };
        if let Some(entry) = self.entries.lock().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let report = Synthesizer::report_from_trace(&entry.trace, ctx);
            record_span(&report);
            return Ok((entry.netlist.clone(), report));
        }

        // Miss: run outside the lock (synthesis is the expensive part).
        // Two workers racing on the same key both compute — identical,
        // deterministic results; first insert wins and both share it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (netlist, report, trace) = synthesizer.run_traced(aig, recipe, &ctx.without_span())?;
        let entry = Arc::new(CachedSynthesis { netlist: Arc::new(netlist), trace });
        let entry = self
            .entries
            .lock()
            .entry(key.clone())
            .or_insert(entry)
            .clone();
        record_span(&report);
        Ok((entry.netlist.clone(), report))
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the synthesizer.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl Default for FlowCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A structural fingerprint of an AIG (FNV-1a over name, nodes, and
/// outputs), used as the design component of a [`FlowKey`].
#[must_use]
pub fn design_fingerprint(aig: &Aig) -> u64 {
    fn mix(h: &mut u64, byte: u8) {
        *h ^= u64::from(byte);
        *h = h.wrapping_mul(0x1000_0000_01b3);
    }
    fn mix_u64(h: &mut u64, v: u64) {
        for byte in v.to_le_bytes() {
            mix(h, byte);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in aig.name().bytes() {
        mix(&mut h, byte);
    }
    mix(&mut h, 0xFF); // name/body separator
    for node in aig.nodes() {
        match node {
            AigNode::Const0 => mix_u64(&mut h, 0),
            AigNode::Pi(pos) => {
                mix_u64(&mut h, 1);
                mix_u64(&mut h, u64::from(*pos));
            }
            AigNode::And(a, b) => {
                mix_u64(&mut h, 2);
                mix_u64(&mut h, u64::from(a.raw()));
                mix_u64(&mut h, u64::from(b.raw()));
            }
        }
    }
    for (name, lit) in aig.outputs() {
        for byte in name.bytes() {
            mix(&mut h, byte);
        }
        mix_u64(&mut h, u64::from(lit.raw()));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::generators;

    #[test]
    fn run_indexed_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * v).collect();
        for workers in [1, 2, 4, 9] {
            let got = run_indexed(workers, items.clone(), |i, v| {
                assert_eq!(i as u64, v);
                // Stagger completion so out-of-order arrival is real.
                if v % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                v * v
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let none: Vec<u32> = run_indexed(4, Vec::new(), |_, v: u32| v);
        assert!(none.is_empty());
        assert_eq!(run_indexed(4, vec![7u32], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn panicking_job_resurfaces_original_payload() {
        // The pool must re-raise the worker's own panic, not a
        // send-side "job queue open" expect (the bug this guards).
        let result = std::panic::catch_unwind(|| {
            run_indexed(4, (0..64u32).collect(), |_, v| {
                if v == 5 {
                    panic!("job 5 exploded");
                }
                v
            })
        });
        let payload = result.expect_err("pool must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "job 5 exploded");
    }

    #[test]
    fn metered_pool_records_jobs_and_occupancy() {
        let metrics = Metrics::new();
        let got = run_indexed_metered(4, (0..32u64).collect(), &metrics, |_, v| v);
        assert_eq!(got.len(), 32);
        assert_eq!(metrics.counter("sweep.jobs"), 32);
        let occupancy = metrics.gauge("sweep.worker_occupancy");
        assert!(occupancy.is_some_and(|o| (0.0..=1.0).contains(&o)));
    }

    #[test]
    fn reduce_results_picks_first_error_canonically() {
        let all: Vec<Result<u32, &str>> = vec![Ok(1), Err("second"), Ok(3), Err("fourth")];
        assert_eq!(reduce_results(all), Err("second"));
        let ok: Vec<Result<u32, &str>> = vec![Ok(1), Ok(2)];
        assert_eq!(reduce_results(ok), Ok(vec![1, 2]));
    }

    #[test]
    fn fingerprint_separates_structures_and_names() {
        let a = generators::adder(6);
        let b = generators::adder(7);
        let c = generators::parity(6);
        assert_eq!(design_fingerprint(&a), design_fingerprint(&generators::adder(6)));
        assert_ne!(design_fingerprint(&a), design_fingerprint(&b));
        assert_ne!(design_fingerprint(&a), design_fingerprint(&c));
    }

    #[test]
    fn cache_replays_identical_reports() {
        let aig = generators::multiplier(6);
        let recipe = Recipe::balanced();
        let synthesizer = Synthesizer::new();
        let cache = FlowCache::new();
        let key = FlowKey {
            design: design_fingerprint(&aig),
            recipe: recipe.name().to_owned(),
            verify: true,
        };
        for vcpus in [1u32, 2, 4, 8] {
            let ctx = ExecContext::with_vcpus(vcpus);
            let (nl, cached) = cache
                .synthesize(&synthesizer, &aig, &key, &recipe, &ctx)
                .expect("cached synthesis");
            let (fresh_nl, fresh) = synthesizer.run(&aig, &recipe, &ctx).expect("fresh synthesis");
            assert_eq!(cached, fresh, "report mismatch at {vcpus} vCPUs");
            assert_eq!(nl.cell_count(), fresh_nl.cell_count());
        }
        assert_eq!(cache.misses(), 1, "one structural run for the whole sweep");
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn workers_resolve_to_positive_counts() {
        assert_eq!(resolve_workers(3), 3);
        let auto = resolve_workers(0);
        assert!((1..=8).contains(&auto));
    }
}
