//! Problem 3: deployment planning via MCKP.

use crate::{recommended_family, WorkflowError, Workflow};
use eda_cloud_flow::StageKind;
use eda_cloud_mckp::{savings_of, Choice, CostSavings, Problem, Solver, Stage};
use serde::{Deserialize, Serialize};

/// Per-stage runtimes at the four swept vCPU counts (1, 2, 4, 8) —
/// either measured by characterization or predicted by the GCN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageRuntimes {
    /// Which application.
    pub kind: StageKind,
    /// Runtimes in seconds at 1, 2, 4 and 8 vCPUs.
    pub runtimes_secs: [f64; 4],
}

/// The configuration selected for one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Which application.
    pub kind: StageKind,
    /// Catalog instance name (e.g. `"r5.xlarge"`).
    pub instance: String,
    /// vCPU count of the selection.
    pub vcpus: u32,
    /// Stage runtime on that instance, seconds.
    pub runtime_secs: u64,
    /// Stage cost on that instance, USD.
    pub cost_usd: f64,
}

/// The optimized deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Per-stage selections in flow order.
    pub stages: Vec<StagePlan>,
    /// Total runtime across stages, seconds.
    pub total_runtime_secs: u64,
    /// Total cost, USD.
    pub total_cost_usd: f64,
    /// Savings vs over-/under-provisioning baselines.
    pub savings: CostSavings,
}

/// The swept vCPU counts, index-aligned with [`StageRuntimes`].
pub const VCPU_SWEEP: [u32; 4] = [1, 2, 4, 8];

impl Workflow {
    /// Build the MCKP instance: one stage per application, one choice
    /// per vCPU size of its recommended family, costs from the catalog
    /// pricing (per-second billing), runtimes rounded up to whole
    /// seconds as the paper's formulation requires.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::Mckp`] if the instance is malformed and
    /// [`WorkflowError::Cloud`] if a catalog size is missing.
    pub fn deployment_problem(
        &self,
        runtimes: &[StageRuntimes],
    ) -> Result<Problem, WorkflowError> {
        let mut stages = Vec::with_capacity(runtimes.len());
        for sr in runtimes {
            let family = recommended_family(sr.kind);
            let mut choices = Vec::with_capacity(VCPU_SWEEP.len());
            for (k, &vcpus) in VCPU_SWEEP.iter().enumerate() {
                let instance = self
                    .catalog()
                    .cheapest_with(family, vcpus)
                    .ok_or_else(|| {
                        eda_cloud_cloud::CloudError::UnknownInstance(format!(
                            "{family} with {vcpus} vCPUs"
                        ))
                    })?;
                let runtime = sr.runtimes_secs[k].max(0.0).ceil() as u64;
                let cost = self.catalog().pricing().cost_usd(instance, sr.runtimes_secs[k]);
                choices.push(Choice::new(instance.name.clone(), runtime, cost));
            }
            stages.push(Stage::new(sr.kind.to_string(), choices));
        }
        Ok(Problem::new(stages)?)
    }

    /// Solve the deployment under a total-runtime constraint.
    ///
    /// Returns `Ok(None)` when no selection meets the deadline — the
    /// paper's "NA" rows in Table I.
    ///
    /// # Errors
    ///
    /// Propagates problem-construction failures.
    pub fn plan_deployment(
        &self,
        runtimes: &[StageRuntimes],
        constraint_secs: u64,
    ) -> Result<Option<DeploymentPlan>, WorkflowError> {
        let problem = self.deployment_problem(runtimes)?;
        let Some(selection) = Solver::new().solve_min_cost(&problem, constraint_secs) else {
            return Ok(None);
        };
        let savings = savings_of(&problem, &selection);
        let stages = selection
            .picks
            .iter()
            .zip(runtimes)
            .zip(problem.stages())
            .map(|((&j, sr), stage)| {
                let choice = &stage.choices[j];
                StagePlan {
                    kind: sr.kind,
                    instance: choice.label.clone(),
                    vcpus: VCPU_SWEEP[j],
                    runtime_secs: choice.runtime_secs,
                    cost_usd: choice.cost_usd,
                }
            })
            .collect();
        Ok(Some(DeploymentPlan {
            stages,
            total_runtime_secs: selection.total_runtime_secs,
            total_cost_usd: selection.total_cost_usd,
            savings,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table-I-shaped runtimes (seconds) for the four stages.
    fn paper_runtimes() -> Vec<StageRuntimes> {
        vec![
            StageRuntimes {
                kind: StageKind::Synthesis,
                runtimes_secs: [6100.0, 4342.0, 3449.0, 3352.0],
            },
            StageRuntimes {
                kind: StageKind::Placement,
                runtimes_secs: [1206.0, 905.0, 644.0, 519.0],
            },
            StageRuntimes {
                kind: StageKind::Routing,
                runtimes_secs: [10461.0, 5514.0, 2894.0, 1692.0],
            },
            StageRuntimes {
                kind: StageKind::Sta,
                runtimes_secs: [183.0, 119.0, 90.0, 82.0],
            },
        ]
    }

    #[test]
    fn problem_shape_matches_sweep() {
        let wf = Workflow::with_defaults();
        let p = wf.deployment_problem(&paper_runtimes()).expect("builds");
        assert_eq!(p.stages().len(), 4);
        for s in p.stages() {
            assert_eq!(s.choices.len(), 4);
        }
        // Placement uses the memory-optimized family.
        assert!(p.stages()[1].choices[0].label.starts_with("r5"));
        // Synthesis uses general purpose.
        assert!(p.stages()[0].choices[0].label.starts_with("m5"));
    }

    #[test]
    fn tightening_deadline_upgrades_machines() {
        let wf = Workflow::with_defaults();
        let runtimes = paper_runtimes();
        let loose = wf
            .plan_deployment(&runtimes, 100_000)
            .expect("solves")
            .expect("feasible");
        let tight = wf
            .plan_deployment(&runtimes, 5_645)
            .expect("solves")
            .expect("feasible");
        assert!(tight.total_cost_usd >= loose.total_cost_usd);
        assert_eq!(tight.total_runtime_secs, 5_645);
        // At the edge every stage runs on 8 vCPUs.
        assert!(tight.stages.iter().all(|s| s.vcpus == 8));
    }

    #[test]
    fn impossible_deadline_is_na() {
        let wf = Workflow::with_defaults();
        let plan = wf
            .plan_deployment(&paper_runtimes(), 5_000)
            .expect("solves");
        assert!(plan.is_none(), "paper Table I marks 5000s as NA");
    }

    #[test]
    fn plan_reports_positive_savings_at_moderate_deadline() {
        let wf = Workflow::with_defaults();
        let plan = wf
            .plan_deployment(&paper_runtimes(), 10_000)
            .expect("solves")
            .expect("feasible");
        assert!(plan.savings.saving_vs_over > 0.0);
        assert!(plan.total_runtime_secs <= 10_000);
        assert_eq!(plan.stages.len(), 4);
    }
}
