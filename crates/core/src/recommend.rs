//! Instance-family recommendations (the paper's "Main Takeaways").

use eda_cloud_cloud::InstanceFamily;
use eda_cloud_flow::StageKind;

/// The instance family the paper recommends for each application:
///
/// * Synthesis and STA "perform well on general-purpose VM instances
///   with a balance between computations and memory access".
/// * Placement and routing "require VM instances with higher
///   memory-to-core ratio, with routing demanding more available L1 and
///   LLC cache".
#[must_use]
pub fn recommended_family(stage: StageKind) -> InstanceFamily {
    match stage {
        StageKind::Synthesis | StageKind::Sta => InstanceFamily::GeneralPurpose,
        StageKind::Placement | StageKind::Routing => InstanceFamily::MemoryOptimized,
    }
}

/// Free-text notes accompanying the recommendation (AVX guidance and
/// scaling caveats from the paper).
#[must_use]
pub fn recommendation_notes(stage: StageKind) -> &'static str {
    match stage {
        StageKind::Synthesis => "balanced compute/memory; limited multi-core scaling",
        StageKind::Placement => {
            "needs high memory-to-core ratio and an AVX-capable processor \
             (analytical engine is vector-FP heavy)"
        }
        StageKind::Routing => {
            "needs large L1/LLC cache; scales well with vCPUs on large designs, \
             plateaus on small ones"
        }
        StageKind::Sta => "general-purpose instances; benefits from AVX hardware",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_match_paper_table1_headers() {
        // Table I runs synthesis and STA on general-purpose VMs and
        // placement and routing on memory-optimized VMs.
        assert_eq!(
            recommended_family(StageKind::Synthesis),
            InstanceFamily::GeneralPurpose
        );
        assert_eq!(
            recommended_family(StageKind::Placement),
            InstanceFamily::MemoryOptimized
        );
        assert_eq!(
            recommended_family(StageKind::Routing),
            InstanceFamily::MemoryOptimized
        );
        assert_eq!(
            recommended_family(StageKind::Sta),
            InstanceFamily::GeneralPurpose
        );
    }

    #[test]
    fn notes_mention_avx_for_placement() {
        assert!(recommendation_notes(StageKind::Placement).contains("AVX"));
        assert!(recommendation_notes(StageKind::Routing).contains("cache"));
    }
}
