//! The workflow façade.

use crate::recommended_family;
use eda_cloud_cloud::Catalog;
use eda_cloud_flow::{ExecContext, StageKind};
use eda_cloud_perf::MachineModel;
use eda_cloud_trace::{Metrics, Tracer};

/// Base calibration constant bridging this reproduction's lightweight
/// engines to commercial-flow runtimes (see `DESIGN.md`).
pub(crate) const DEFAULT_WORK_SCALE: f64 = 1.0;

/// Per-stage calibration on top of [`DEFAULT_WORK_SCALE`]: each engine
/// under-models a different share of its commercial counterpart's work
/// (a production synthesis tool runs orders of magnitude more
/// optimization than our three passes; our router is closer to the real
/// thing). Chosen so the `sparc_core` composite lands at the paper's
/// Table-I runtime magnitudes at 1 vCPU (synthesis 6100 s, placement
/// 1206 s, routing 10461 s, STA 183 s). A per-stage constant cannot
/// change any speedup, ordering, or knapsack-selection *shape* — only
/// absolute seconds.
#[must_use]
pub fn stage_work_scale(stage: StageKind) -> f64 {
    match stage {
        StageKind::Synthesis => 7_300_000.0,
        StageKind::Placement => 1_330.0,
        StageKind::Routing => 2_420.0,
        StageKind::Sta => 20_000.0,
    }
}

/// The top-level entry point tying catalog, cost model, and flow
/// engines together.
///
/// # Examples
///
/// ```
/// use eda_cloud_core::Workflow;
///
/// let workflow = Workflow::with_defaults();
/// assert!(workflow.catalog().instances().len() >= 12);
/// ```
#[derive(Debug, Clone)]
pub struct Workflow {
    catalog: Catalog,
    model: MachineModel,
    tracer: Tracer,
    metrics: Metrics,
}

impl Workflow {
    /// Workflow over the AWS-like catalog and the calibrated cost model.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self {
            catalog: Catalog::aws_like(),
            model: MachineModel::with_work_scale(DEFAULT_WORK_SCALE),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Replace the instance catalog.
    #[must_use]
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Replace the machine cost model.
    #[must_use]
    pub fn with_model(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// The instance catalog in use.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The machine cost model in use.
    #[must_use]
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Attach a tracer; characterization and fleet runs record spans
    /// into it. Pass [`Tracer::new`] to enable, then
    /// [`Tracer::drain`] after the run to export.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a metrics registry; the sweep pool records queue-wait
    /// and occupancy into it.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The tracer in use (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry in use (disabled by default).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Execution context for running `stage` at `vcpus` on the stage's
    /// recommended instance family.
    #[must_use]
    pub fn exec_context(&self, stage: StageKind, vcpus: u32) -> ExecContext {
        let family = recommended_family(stage);
        let machine = self
            .catalog
            .cheapest_with(family, vcpus)
            .map(|i| {
                let mut cfg = i.machine_config();
                // The sweep emulates a VM of exactly `vcpus`, even when
                // the purchasable size is larger.
                cfg.vcpus = vcpus;
                cfg.mem_bw_gbps = cfg.mem_bw_gbps / f64::from(i.vcpus) * f64::from(vcpus);
                cfg
            })
            .unwrap_or_else(|| eda_cloud_perf::MachineConfig::vcpus(vcpus));
        let model = eda_cloud_perf::MachineModel {
            work_scale: self.model.work_scale * stage_work_scale(stage),
            ..self.model
        };
        ExecContext::new(machine).with_model(model)
    }
}

impl Default for Workflow {
    fn default() -> Self {
        Self::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_follow_recommendations() {
        let wf = Workflow::with_defaults();
        let syn = wf.exec_context(StageKind::Synthesis, 4);
        let place = wf.exec_context(StageKind::Placement, 4);
        assert_eq!(syn.machine.vcpus, 4);
        assert_eq!(place.machine.vcpus, 4);
        // Memory-optimized has more bandwidth per vCPU.
        assert!(place.machine.mem_bw_gbps > syn.machine.mem_bw_gbps);
    }

    #[test]
    fn work_scale_applied_per_stage() {
        let wf = Workflow::with_defaults();
        let ctx = wf.exec_context(StageKind::Routing, 1);
        assert_eq!(
            ctx.model.work_scale,
            wf.model().work_scale * stage_work_scale(StageKind::Routing)
        );
        // Synthesis is scaled harder than routing (its engine models a
        // smaller share of the commercial tool's work).
        assert!(
            stage_work_scale(StageKind::Synthesis) > stage_work_scale(StageKind::Routing)
        );
    }
}
