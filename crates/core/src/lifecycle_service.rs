//! Model lifecycle under traffic: drift detection, shadow retraining,
//! and canary rollout for the serving tier's frozen snapshot.
//!
//! This wires `eda-cloud-lifecycle` into the workflow: a
//! [`LifecycleScenario`] describes the request stream and the
//! ground-truth drift to inject, and [`Workflow::lifecycle`] runs the
//! full detect → retrain → canary → promote/rollback arc in simulated
//! time, folding the controller's counters into the workflow's metrics
//! under `lifecycle.*` and tracing every control decision through the
//! workflow's tracer.

use crate::{Workflow, WorkflowError};
use eda_cloud_lifecycle::{FeedbackEvent, LifecycleConfig, LifecycleController, LifecycleReport};
use serde::{Deserialize, Serialize};

/// A model-lifecycle workload description: the request stream to serve
/// and the runtime drift to inject into its ground truth. Everything
/// else (detector thresholds, retrain hyper-parameters, rollout
/// guardrails) stays at the [`LifecycleConfig`] defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleScenario {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second (Poisson process).
    pub rate_per_sec: f64,
    /// Seed driving arrivals, design choice, bootstrap, and retrains.
    pub seed: u64,
    /// Stage-model fan-out threads (0 = available parallelism, capped
    /// at 4). Any value produces the identical report.
    pub workers: usize,
    /// Request ordinal at which ground-truth runtimes shift; at or past
    /// `requests` disables drift.
    pub drift_at: u64,
    /// Multiplicative runtime shift applied from `drift_at` onward.
    pub drift_factor: f64,
    /// Route every n-th request ordinal to the canary candidate.
    pub canary_every: u64,
}

impl LifecycleScenario {
    /// A `requests`-request scenario with drift injected a third of the
    /// way into the stream, at the default rate, drift factor, and
    /// canary slice.
    #[must_use]
    pub fn new(requests: usize, seed: u64) -> Self {
        let d = LifecycleConfig::default();
        Self {
            requests,
            rate_per_sec: d.rate_per_sec,
            seed,
            workers: 0,
            drift_at: (requests as u64) / 3,
            drift_factor: d.drift_factor,
            canary_every: d.canary_every,
        }
    }

    /// The full controller configuration this scenario expands to.
    #[must_use]
    pub fn config(&self) -> LifecycleConfig {
        LifecycleConfig {
            requests: self.requests,
            rate_per_sec: self.rate_per_sec,
            seed: self.seed,
            workers: self.workers,
            drift_at: self.drift_at,
            drift_factor: self.drift_factor,
            canary_every: self.canary_every,
            ..LifecycleConfig::default()
        }
    }
}

impl Workflow {
    /// Run the model-lifecycle controller over the scenario's request
    /// stream: serve from the registry-managed snapshot, join
    /// ground-truth feedback, detect the injected drift, shadow-retrain
    /// a candidate, canary it, and promote or roll back under the
    /// default guardrails.
    ///
    /// Same scenario, same report — byte-identical
    /// [`LifecycleReport::to_json`] output across runs and worker
    /// counts. Lifecycle counters are folded into the workflow's
    /// metrics under `lifecycle.*`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::Lifecycle`] for out-of-range scenario
    /// knobs or a registry operation rejected mid-run.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use eda_cloud_core::{LifecycleScenario, Workflow};
    ///
    /// let workflow = Workflow::with_defaults();
    /// let (report, _) = workflow.lifecycle(&LifecycleScenario::new(320, 7))?;
    /// assert!(report.counters.drift_detections > 0);
    /// assert!(report.counters.promotions > 0);
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn lifecycle(
        &self,
        scenario: &LifecycleScenario,
    ) -> Result<(LifecycleReport, Vec<FeedbackEvent>), WorkflowError> {
        let controller =
            LifecycleController::new(scenario.config())?.with_tracer(self.tracer().clone());
        let (report, feedback) = controller.run()?;
        let m = self.metrics();
        m.add("lifecycle.requests", report.counters.requests);
        m.add("lifecycle.feedback_joins", report.counters.feedback_joins);
        m.add("lifecycle.drift_detections", report.counters.drift_detections);
        m.add("lifecycle.retrains", report.counters.retrains);
        m.add("lifecycle.canaries_started", report.counters.canaries_started);
        m.add("lifecycle.promotions", report.counters.promotions);
        m.add("lifecycle.rollbacks", report.counters.rollbacks);
        m.set_gauge("lifecycle.final_primary_version", f64::from(report.final_primary_version));
        Ok((report, feedback))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scenario() -> LifecycleScenario {
        LifecycleScenario { requests: 48, drift_at: 200, ..LifecycleScenario::new(48, 7) }
    }

    #[test]
    fn scenario_expands_to_validated_config() {
        let scenario = LifecycleScenario::new(320, 7);
        assert_eq!(scenario.drift_at, 106);
        let config = scenario.config();
        assert_eq!(config.requests, 320);
        assert_eq!(config.seed, 7);
        config.validate().expect("scenario defaults are in range");
    }

    #[test]
    fn invalid_scenario_surfaces_lifecycle_error() {
        let wf = Workflow::with_defaults();
        let bad = LifecycleScenario { drift_factor: -1.0, ..LifecycleScenario::new(16, 7) };
        match wf.lifecycle(&bad) {
            Err(WorkflowError::Lifecycle(e)) => {
                assert!(e.to_string().contains("drift_factor"));
            }
            other => panic!("expected a lifecycle error, got {other:?}"),
        }
    }

    #[test]
    fn counters_fold_into_workflow_metrics() {
        // Drift disabled keeps the run cheap: no retrain, no canary —
        // the metrics plumbing is what's under test.
        let wf = Workflow::with_defaults().with_metrics(eda_cloud_trace::Metrics::new());
        let (report, feedback) = wf.lifecycle(&quick_scenario()).expect("runs");
        assert_eq!(report.counters.requests, 48);
        assert_eq!(feedback.len(), 48);
        assert_eq!(wf.metrics().counter("lifecycle.requests"), 48);
        assert_eq!(wf.metrics().counter("lifecycle.feedback_joins"), 48);
        assert_eq!(wf.metrics().counter("lifecycle.drift_detections"), 0);
        assert_eq!(wf.metrics().gauge("lifecycle.final_primary_version"), Some(1.0));
    }

    #[test]
    fn scenario_overrides_reach_the_config() {
        let scenario = LifecycleScenario {
            workers: 2,
            drift_factor: 1.7,
            canary_every: 9,
            ..LifecycleScenario::new(64, 11)
        };
        let config = scenario.config();
        assert_eq!(config.workers, 2);
        assert!((config.drift_factor - 1.7).abs() < 1e-12);
        assert_eq!(config.canary_every, 9);
        assert_eq!(config.drift_at, 21, "a third of the stream");
    }
}
