//! Fault-injection runs as a workflow step.
//!
//! A [`SimtestScenario`] names a seed, a fault budget, and a worker
//! count; [`Workflow::simtest`] generates the corresponding
//! [`FaultPlan`], drives the fleet/serve/lifecycle loops under it via
//! `eda-cloud-simtest`, and folds the outcome into the workflow's
//! metrics under `simtest.*`. The returned [`SimtestReport`] renders to
//! canonical JSON for golden pinning and cross-worker byte diffs.

use crate::{Workflow, WorkflowError};
use eda_cloud_simtest::{run_simtest_traced, FaultPlan, SimtestConfig, SimtestReport};
use serde::{Deserialize, Serialize};

/// A fault-injection workload description. The harness's workload
/// sizes stay at the [`SimtestConfig`] defaults; the scenario only
/// chooses the seed, how many faults to draw from it, and the fan-out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimtestScenario {
    /// Seed driving the three workloads and the fault draw.
    pub seed: u64,
    /// Number of fault events to generate from the seed.
    pub faults: usize,
    /// Stage fan-out threads (0 = available parallelism, capped at 4).
    /// Any value produces byte-identical reports.
    pub workers: usize,
}

impl SimtestScenario {
    /// A scenario at `seed` drawing `faults` events, sequential stages.
    #[must_use]
    pub fn new(seed: u64, faults: usize) -> Self {
        Self { seed, faults, workers: 1 }
    }

    /// The harness configuration this scenario expands to.
    #[must_use]
    pub fn config(&self) -> SimtestConfig {
        SimtestConfig { seed: self.seed, workers: self.workers, ..SimtestConfig::default() }
    }

    /// The fault plan this scenario generates.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::generate(self.seed, self.faults, &self.config())
    }
}

impl Workflow {
    /// Run the fault-injection harness: generate the scenario's fault
    /// plan, drive the fleet, serve, and lifecycle loops under it, and
    /// run the full invariant-checker suite over the results.
    ///
    /// Invariant violations are data, not errors — they come back in
    /// [`SimtestReport::violations`] (and as the `simtest.violations`
    /// counter) so callers can shrink the plan to a reproducer.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::Simtest`] for invalid scenarios or when
    /// a driven loop rejects its workload outright.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use eda_cloud_core::{SimtestScenario, Workflow};
    ///
    /// let workflow = Workflow::with_defaults();
    /// let report = workflow.simtest(&SimtestScenario::new(7, 4))?;
    /// assert!(report.passed());
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn simtest(&self, scenario: &SimtestScenario) -> Result<SimtestReport, WorkflowError> {
        let config = scenario.config();
        // The harness runs each phase on a private tracer (it drains
        // them to count fault spans); the drained phase traces are
        // adopted into the workflow tracer so `--trace` exports the
        // full fleet/serve/lifecycle span tree.
        let run = run_simtest_traced(&config, &scenario.plan(), self.tracer())?;
        let report = run.report;
        let m = self.metrics();
        m.add("simtest.fault_events", report.plan.events.len() as u64);
        m.add("simtest.fault_spans", report.fault_spans);
        m.add("simtest.corruption_injected", report.corruption_injected);
        m.add("simtest.corruption_rejected", report.corruption_rejected);
        m.add("simtest.violations", report.violations.len() as u64);
        m.add("simtest.fleet_jobs_completed", report.fleet.jobs_completed);
        m.add("simtest.fleet_jobs_exhausted", report.fleet.jobs_exhausted);
        m.add("simtest.serve_shed", report.serve.shed);
        m.add("simtest.feedback_dropped", report.lifecycle.feedback_dropped);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_expands_to_config_and_plan_deterministically() {
        let scenario = SimtestScenario::new(11, 5);
        let config = scenario.config();
        assert_eq!(config.seed, 11);
        assert_eq!(config.workers, 1);
        config.validate().expect("defaults are valid");
        let plan = scenario.plan();
        assert_eq!(plan.events.len(), 5);
        assert_eq!(plan, scenario.plan(), "same scenario, same plan");
        plan.validate().expect("generated plans are well-formed");
    }

    #[test]
    fn worker_override_reaches_the_config() {
        let scenario = SimtestScenario { workers: 4, ..SimtestScenario::new(7, 2) };
        assert_eq!(scenario.config().workers, 4);
        assert_eq!(
            scenario.plan(),
            SimtestScenario::new(7, 2).plan(),
            "the fault draw ignores the fan-out knob"
        );
    }
}
