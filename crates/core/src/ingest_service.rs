//! External design ingestion: run user-supplied netlists through the
//! front door and serve a mixed predict/plan/ingest stream.
//!
//! This wires `eda-cloud-ingest` into the workflow: an
//! [`IngestScenario`] describes an open-loop request stream with an
//! upload mix-in rate, [`Workflow::ingest`] first pushes the checked-in
//! fixture corpus through [`FrontDoor::ingest_doc`] (so every format —
//! BLIF, structural Verilog, Bookshelf — is exercised end to end and
//! its [`IngestReport`] lands in the run report), then plays the
//! scenario's stream through a [`Server`] with the front door mounted
//! as its [`eda_cloud_serve::Ingestor`]. Uploads that parse, validate,
//! and clear quotas are canonicalized, fingerprinted, OOD-scored, and
//! served; rejected uploads are quarantined with a typed reason.

use crate::{Workflow, WorkflowError, WorkflowPlanner};
use eda_cloud_ingest::{fixtures, FrontDoor, FrontDoorConfig, IngestReport};
use eda_cloud_serve::{
    design_pool, synthetic_requests_with_uploads, ModelSnapshot, RequestOutcome, ServeConfig,
    ServeReport, ServeRequest, Server, WorkloadConfig,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// An ingestion workload description: everything needed to regenerate
/// the same upload-bearing request stream and report from a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestScenario {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second (Poisson process).
    pub rate_per_sec: f64,
    /// Seed driving arrivals, design choice, deadlines, kinds, and
    /// upload draws.
    pub seed: u64,
    /// Stage-model fan-out threads (0 = available parallelism, capped
    /// at 4). Any value produces the identical report.
    pub workers: usize,
    /// Every `ingest_every`-th non-plan draw (in expectation) becomes
    /// an upload of one of the fixture documents. 0 disables uploads.
    pub ingest_every: u64,
}

impl IngestScenario {
    /// A `requests`-request scenario at the default 200 req/s with an
    /// expected 1-in-3 upload mix and automatic stage fan-out.
    #[must_use]
    pub fn new(requests: usize, seed: u64) -> Self {
        Self { requests, rate_per_sec: 200.0, seed, workers: 0, ingest_every: 3 }
    }

    /// The serve-crate workload parameters this scenario expands to.
    #[must_use]
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            requests: self.requests,
            rate_per_sec: self.rate_per_sec,
            seed: self.seed,
            ingest_every: self.ingest_every,
            ..WorkloadConfig::default()
        }
    }
}

/// The byte-stable result of one ingestion run: the per-fixture front
/// door reports followed by the serve-tier report for the mixed
/// stream. Identical scenarios produce identical
/// [`IngestRunReport::to_json`] bytes at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRunReport {
    /// The scenario seed.
    pub seed: u64,
    /// One report per checked-in fixture, in fixture order.
    pub fixtures: Vec<IngestReport>,
    /// The serving report for the upload-bearing stream.
    pub serve: ServeReport,
}

impl IngestRunReport {
    /// Render as a single JSON object with a fixed key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"seed\":{},\"fixtures\":[", self.seed);
        for (i, report) in self.fixtures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&report.to_json());
        }
        let _ = write!(s, "],\"serve\":{}}}", self.serve.to_json());
        s
    }
}

impl Workflow {
    /// Materialize the scenario's request stream over the synthetic
    /// design pool and the fixture upload corpus: seeded Poisson
    /// arrivals with an expected 1-in-`ingest_every` upload mix.
    /// Deterministic per scenario.
    #[must_use]
    pub fn ingest_workload(&self, scenario: &IngestScenario) -> Vec<ServeRequest> {
        synthetic_requests_with_uploads(
            &design_pool(),
            &fixtures::uploads(),
            &scenario.workload_config(),
        )
    }

    /// Ingest the fixture corpus and serve the scenario's mixed stream
    /// against `snapshot` with the front door mounted as the server's
    /// ingestor: the end-to-end upload → validate → canonicalize →
    /// OOD-score → serve pipeline.
    ///
    /// Same scenario and snapshot, same report — byte-identical
    /// [`IngestRunReport::to_json`] output across runs and worker
    /// counts. Ingestion counters are folded into the workflow's
    /// metrics under `ingest.*`.
    ///
    /// # Errors
    ///
    /// Surfaces a fixture the front door rejects as
    /// [`WorkflowError::Ingest`] (the fixtures are checked in, so this
    /// indicates corruption) and planner failures as
    /// [`WorkflowError::Serve`]. Stream uploads that fail to parse are
    /// quarantined outcomes in the report, not errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_cloud_core::{IngestScenario, Workflow};
    /// use eda_cloud_gcn::ModelConfig;
    /// use eda_cloud_serve::ModelSnapshot;
    ///
    /// let workflow = Workflow::with_defaults();
    /// let snapshot = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
    /// let (report, outcomes) = workflow.ingest(&IngestScenario::new(8, 7), &snapshot)?;
    /// assert_eq!(outcomes.len(), 8);
    /// assert_eq!(report.fixtures.len(), 5);
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn ingest(
        &self,
        scenario: &IngestScenario,
        snapshot: &ModelSnapshot,
    ) -> Result<(IngestRunReport, Vec<RequestOutcome>), WorkflowError> {
        let front_door = FrontDoor::with_pool_profile(FrontDoorConfig::default());
        let uploads = fixtures::uploads();
        let mut fixture_reports = Vec::with_capacity(uploads.len());
        for doc in &uploads {
            let (report, _design) = front_door.ingest_doc(doc)?;
            fixture_reports.push(report);
        }
        let requests = synthetic_requests_with_uploads(
            &design_pool(),
            &uploads,
            &scenario.workload_config(),
        );
        let config = ServeConfig { workers: scenario.workers, ..ServeConfig::default() };
        let server =
            Server::new(snapshot.clone(), Box::new(WorkflowPlanner::new(self.clone())), config)
                .with_ingestor(Box::new(front_door))
                .with_tracer(self.tracer().clone());
        let (serve, outcomes) = server.run(scenario.seed, &requests)?;
        let m = self.metrics();
        m.add("ingest.fixtures", fixture_reports.len() as u64);
        m.add("ingest.accepted", serve.counters.ingest_accepted);
        m.add("ingest.rejected", serve.counters.ingest_rejected);
        m.add("ingest.ood_flagged", serve.counters.ood_flagged);
        let report = IngestRunReport { seed: scenario.seed, fixtures: fixture_reports, serve };
        Ok((report, outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_gcn::ModelConfig;
    use eda_cloud_serve::RequestKind;

    fn seeded_snapshot(seed: u64) -> ModelSnapshot {
        ModelSnapshot::seeded(&ModelConfig::fast(), seed)
    }

    #[test]
    fn ingest_is_deterministic_and_worker_invariant() {
        let wf = Workflow::with_defaults();
        let snapshot = seeded_snapshot(7);
        let mut scenario = IngestScenario::new(24, 7);
        scenario.workers = 1;
        let (base, base_outcomes) = wf.ingest(&scenario, &snapshot).expect("ingests");
        assert_eq!(base.serve.counters.requests, 24);
        assert_eq!(base.fixtures.len(), 5);
        for workers in [2usize, 8] {
            scenario.workers = workers;
            let (report, outcomes) = wf.ingest(&scenario, &snapshot).expect("ingests");
            assert_eq!(report.to_json(), base.to_json(), "workers {workers}");
            assert_eq!(outcomes, base_outcomes, "workers {workers}");
        }
    }

    #[test]
    fn uploads_flow_through_the_server() {
        let wf = Workflow::with_defaults();
        let mut scenario = IngestScenario::new(48, 11);
        scenario.ingest_every = 2;
        let requests = wf.ingest_workload(&scenario);
        assert_eq!(requests.len(), 48);
        let ingests = requests.iter().filter(|r| r.kind == RequestKind::Ingest).count();
        assert!(ingests > 0, "a 1-in-2 mix over 48 requests draws uploads");
        let (report, outcomes) = wf.ingest(&scenario, &seeded_snapshot(11)).expect("ingests");
        let c = &report.serve.counters;
        assert_eq!(
            c.ingest_accepted + c.ingest_rejected,
            ingests as u64,
            "every upload is resolved one way or the other"
        );
        assert!(c.ingest_accepted > 0, "fixture uploads are well-formed");
        assert_eq!(c.ingest_rejected, 0, "fixtures never quarantine");
        assert_eq!(outcomes.len(), 48);
    }

    #[test]
    fn run_report_json_is_stable_and_well_shaped() {
        let wf = Workflow::with_defaults();
        let scenario = IngestScenario::new(12, 3);
        let snapshot = seeded_snapshot(3);
        let (report, _) = wf.ingest(&scenario, &snapshot).expect("ingests");
        let json = report.to_json();
        assert!(json.starts_with("{\"seed\":3,\"fixtures\":[{\"name\":\"c17\""), "{json}");
        assert!(json.contains("\"serve\":{\"seed\":3,"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        let (again, _) = wf.ingest(&scenario, &snapshot).expect("ingests");
        assert_eq!(again.to_json(), json, "byte-stable across runs");
    }

    #[test]
    fn fixture_reports_cover_every_format() {
        let wf = Workflow::with_defaults();
        let (report, _) =
            wf.ingest(&IngestScenario::new(4, 9), &seeded_snapshot(9)).expect("ingests");
        let formats: Vec<&str> = report.fixtures.iter().map(|r| r.format.as_str()).collect();
        assert!(formats.contains(&"blif"));
        assert!(formats.contains(&"verilog"));
        assert!(formats.contains(&"bookshelf"));
        for r in &report.fixtures {
            assert!(r.nodes > 0, "{}", r.name);
            assert!(r.fingerprint != 0, "{}", r.name);
        }
    }

    #[test]
    fn ingest_counters_fold_into_workflow_metrics() {
        let wf = Workflow::with_defaults().with_metrics(eda_cloud_trace::Metrics::new());
        let mut scenario = IngestScenario::new(20, 5);
        scenario.ingest_every = 2;
        let (report, _) = wf.ingest(&scenario, &seeded_snapshot(5)).expect("ingests");
        assert_eq!(wf.metrics().counter("ingest.fixtures"), 5);
        assert_eq!(
            wf.metrics().counter("ingest.accepted"),
            report.serve.counters.ingest_accepted
        );
        assert_eq!(
            wf.metrics().counter("ingest.ood_flagged"),
            report.serve.counters.ood_flagged
        );
    }

    #[test]
    fn scenario_expands_to_the_serve_workload_config() {
        let scenario = IngestScenario::new(16, 21);
        let config = scenario.workload_config();
        assert_eq!(config.requests, 16);
        assert_eq!(config.seed, 21);
        assert_eq!(config.ingest_every, 3, "default mix is 1-in-3");
        assert_eq!(config.plan_every, WorkloadConfig::default().plan_every);
        let quiet = IngestScenario { ingest_every: 0, ..scenario };
        assert_eq!(quiet.workload_config().ingest_every, 0);
    }
}
