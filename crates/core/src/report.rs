//! Plain-text table rendering for the reproduction binaries.

/// Render an ASCII table with a header row.
///
/// # Examples
///
/// ```
/// use eda_cloud_core::report::render_table;
///
/// let text = render_table(
///     &["stage", "runtime"],
///     &[vec!["routing".into(), "1692 s".into()]],
/// );
/// assert!(text.contains("routing"));
/// assert!(text.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let sep = |fill: char| {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&fill.to_string().repeat(w + 2));
            s.push('+');
        }
        s
    };
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (c, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(c).unwrap_or(&empty);
            s.push_str(&format!(" {cell:<w$} |"));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep('-'));
    out.push('\n');
    out.push_str(&fmt_row(
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep('='));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&sep('-'));
    out.push('\n');
    out
}

/// Format a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", 100.0 * fraction)
}

/// Format seconds compactly.
#[must_use]
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} s")
    } else {
        format!("{v:.1} s")
    }
}

/// Render a horizontal ASCII bar chart (one row per label).
#[must_use]
pub fn bar_chart(title: &str, entries: &[(String, f64)], width: usize) -> String {
    let max = entries.iter().map(|e| e.1).fold(0.0f64, f64::max).max(1e-12);
    let label_w = entries.iter().map(|e| e.0.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in entries {
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} | {} {value:.2}\n",
            "#".repeat(n)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["xxxx".into(), "y".into()],
                vec!["z".into(), "wwwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("xxxx"));
    }

    #[test]
    fn pct_and_secs_format() {
        assert_eq!(pct(0.3529), "35.3%");
        assert_eq!(secs(1692.4), "1692 s");
        assert_eq!(secs(12.34), "12.3 s");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(
            "speedup",
            &[("routing".into(), 6.2), ("sta".into(), 2.2)],
            20,
        );
        assert!(chart.contains("routing"));
        let routing_hashes = chart
            .lines()
            .find(|l| l.contains("routing"))
            .unwrap()
            .matches('#')
            .count();
        assert_eq!(routing_hashes, 20);
    }

    #[test]
    fn empty_rows_ok() {
        let t = render_table(&["only"], &[]);
        assert!(t.contains("only"));
    }
}

/// Format a USD amount.
#[must_use]
pub fn usd(v: f64) -> String {
    if v >= 1.0 {
        format!("${v:.2}")
    } else {
        format!("${v:.4}")
    }
}

#[cfg(test)]
mod usd_tests {
    use super::usd;

    #[test]
    fn usd_formats_small_and_large() {
        assert_eq!(usd(12.345), "$12.35");
        assert_eq!(usd(0.0421), "$0.0421");
    }
}
