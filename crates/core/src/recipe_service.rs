//! Joint recipe × VM planning: the recipe subsystem wired into the
//! workflow.
//!
//! A [`RecipeScenario`] names a set of design families; [`Workflow::recipe`]
//! runs the deterministic MCTS recipe search per design, trains the
//! LOSTIN-style hybrid (design ⊕ recipe) runtime predictor on the
//! candidate set with real traced synthesis labels, and then serves one
//! [`eda_cloud_serve::RequestKind::PlanRecipe`] request per design
//! through a [`Server`] whose recipe planner is the catalog-priced
//! [`WorkflowRecipePlanner`]: the hybrid predictor's per-recipe
//! synthesis forecasts and the GCN's non-synthesis stage runtimes feed
//! one exact MCKP whose synthesis stage has a (recipe × vCPU) choice
//! row, so the knapsack picks the recipe and the VM shape jointly.

use crate::optimize::VCPU_SWEEP;
use crate::{recommended_family, Workflow, WorkflowError, WorkflowPlanner};
use eda_cloud_flow::{Pass, StageKind, Synthesizer};
use eda_cloud_gcn::{GraphSample, ModelConfig, Trainer};
use eda_cloud_mckp::{Choice, Problem, Solver, Stage};
use eda_cloud_netlist::{generators, Aig, DesignGraph};
use eda_cloud_recipe::{
    candidate_recipes, recipe_from_passes, recipe_key, DesignReport, HybridPredictor, HybridSample,
    JointPlan, RecipeError, RecipeReport, RecipeSearch, SearchConfig,
};
use eda_cloud_serve::{
    ModelSnapshot, RecipePlanSummary, RecipePlanner, RequestKind, RequestOutcome, ServeConfig,
    ServeDesign, ServeError, ServeRequest, Server,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A recipe-search workload description: everything needed to
/// regenerate the same searches, predictor, and joint plans from a
/// seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecipeScenario {
    /// Design families to search recipes for (generator names).
    pub designs: Vec<String>,
    /// Generator size parameter shared by all families.
    pub size: u32,
    /// Seed driving the per-design searches, the hybrid predictor's
    /// initialization, and the serve run.
    pub seed: u64,
    /// MCTS iterations per design.
    pub iters: u64,
    /// Evaluation threads per search (and serve-stage fan-out). Any
    /// value produces the identical report.
    pub workers: usize,
    /// Total-flow deadline handed to each joint plan, seconds.
    pub deadline_secs: u64,
}

impl RecipeScenario {
    /// A three-family scenario at the default search budget.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            designs: vec!["adder".into(), "parity".into(), "comparator".into()],
            size: 6,
            seed,
            iters: 48,
            workers: 1,
            deadline_secs: 100_000,
        }
    }

    /// The search seed for the `index`-th design: one golden-ratio
    /// stride per design so searches are decorrelated but fully
    /// determined by `(seed, index)`.
    #[must_use]
    pub fn design_seed(&self, index: usize) -> u64 {
        self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The per-design search configuration.
    #[must_use]
    pub fn search_config(&self, index: usize) -> SearchConfig {
        SearchConfig {
            iters: self.iters,
            seed: self.design_seed(index),
            workers: self.workers,
            ..SearchConfig::default()
        }
    }
}

/// The catalog-priced joint recipe × VM planner behind
/// [`eda_cloud_serve::RequestKind::PlanRecipe`]: rank every candidate
/// recipe with the hybrid predictor, expand the synthesis stage into a
/// (recipe × vCPU) choice row priced like
/// [`Workflow::deployment_problem`], keep the GCN's rows for the other
/// stages, and let the exact MCKP pick recipe and shape together.
#[derive(Debug, Clone)]
pub struct WorkflowRecipePlanner {
    workflow: Workflow,
    predictor: HybridPredictor,
    candidates: Vec<Vec<Pass>>,
}

impl WorkflowRecipePlanner {
    /// Planner over the standard candidate set.
    #[must_use]
    pub fn new(workflow: Workflow, predictor: HybridPredictor) -> Self {
        Self {
            workflow,
            predictor,
            candidates: candidate_recipes(),
        }
    }

    /// Replace the candidate recipe set.
    #[must_use]
    pub fn with_candidates(mut self, candidates: Vec<Vec<Pass>>) -> Self {
        self.candidates = candidates;
        self
    }
}

/// Surface any planning-side failure as the serve tier's typed plan
/// error, mirroring [`WorkflowPlanner`].
fn plan_err(e: impl std::fmt::Display) -> ServeError {
    ServeError::Plan { message: e.to_string() }
}

impl RecipePlanner for WorkflowRecipePlanner {
    fn plan_recipe(
        &self,
        design: &ServeDesign,
        stage_secs: &[[f64; 4]; 4],
        deadline_secs: u64,
    ) -> Result<Option<RecipePlanSummary>, ServeError> {
        if self.candidates.is_empty() {
            return Err(plan_err(RecipeError::NoCandidates));
        }
        let catalog = self.workflow.catalog();
        let embedding = self.predictor.embed(&design.aig);

        // Synthesis stage: one choice per (candidate recipe, vCPU size),
        // runtimes from the hybrid predictor, costs from the catalog.
        let family = recommended_family(StageKind::Synthesis);
        let mut choices = Vec::with_capacity(self.candidates.len() * VCPU_SWEEP.len());
        let mut forecasts = Vec::with_capacity(self.candidates.len());
        for passes in &self.candidates {
            let secs = self.predictor.predict_secs(&embedding, passes).map_err(plan_err)?;
            for (k, &vcpus) in VCPU_SWEEP.iter().enumerate() {
                let instance = catalog.cheapest_with(family, vcpus).ok_or_else(|| {
                    plan_err(format!("no {family} instance with {vcpus} vCPUs"))
                })?;
                let runtime = secs[k].max(0.0).ceil() as u64;
                let cost = catalog.pricing().cost_usd(instance, secs[k]);
                choices.push(Choice::new(
                    format!("{}@{vcpus}", recipe_key(passes)),
                    runtime,
                    cost,
                ));
            }
            forecasts.push(secs);
        }
        let mut stages = vec![Stage::new("synthesis", choices)];

        // The other stages keep the GCN's runtime rows, priced exactly
        // like the deployment problem.
        for (row, kind) in [StageKind::Placement, StageKind::Routing, StageKind::Sta]
            .into_iter()
            .enumerate()
        {
            let secs = stage_secs[row + 1];
            let family = recommended_family(kind);
            let mut choices = Vec::with_capacity(VCPU_SWEEP.len());
            for (k, &vcpus) in VCPU_SWEEP.iter().enumerate() {
                let instance = catalog.cheapest_with(family, vcpus).ok_or_else(|| {
                    plan_err(format!("no {family} instance with {vcpus} vCPUs"))
                })?;
                let runtime = secs[k].max(0.0).ceil() as u64;
                let cost = catalog.pricing().cost_usd(instance, secs[k]);
                choices.push(Choice::new(instance.name.clone(), runtime, cost));
            }
            stages.push(Stage::new(kind.to_string(), choices));
        }

        let problem = Problem::new(stages).map_err(plan_err)?;
        let Some(selection) = Solver::new().solve_min_cost(&problem, deadline_secs) else {
            return Ok(None);
        };

        let joint = selection.picks[0];
        let candidate = joint / VCPU_SWEEP.len();
        let mut vcpus = [VCPU_SWEEP[joint % VCPU_SWEEP.len()]; 4];
        for (slot, &pick) in vcpus.iter_mut().skip(1).zip(&selection.picks[1..]) {
            *slot = VCPU_SWEEP[pick];
        }
        let predicted_synth_ms =
            forecasts[candidate].map(|s| (s.max(0.0) * 1_000.0).round() as u64);
        Ok(Some(RecipePlanSummary {
            recipe: recipe_key(&self.candidates[candidate]),
            vcpus,
            total_runtime_secs: selection.total_runtime_secs,
            total_cost_usd: selection.total_cost_usd,
            predicted_synth_ms,
        }))
    }
}

impl Workflow {
    /// Materialize the scenario's designs (AIG plus the two serving
    /// graph views).
    fn recipe_designs(
        &self,
        scenario: &RecipeScenario,
    ) -> Result<Vec<(String, Aig, Arc<ServeDesign>)>, WorkflowError> {
        scenario
            .designs
            .iter()
            .map(|family| {
                let aig = generators::build_family(family, scenario.size).ok_or_else(|| {
                    RecipeError::UnknownDesign { name: family.clone() }
                })?;
                let name = format!("{family}_{}", scenario.size);
                let graph = DesignGraph::from_aig(&aig);
                let view = || GraphSample::new(&graph, [1.0; 4]);
                let design = Arc::new(ServeDesign::new(name.clone(), view(), view()));
                Ok((name, aig, design))
            })
            .collect()
    }

    /// Label every (design, candidate recipe) pair with traced
    /// synthesis runtimes at the swept vCPU counts and fit the hybrid
    /// predictor's dense head on them.
    fn fit_hybrid(
        &self,
        scenario: &RecipeScenario,
        designs: &[(String, Aig, Arc<ServeDesign>)],
    ) -> Result<HybridPredictor, WorkflowError> {
        let mut predictor = HybridPredictor::seeded(scenario.seed);
        let synthesizer = Synthesizer::new().with_verification(false);
        let trace_ctx = self.exec_context(StageKind::Synthesis, 1);
        let cost_ctxs = VCPU_SWEEP.map(|v| self.exec_context(StageKind::Synthesis, v));
        let mut samples = Vec::with_capacity(designs.len() * candidate_recipes().len());
        for (name, aig, design) in designs {
            let embedding = predictor.embed(&design.aig);
            for passes in candidate_recipes() {
                let recipe = recipe_from_passes(&passes).map_err(WorkflowError::Recipe)?;
                let (_, _, trace) = synthesizer.run_traced(aig, &recipe, &trace_ctx)?;
                let log_targets = cost_ctxs
                    .each_ref()
                    .map(|ctx| Synthesizer::report_from_trace(&trace, ctx).runtime_secs.max(1e-9).ln());
                samples.push(HybridSample {
                    design: name.clone(),
                    embedding: embedding.clone(),
                    passes,
                    log_targets,
                });
            }
        }
        let mse = predictor.fit(&samples, &Trainer::fast()).map_err(WorkflowError::Recipe)?;
        self.metrics().set_gauge("recipe.fit_mse", mse);
        Ok(predictor)
    }

    /// Run the joint recipe × VM pipeline: per-design MCTS recipe
    /// search, hybrid-predictor training on traced labels, and one
    /// [`RequestKind::PlanRecipe`] request per design served through
    /// the online tier with the [`WorkflowRecipePlanner`].
    ///
    /// Same scenario, same report — [`RecipeReport::to_json`] is
    /// byte-identical across runs and worker counts. Search and
    /// planning counters fold into the workflow metrics under
    /// `recipe.*`; per-design spans are recorded as `recipe_search`
    /// roots when a tracer is attached.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Recipe`] for unknown design families or
    /// search/encoding failures, [`WorkflowError::Serve`] if the
    /// serving tier rejects the stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_cloud_core::{RecipeScenario, Workflow};
    ///
    /// let workflow = Workflow::with_defaults();
    /// let scenario = RecipeScenario {
    ///     designs: vec!["adder".into()],
    ///     iters: 4,
    ///     ..RecipeScenario::new(7)
    /// };
    /// let report = workflow.recipe(&scenario)?;
    /// assert_eq!(report.designs.len(), 1);
    /// assert!(report.designs[0].plan.is_some());
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn recipe(&self, scenario: &RecipeScenario) -> Result<RecipeReport, WorkflowError> {
        let designs = self.recipe_designs(scenario)?;

        // Phase 1: deterministic per-design recipe search.
        let mut outcomes = Vec::with_capacity(designs.len());
        for (i, (name, aig, _)) in designs.iter().enumerate() {
            let search = RecipeSearch::new(scenario.search_config(i));
            let outcome = search.run(name, aig).map_err(WorkflowError::Recipe)?;
            let span = self.tracer().root_at(i as u64, "recipe_search");
            span.attr("design", name.as_str());
            span.attr("best_recipe", outcome.best_key.as_str());
            span.attr("best_score", outcome.best.score());
            span.attr("evaluations", outcome.evaluations);
            span.attr("cache_hits", outcome.cache_hits);
            outcomes.push(outcome);
        }

        // Phase 2: hybrid predictor on traced candidate labels.
        let predictor = self.fit_hybrid(scenario, &designs)?;

        // Phase 3: one PlanRecipe request per design through the
        // serving tier.
        let requests: Vec<ServeRequest> = designs
            .iter()
            .enumerate()
            .map(|(i, (_, _, design))| ServeRequest {
                ordinal: i as u64,
                arrival_us: i as u64 * 1_000,
                deadline_us: i as u64 * 1_000 + 60_000_000,
                kind: RequestKind::PlanRecipe { deadline_secs: scenario.deadline_secs },
                design: design.clone(),
                upload: None,
            })
            .collect();
        let server = Server::new(
            ModelSnapshot::seeded(&ModelConfig::fast(), scenario.seed),
            Box::new(WorkflowPlanner::new(self.clone())),
            ServeConfig { workers: scenario.workers, ..ServeConfig::default() },
        )
        .with_recipe_planner(Box::new(WorkflowRecipePlanner::new(self.clone(), predictor)))
        .with_tracer(self.tracer().clone());
        let (serve_report, serve_outcomes) = server.run(scenario.seed, &requests)?;

        // Assemble: search sections plus the joint plans, by ordinal.
        let sections = outcomes
            .iter()
            .zip(&serve_outcomes)
            .map(|(outcome, served)| {
                let section = DesignReport::from_outcome(outcome);
                match served {
                    RequestOutcome::Completed { recipe: Some(summary), .. } => {
                        section.with_plan(JointPlan {
                            recipe: summary.recipe.clone(),
                            vcpus: summary.vcpus,
                            total_runtime_secs: summary.total_runtime_secs,
                            total_cost_usd: summary.total_cost_usd,
                            predicted_synth_ms: summary.predicted_synth_ms,
                        })
                    }
                    _ => section,
                }
            })
            .collect();
        let report = RecipeReport {
            seed: scenario.seed,
            iters: scenario.iters,
            designs: sections,
        };

        let m = self.metrics();
        m.add("recipe.designs", report.designs.len() as u64);
        m.add("recipe.improved", report.improved_designs() as u64);
        m.add(
            "recipe.evaluations",
            report.designs.iter().map(|d| d.evaluations).sum(),
        );
        m.add(
            "recipe.cache_hits",
            report.designs.iter().map(|d| d.cache_hits).sum(),
        );
        m.add(
            "recipe.plans",
            report.designs.iter().filter(|d| d.plan.is_some()).count() as u64,
        );
        m.add("recipe.plans_infeasible", serve_report.counters.plans_infeasible);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> RecipeScenario {
        RecipeScenario {
            designs: vec!["adder".into(), "parity".into()],
            size: 4,
            iters: 8,
            ..RecipeScenario::new(7)
        }
    }

    #[test]
    fn scenario_seeds_are_decorrelated_but_stable() {
        let s = RecipeScenario::new(7);
        assert_eq!(s.design_seed(0), 7);
        assert_ne!(s.design_seed(1), s.design_seed(2));
        assert_eq!(s.design_seed(1), RecipeScenario::new(7).design_seed(1));
        assert_eq!(s.search_config(1).seed, s.design_seed(1));
        assert_eq!(s.search_config(0).iters, s.iters);
    }

    #[test]
    fn planner_answers_jointly_and_reports_infeasible_deadlines() {
        let wf = Workflow::with_defaults();
        let predictor = HybridPredictor::seeded(7);
        let planner = WorkflowRecipePlanner::new(wf, predictor);
        let pool = eda_cloud_serve::design_pool();
        let stage_secs = [[10.0; 4], [40.0, 30.0, 20.0, 15.0], [80.0, 45.0, 25.0, 14.0], [5.0; 4]];
        let plan = planner
            .plan_recipe(&pool[0], &stage_secs, 1_000_000)
            .expect("plans")
            .expect("feasible");
        let keys: Vec<String> = candidate_recipes().iter().map(|p| recipe_key(p)).collect();
        assert!(keys.contains(&plan.recipe), "chosen recipe from the candidate set");
        assert!(plan.vcpus.iter().all(|v| VCPU_SWEEP.contains(v)));
        assert!(plan.total_runtime_secs <= 1_000_000);
        // An impossible deadline is NA, not an error.
        assert!(planner
            .plan_recipe(&pool[0], &stage_secs, 1)
            .expect("plans")
            .is_none());
        // Deterministic: same inputs, same plan.
        let again = planner
            .plan_recipe(&pool[0], &stage_secs, 1_000_000)
            .expect("plans")
            .expect("feasible");
        assert_eq!(plan, again);
    }

    #[test]
    fn empty_candidate_set_is_a_typed_plan_error() {
        let wf = Workflow::with_defaults();
        let planner =
            WorkflowRecipePlanner::new(wf, HybridPredictor::seeded(7)).with_candidates(Vec::new());
        let pool = eda_cloud_serve::design_pool();
        let err = planner
            .plan_recipe(&pool[0], &[[1.0; 4]; 4], 100)
            .expect_err("no candidates");
        assert!(err.to_string().contains("no candidate recipes"));
    }

    #[test]
    fn unknown_design_family_is_a_recipe_error() {
        let wf = Workflow::with_defaults();
        let scenario = RecipeScenario {
            designs: vec!["mystery".into()],
            ..tiny_scenario()
        };
        let err = wf.recipe(&scenario).expect_err("unknown family");
        assert!(matches!(
            err,
            WorkflowError::Recipe(RecipeError::UnknownDesign { .. })
        ));
    }

    #[test]
    fn recipe_pipeline_is_deterministic_and_worker_invariant() {
        let wf = Workflow::with_defaults();
        let mut scenario = tiny_scenario();
        let base = wf.recipe(&scenario).expect("runs");
        assert_eq!(base.designs.len(), 2);
        assert!(base.designs.iter().all(|d| d.plan.is_some()));
        assert!(base.designs.iter().all(|d| d.tree_visits == scenario.iters));
        for workers in [2usize, 8] {
            scenario.workers = workers;
            let report = wf.recipe(&scenario).expect("runs");
            assert_eq!(report.to_json(), base.to_json(), "workers {workers}");
        }
    }

    #[test]
    fn recipe_counters_fold_into_workflow_metrics() {
        let wf = Workflow::with_defaults().with_metrics(eda_cloud_trace::Metrics::new());
        let scenario = tiny_scenario();
        let report = wf.recipe(&scenario).expect("runs");
        assert_eq!(wf.metrics().counter("recipe.designs"), 2);
        assert_eq!(
            wf.metrics().counter("recipe.plans"),
            report.designs.iter().filter(|d| d.plan.is_some()).count() as u64
        );
        assert_eq!(
            wf.metrics().counter("recipe.evaluations"),
            report.designs.iter().map(|d| d.evaluations).sum::<u64>()
        );
    }
}
