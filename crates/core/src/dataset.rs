//! Benchmark-corpus generation (the paper's Section IV dataset).
//!
//! The paper synthesizes 18 designs under different logic-optimization
//! recipes into 330 unique netlists with 2,640 runtime labels (4 machine
//! configurations × 2 stages-of-interest × 330). This module rebuilds
//! that corpus from the synthetic design families: each (family, size,
//! recipe) triple yields one netlist, labeled with simulated runtimes at
//! 1/2/4/8 vCPUs for every stage.

use crate::optimize::VCPU_SWEEP;
use crate::sweep::{self, design_fingerprint, resolve_workers, FlowCache, FlowKey};
use crate::{Workflow, WorkflowError};
use eda_cloud_flow::{Placer, Recipe, Router, StaEngine, StageKind, Synthesizer};
use eda_cloud_gcn::GraphSample;
use eda_cloud_netlist::{generators, DesignGraph};
use serde::{Deserialize, Serialize};

/// What corpus to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Design-family names (subset of
    /// [`generators::FAMILY_NAMES`]).
    pub families: Vec<String>,
    /// Size parameter(s) per family.
    pub sizes: Vec<u32>,
    /// Number of synthesis recipes (taken from the head of
    /// [`Recipe::standard_suite`]).
    pub recipes: usize,
    /// Run the synthesis equivalence spot-check while generating.
    pub verify: bool,
    /// Worker threads fanning corpus entries out; `0` (the default)
    /// means one per available core, capped at 8. Entries are reduced
    /// in canonical (family, size, recipe) order, so any worker count
    /// yields a bit-identical corpus.
    pub workers: usize,
}

impl DatasetConfig {
    /// The paper-scaled corpus: all 18 families at three sizes under
    /// six recipes = 324 netlists (the paper has 330).
    #[must_use]
    pub fn paper_scaled() -> Self {
        Self {
            families: generators::FAMILY_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            sizes: vec![4, 8, 16],
            recipes: 6,
            verify: false,
            workers: 0,
        }
    }

    /// A small corpus for tests: 4 families × 1 size × 3 recipes.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            families: ["adder", "parity", "max", "gray2bin"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            sizes: vec![6],
            recipes: 3,
            verify: false,
            workers: 0,
        }
    }

    /// The same corpus pinned to a specific worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Expected number of netlists this config generates.
    #[must_use]
    pub fn netlist_count(&self) -> usize {
        self.families.len() * self.sizes.len() * self.recipes
    }
}

/// Per-stage sample corpora. Synthesis samples embed the AIG (the stage
/// input); placement / routing / STA samples embed the star-model
/// netlist graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageDatasets {
    /// AIG-graph samples labeled with synthesis runtimes.
    pub synthesis: Vec<GraphSample>,
    /// Netlist-graph samples labeled with placement runtimes.
    pub placement: Vec<GraphSample>,
    /// Netlist-graph samples labeled with routing runtimes.
    pub routing: Vec<GraphSample>,
    /// Netlist-graph samples labeled with STA runtimes.
    pub sta: Vec<GraphSample>,
}

impl StageDatasets {
    /// The corpus for one stage.
    #[must_use]
    pub fn for_stage(&self, kind: StageKind) -> &[GraphSample] {
        match kind {
            StageKind::Synthesis => &self.synthesis,
            StageKind::Placement => &self.placement,
            StageKind::Routing => &self.routing,
            StageKind::Sta => &self.sta,
        }
    }

    /// Total number of runtime labels across stages (4 per sample).
    #[must_use]
    pub fn label_count(&self) -> usize {
        4 * (self.synthesis.len() + self.placement.len() + self.routing.len() + self.sta.len())
    }
}

/// Corpus generator bound to a workflow (for machine contexts).
#[derive(Debug, Clone)]
pub struct DatasetBuilder<'a> {
    workflow: &'a Workflow,
}

impl<'a> DatasetBuilder<'a> {
    /// Builder over the given workflow.
    #[must_use]
    pub fn new(workflow: &'a Workflow) -> Self {
        Self { workflow }
    }

    /// Generate the corpus.
    ///
    /// Corpus entries — one per (family, size, recipe) triple — fan out
    /// over `config.workers` threads; within each entry the synthesis
    /// result is computed once and replayed across the 1/2/4/8-vCPU
    /// sweep via a shared [`FlowCache`]. Entries are reduced in
    /// canonical triple order regardless of completion order, so the
    /// corpus is bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates flow failures (with several failing entries, the
    /// error is the one a serial build would hit first); returns
    /// [`WorkflowError::EmptyDataset`] when the config yields nothing.
    pub fn build(&self, config: &DatasetConfig) -> Result<StageDatasets, WorkflowError> {
        let recipes: Vec<Recipe> = Recipe::standard_suite()
            .into_iter()
            .take(config.recipes.max(1))
            .collect();
        let mut jobs: Vec<(String, u32, Recipe)> = Vec::new();
        for family in &config.families {
            for &size in &config.sizes {
                for recipe in &recipes {
                    jobs.push((family.clone(), size, recipe.clone()));
                }
            }
        }

        let cache = FlowCache::new();
        let workers = resolve_workers(config.workers);
        type EntryResult = Result<Option<CorpusEntry>, WorkflowError>;
        let entries = sweep::run_indexed_metered(workers, jobs, self.workflow.metrics(), |index, (family, size, recipe)| -> EntryResult {
            let Some(aig) = generators::build_family(&family, size) else {
                return Ok(None);
            };
            // Span identity comes from the canonical job index, so the
            // drained trace is byte-identical at any worker count.
            let entry_span = self
                .workflow
                .tracer()
                .root_at(index as u64, &format!("corpus/{index:04}"));
            entry_span.attr("design", format_args!("{family}{size}"));
            entry_span.attr("recipe", recipe.name());
            let aig_graph = DesignGraph::from_aig(&aig);
            let synthesizer = Synthesizer::new().with_verification(config.verify);
            let key = FlowKey {
                design: design_fingerprint(&aig),
                recipe: recipe.name().to_owned(),
                verify: config.verify,
            };
            let mut syn_times = [0.0f64; 4];
            let mut place_times = [0.0f64; 4];
            let mut route_times = [0.0f64; 4];
            let mut sta_times = [0.0f64; 4];
            let mut netlist = None;
            for (k, &vcpus) in VCPU_SWEEP.iter().enumerate() {
                let point_span = entry_span.child(&format!("vcpus/{vcpus}"));
                let ctx = self
                    .workflow
                    .exec_context(StageKind::Synthesis, vcpus)
                    .with_span(point_span.clone());
                let (nl, rep) = cache.synthesize(&synthesizer, &aig, &key, &recipe, &ctx)?;
                syn_times[k] = rep.runtime_secs;

                let ctx = self
                    .workflow
                    .exec_context(StageKind::Placement, vcpus)
                    .with_span(point_span.child("placement"));
                let (placement, rep) = Placer::new().run(&nl, &ctx)?;
                place_times[k] = rep.runtime_secs;

                let ctx = self
                    .workflow
                    .exec_context(StageKind::Routing, vcpus)
                    .with_span(point_span.child("routing"));
                let (_, rep) = Router::new().run(&nl, &placement, &ctx)?;
                route_times[k] = rep.runtime_secs;

                let ctx = self
                    .workflow
                    .exec_context(StageKind::Sta, vcpus)
                    .with_span(point_span.child("sta"));
                let (_, rep) = StaEngine::new().run(&nl, &placement, &ctx)?;
                sta_times[k] = rep.runtime_secs;

                netlist = Some(nl);
            }
            let netlist = netlist.expect("sweep ran at least once");
            let base_name = format!("{family}{size}.{}", recipe.name());

            let mut syn_sample = GraphSample::new(&aig_graph, syn_times);
            syn_sample.name = base_name.clone();

            let nl_graph = DesignGraph::from_netlist(&netlist);
            let [placement, routing, sta] =
                [place_times, route_times, sta_times].map(|times| {
                    let mut sample = GraphSample::new(&nl_graph, times);
                    sample.name = base_name.clone();
                    sample
                });
            Ok(Some(CorpusEntry { synthesis: syn_sample, placement, routing, sta }))
        });

        let mut out = StageDatasets::default();
        for entry in sweep::reduce_results(entries)?.into_iter().flatten() {
            out.synthesis.push(entry.synthesis);
            out.placement.push(entry.placement);
            out.routing.push(entry.routing);
            out.sta.push(entry.sta);
        }
        if out.synthesis.is_empty() {
            return Err(WorkflowError::EmptyDataset { stage: "synthesis" });
        }
        Ok(out)
    }
}

/// The four samples one (family, size, recipe) triple contributes.
struct CorpusEntry {
    synthesis: GraphSample,
    placement: GraphSample,
    routing: GraphSample,
    sta: GraphSample,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_corpus_builds() {
        let wf = Workflow::with_defaults();
        let cfg = DatasetConfig::smoke();
        let data = DatasetBuilder::new(&wf).build(&cfg).expect("builds");
        assert_eq!(data.synthesis.len(), cfg.netlist_count());
        assert_eq!(data.routing.len(), cfg.netlist_count());
        assert_eq!(data.label_count(), 4 * 4 * cfg.netlist_count());
        // Synthesis runtimes improve with more vCPUs even on small
        // designs; routing/placement may plateau or regress on tiny
        // ones (the paper's Figure-3 effect), so only positivity is
        // asserted there.
        // (tiny corpus designs may not speed up at all — only require
        // that 8 vCPUs is no worse than ~1 vCPU).
        let s = &data.synthesis[0];
        assert!(s.targets_secs[0] * 1.10 > s.targets_secs[3]);
        assert!(data
            .routing
            .iter()
            .all(|s| s.targets_secs.iter().all(|&t| t > 0.0)));
        // Names carry family and recipe for the dataset split.
        assert!(data.synthesis[0].name.contains('.'));
    }

    #[test]
    fn empty_config_is_an_error() {
        let wf = Workflow::with_defaults();
        let cfg = DatasetConfig {
            families: vec!["unobtainium".to_owned()],
            sizes: vec![4],
            recipes: 2,
            verify: false,
            workers: 0,
        };
        assert!(matches!(
            DatasetBuilder::new(&wf).build(&cfg).unwrap_err(),
            WorkflowError::EmptyDataset { .. }
        ));
    }

    #[test]
    fn paper_scaled_counts() {
        let cfg = DatasetConfig::paper_scaled();
        assert_eq!(cfg.netlist_count(), 18 * 3 * 6);
        assert!(cfg.netlist_count() >= 300, "close to the paper's 330");
    }
}
