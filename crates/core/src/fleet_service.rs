//! Fleet serving: plan a seeded stream of flow jobs with the MCKP and
//! play it through the deterministic fleet simulator.
//!
//! This is the plan → simulate → report pipeline: [`FleetScenario`]
//! describes a workload (job count, Poisson arrival rate, deadline
//! slack, optional spot policy), [`Workflow::fleet_workload`] turns it
//! into per-job [`JobPlan`]s — Table-I-shaped stage runtimes scaled by
//! a seeded per-job size factor, each planned by the knapsack against
//! its own deadline minus a boot budget — and
//! [`Workflow::simulate_fleet`] serves the stream on the simulated
//! cloud. Planning fans out over the sweep worker pool with canonical
//! reduction, so the workload (and therefore the report) is
//! byte-identical at any worker count.

use crate::sweep::{reduce_results, resolve_workers, run_indexed_metered};
use crate::{StageRuntimes, Workflow, WorkflowError};
use eda_cloud_flow::StageKind;
use eda_cloud_fleet::{
    poisson_arrivals, FleetConfig, FleetJob, FleetReport, FleetSimulator, JobPlan, PlannedStage,
    SpotPolicy,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Boot seconds budgeted per stage when converting a job deadline into
/// an MCKP runtime constraint (the provisioner's 30-second boot, once
/// per stage VM).
const BOOT_SECS_PER_STAGE: f64 = 30.0;

/// Table-I `sparc_core` stage runtimes at 1/2/4/8 vCPUs, the base
/// workload every fleet job is a scaled copy of.
fn table1_runtimes() -> [StageRuntimes; 4] {
    [
        StageRuntimes {
            kind: StageKind::Synthesis,
            runtimes_secs: [6_100.0, 4_342.0, 3_449.0, 3_352.0],
        },
        StageRuntimes {
            kind: StageKind::Placement,
            runtimes_secs: [1_206.0, 905.0, 644.0, 519.0],
        },
        StageRuntimes {
            kind: StageKind::Routing,
            runtimes_secs: [10_461.0, 5_514.0, 2_894.0, 1_692.0],
        },
        StageRuntimes {
            kind: StageKind::Sta,
            runtimes_secs: [183.0, 119.0, 90.0, 82.0],
        },
    ]
}

/// A fleet workload description: everything needed to regenerate the
/// same job stream and simulation from a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Number of jobs in the stream.
    pub jobs: usize,
    /// Poisson arrival rate, jobs per hour (non-positive = all at t=0).
    pub rate_per_hour: f64,
    /// Seed driving arrivals, job sizes, and fault injection.
    pub seed: u64,
    /// Deadline as a multiple of the job's fastest achievable runtime
    /// (all stages at 8 vCPUs). Values near 1.0 force every job onto
    /// the biggest machines; larger values let the knapsack downsize.
    pub deadline_slack: f64,
    /// Buy stage capacity on the spot market under this policy.
    pub spot: Option<SpotPolicy>,
    /// Planning fan-out (0 = one worker per core, capped at 8). Any
    /// value produces the identical workload.
    pub workers: usize,
}

impl FleetScenario {
    /// A `jobs`-job scenario at 60 arrivals/hour with 1.6x deadline
    /// slack, on-demand capacity, and automatic planning fan-out.
    #[must_use]
    pub fn new(jobs: usize, seed: u64) -> Self {
        Self {
            jobs,
            rate_per_hour: 60.0,
            seed,
            deadline_slack: 1.6,
            spot: None,
            workers: 0,
        }
    }

    /// The same scenario buying spot capacity under `policy`.
    #[must_use]
    pub fn with_spot(mut self, policy: SpotPolicy) -> Self {
        self.spot = Some(policy);
        self
    }
}

impl Workflow {
    /// Generate the scenario's job stream: seeded Poisson arrivals, a
    /// per-job size factor (0.5–1.5x Table I, with mild per-stage
    /// jitter), and a knapsack deployment plan per job solved against
    /// the job's deadline minus the four-stage boot budget.
    ///
    /// Deterministic per scenario: arrivals and sizes are drawn up
    /// front in job order, and planning is a pure function of each
    /// job's runtimes, so the fan-out worker count cannot change the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates MCKP construction errors and catalog misses.
    pub fn fleet_workload(&self, scenario: &FleetScenario) -> Result<Vec<FleetJob>, WorkflowError> {
        let arrivals = poisson_arrivals(scenario.jobs, scenario.rate_per_hour, scenario.seed);
        // All randomness is consumed serially here, before the fan-out.
        let mut rng = ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x0f1e_e75c_a1e5_u64);
        let sized: Vec<(f64, [StageRuntimes; 4])> = arrivals
            .into_iter()
            .map(|arrival_secs| {
                let size: f64 = rng.gen_range(0.5..1.5);
                let mut runtimes = table1_runtimes();
                for stage in &mut runtimes {
                    let jitter: f64 = rng.gen_range(0.9..1.1);
                    for r in &mut stage.runtimes_secs {
                        *r *= size * jitter;
                    }
                }
                (arrival_secs, runtimes)
            })
            .collect();

        let slack = scenario.deadline_slack.max(1.0);
        let workers = resolve_workers(scenario.workers);
        let planned =
            run_indexed_metered(workers, sized, self.metrics(), |index, (arrival_secs, runtimes)| {
                // Keyed by job index, so planning spans merge into the
                // same canonical order at any worker count.
                let span = self.tracer().root_at(index as u64, &format!("plan/{index:04}"));
                let job = self.plan_fleet_job(index as u64, arrival_secs, &runtimes, slack);
                if let Ok(job) = &job {
                    span.counter("deadline_secs", job.plan.deadline_secs);
                    span.counter("planned_runtime_secs", job.plan.planned_runtime_secs());
                }
                job
            });
        reduce_results(planned)
    }

    /// Plan one job: deadline from the slack factor, knapsack constraint
    /// from the deadline minus the boot budget (clamped to feasibility).
    fn plan_fleet_job(
        &self,
        id: u64,
        arrival_secs: f64,
        runtimes: &[StageRuntimes; 4],
        slack: f64,
    ) -> Result<FleetJob, WorkflowError> {
        // Fastest achievable: every stage on 8 vCPUs (runtime index 3).
        let fastest_ceil: u64 = runtimes
            .iter()
            .map(|r| r.runtimes_secs[3].max(0.0).ceil() as u64)
            .sum();
        let fastest: f64 = runtimes.iter().map(|r| r.runtimes_secs[3]).sum();
        let boot_budget = BOOT_SECS_PER_STAGE * runtimes.len() as f64;
        let deadline_secs = (slack * fastest + boot_budget).ceil() as u64;
        let constraint = deadline_secs
            .saturating_sub(boot_budget.ceil() as u64)
            .max(fastest_ceil);
        let plan = self
            .plan_deployment(runtimes, constraint)?
            .expect("constraint is clamped to the fastest selection");
        let stages = plan
            .stages
            .iter()
            .map(|s| PlannedStage {
                name: s.kind.to_string(),
                instance: s.instance.clone(),
                runtime_secs: s.runtime_secs,
            })
            .collect();
        Ok(FleetJob {
            plan: JobPlan { id, stages, deadline_secs },
            arrival_secs,
        })
    }

    /// Plan the scenario's workload and serve it on the simulated
    /// cloud: the end-to-end plan → simulate → report pipeline.
    ///
    /// Same scenario, same report — byte-identical
    /// [`FleetReport::to_json`] output across runs and worker counts.
    ///
    /// # Errors
    ///
    /// Propagates planning errors ([`WorkflowError::Mckp`],
    /// [`WorkflowError::Cloud`]) and simulation rejections
    /// ([`WorkflowError::Fleet`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_cloud_core::{FleetScenario, Workflow};
    ///
    /// let workflow = Workflow::with_defaults();
    /// let report = workflow.simulate_fleet(&FleetScenario::new(3, 7))?;
    /// assert_eq!(report.counters.jobs_completed, 3);
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn simulate_fleet(&self, scenario: &FleetScenario) -> Result<FleetReport, WorkflowError> {
        let jobs = self.fleet_workload(scenario)?;
        let mut config = FleetConfig::on_demand(scenario.seed);
        config.spot = scenario.spot;
        let report = FleetSimulator::new(self.catalog().clone())
            .with_tracer(self.tracer().clone())
            .run(&jobs, &config)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_cloud::SpotMarket;

    #[test]
    fn workload_is_deterministic_and_worker_invariant() {
        let wf = Workflow::with_defaults();
        let mut scenario = FleetScenario::new(6, 11);
        scenario.workers = 1;
        let serial = wf.fleet_workload(&scenario).expect("plans");
        scenario.workers = 4;
        let parallel = wf.fleet_workload(&scenario).expect("plans");
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
        // Jobs differ from each other (sizes drawn per job).
        assert_ne!(
            serial[0].plan.planned_runtime_secs(),
            serial[1].plan.planned_runtime_secs()
        );
    }

    #[test]
    fn plans_fit_their_deadlines_with_boot_headroom() {
        let wf = Workflow::with_defaults();
        let jobs = wf.fleet_workload(&FleetScenario::new(8, 3)).expect("plans");
        for job in &jobs {
            let boots = BOOT_SECS_PER_STAGE as u64 * job.plan.stages.len() as u64;
            assert!(
                job.plan.planned_runtime_secs() + boots <= job.plan.deadline_secs,
                "job {} plan {}s + {}s boots exceeds deadline {}s",
                job.plan.id,
                job.plan.planned_runtime_secs(),
                boots,
                job.plan.deadline_secs
            );
            assert_eq!(job.plan.stages.len(), 4);
        }
    }

    #[test]
    fn tight_slack_buys_bigger_machines_than_loose_slack() {
        let wf = Workflow::with_defaults();
        let mut tight = FleetScenario::new(5, 9);
        tight.deadline_slack = 1.0;
        let mut loose = FleetScenario::new(5, 9);
        loose.deadline_slack = 4.0;
        let cost = |jobs: &[FleetJob]| -> u64 {
            jobs.iter().map(|j| j.plan.planned_runtime_secs()).sum()
        };
        let tight_jobs = wf.fleet_workload(&tight).expect("plans");
        let loose_jobs = wf.fleet_workload(&loose).expect("plans");
        // Looser deadlines allow slower (cheaper) machines -> more
        // total planned seconds.
        assert!(cost(&loose_jobs) > cost(&tight_jobs));
    }

    #[test]
    fn on_demand_fleet_hits_every_deadline() {
        let wf = Workflow::with_defaults();
        let report = wf.simulate_fleet(&FleetScenario::new(10, 5)).expect("simulates");
        assert_eq!(report.counters.jobs_completed, 10);
        assert_eq!(report.deadline_hit_rate, 1.0, "{report:?}");
        assert_eq!(report.counters.interruptions, 0);
        assert!(report.total_cost_usd > 0.0);
    }

    #[test]
    fn spot_fleet_is_cheaper_but_misses_deadlines() {
        let wf = Workflow::with_defaults();
        let on_demand = wf.simulate_fleet(&FleetScenario::new(12, 5)).expect("simulates");
        let stormy = SpotPolicy {
            market: SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.25 },
            ..SpotPolicy::typical()
        };
        let spot = wf
            .simulate_fleet(&FleetScenario::new(12, 5).with_spot(stormy))
            .expect("simulates");
        assert_eq!(spot.counters.jobs_completed, 12, "retries always finish jobs");
        assert!(spot.counters.interruptions > 0, "hour-long stages get reclaimed");
        assert!(spot.total_cost_usd < on_demand.total_cost_usd);
        assert!(spot.deadline_hit_rate < on_demand.deadline_hit_rate);
    }

    #[test]
    fn simulate_fleet_is_reproducible() {
        let wf = Workflow::with_defaults();
        let scenario = FleetScenario::new(8, 21).with_spot(SpotPolicy::typical());
        let a = wf.simulate_fleet(&scenario).expect("simulates");
        let b = wf.simulate_fleet(&scenario).expect("simulates");
        assert_eq!(a.to_json(), b.to_json());
    }
}
