//! Online serving: play a request stream against the trained stage
//! predictors and the catalog-backed deployment planner.
//!
//! This wires `eda-cloud-serve` into the workflow: a [`ServeScenario`]
//! describes an open-loop request stream (count, Poisson rate, seed),
//! [`Workflow::serve_workload`] materializes it over the synthetic
//! design pool, and [`Workflow::serve`] plays it through a
//! [`eda_cloud_serve::Server`] whose planner is the workflow's own
//! MCKP deployment planner ([`WorkflowPlanner`]) priced on the real
//! instance catalog rather than the service's flat rate table.
//! [`ServeScenario::from_fleet`] converts a fleet workload description
//! into serving traffic, so the fleet simulator doubles as the traffic
//! source for the online tier.

use crate::predict::StagePredictors;
use crate::{StageRuntimes, Workflow, WorkflowError};
use eda_cloud_flow::StageKind;
use eda_cloud_serve::{
    design_pool, synthetic_requests, ModelSnapshot, PlanSummary, Planner, RequestOutcome,
    ServeConfig, ServeError, ServeReport, ServeRequest, Server, WorkloadConfig, VCPUS,
};
use serde::{Deserialize, Serialize};

/// An online-serving workload description: everything needed to
/// regenerate the same request stream and report from a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeScenario {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second (Poisson process).
    pub rate_per_sec: f64,
    /// Seed driving arrivals, design choice, deadlines, and kinds.
    pub seed: u64,
    /// Stage-model fan-out threads (0 = available parallelism, capped
    /// at 4). Any value produces the identical report.
    pub workers: usize,
}

impl ServeScenario {
    /// A `requests`-request scenario at the default 200 req/s with
    /// automatic stage fan-out.
    #[must_use]
    pub fn new(requests: usize, seed: u64) -> Self {
        Self { requests, rate_per_sec: 200.0, seed, workers: 0 }
    }

    /// Derive serving traffic from a fleet workload description: one
    /// request per fleet job, the fleet's hourly arrival rate converted
    /// to per-second, same seed and fan-out — the fleet simulator as a
    /// traffic source for the online tier.
    #[must_use]
    pub fn from_fleet(scenario: &crate::FleetScenario) -> Self {
        Self {
            requests: scenario.jobs,
            rate_per_sec: (scenario.rate_per_hour / 3600.0).max(f64::MIN_POSITIVE),
            seed: scenario.seed,
            workers: scenario.workers,
        }
    }

    /// The serve-crate workload parameters this scenario expands to.
    #[must_use]
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            requests: self.requests,
            rate_per_sec: self.rate_per_sec,
            seed: self.seed,
            ..WorkloadConfig::default()
        }
    }
}

/// The workflow's deployment planner behind the serving API: predicted
/// per-stage runtimes go through [`Workflow::plan_deployment`] — the
/// catalog-priced exact MCKP — instead of the service's built-in flat
/// rate table.
#[derive(Debug, Clone)]
pub struct WorkflowPlanner {
    workflow: Workflow,
}

impl WorkflowPlanner {
    /// Wrap a workflow (cheap: the workflow shares its catalog, tracer,
    /// and metrics by handle).
    #[must_use]
    pub fn new(workflow: Workflow) -> Self {
        Self { workflow }
    }
}

impl Planner for WorkflowPlanner {
    fn plan(
        &self,
        stage_secs: &[[f64; 4]; 4],
        budget_secs: u64,
    ) -> Result<Option<PlanSummary>, ServeError> {
        let runtimes: Vec<StageRuntimes> = StageKind::ALL
            .iter()
            .enumerate()
            .map(|(k, &kind)| StageRuntimes { kind, runtimes_secs: stage_secs[k] })
            .collect();
        let plan = self
            .workflow
            .plan_deployment(&runtimes, budget_secs)
            .map_err(|e| ServeError::Plan { message: e.to_string() })?;
        let Some(plan) = plan else {
            return Ok(None);
        };
        let mut vcpus = [VCPUS[0]; 4];
        for (slot, stage) in vcpus.iter_mut().zip(&plan.stages) {
            *slot = stage.vcpus;
        }
        Ok(Some(PlanSummary {
            vcpus,
            total_runtime_secs: plan.total_runtime_secs,
            total_cost_usd: plan.total_cost_usd,
        }))
    }
}

impl StagePredictors {
    /// Freeze the four trained stage models into a serving snapshot
    /// (evaluation reports stay behind; only the weights ship).
    #[must_use]
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::new(
            self.synthesis.model.clone(),
            self.placement.model.clone(),
            self.routing.model.clone(),
            self.sta.model.clone(),
        )
    }
}

impl Workflow {
    /// Materialize the scenario's request stream over the synthetic
    /// design pool: seeded Poisson arrivals, uniform deadline windows,
    /// and a seeded Predict/Plan mix. Deterministic per scenario.
    #[must_use]
    pub fn serve_workload(&self, scenario: &ServeScenario) -> Vec<ServeRequest> {
        synthetic_requests(&design_pool(), &scenario.workload_config())
    }

    /// Serve the scenario's request stream against `snapshot` with the
    /// workflow's catalog-backed planner: the end-to-end
    /// materialize → serve → report pipeline for the online tier.
    ///
    /// Same scenario and snapshot, same report — byte-identical
    /// [`ServeReport::to_json`] output across runs and worker counts.
    /// Serving counters are folded into the workflow's metrics under
    /// `serve.*`.
    ///
    /// # Errors
    ///
    /// Surfaces planner failures as [`WorkflowError::Serve`] (sheds are
    /// outcomes in the report, not errors).
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_cloud_core::{ServeScenario, Workflow};
    /// use eda_cloud_gcn::ModelConfig;
    /// use eda_cloud_serve::ModelSnapshot;
    ///
    /// let workflow = Workflow::with_defaults();
    /// let snapshot = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
    /// let (report, outcomes) = workflow.serve(&ServeScenario::new(8, 7), &snapshot)?;
    /// assert_eq!(outcomes.len(), 8);
    /// assert_eq!(report.counters.requests, 8);
    /// # Ok::<(), eda_cloud_core::WorkflowError>(())
    /// ```
    pub fn serve(
        &self,
        scenario: &ServeScenario,
        snapshot: &ModelSnapshot,
    ) -> Result<(ServeReport, Vec<RequestOutcome>), WorkflowError> {
        let requests = self.serve_workload(scenario);
        let config = ServeConfig { workers: scenario.workers, ..ServeConfig::default() };
        let server = Server::new(snapshot.clone(), Box::new(WorkflowPlanner::new(self.clone())), config)
            .with_tracer(self.tracer().clone());
        let (report, outcomes) = server.run(scenario.seed, &requests)?;
        let m = self.metrics();
        m.add("serve.requests", report.counters.requests);
        m.add("serve.completed", report.counters.completed);
        m.add("serve.shed", report.counters.shed);
        m.add("serve.cache_hits", report.counters.cache_hits);
        m.add("serve.plans", report.counters.plans);
        m.set_gauge("serve.deadline_hit_rate", report.deadline_hit_rate);
        Ok((report, outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, DatasetConfig};
    use crate::FleetScenario;
    use eda_cloud_gcn::{ModelConfig, Trainer};
    use eda_cloud_serve::RequestKind;

    fn seeded_snapshot(seed: u64) -> ModelSnapshot {
        ModelSnapshot::seeded(&ModelConfig::fast(), seed)
    }

    #[test]
    fn serve_is_deterministic_and_worker_invariant() {
        let wf = Workflow::with_defaults();
        let snapshot = seeded_snapshot(7);
        let mut scenario = ServeScenario::new(24, 7);
        scenario.workers = 1;
        let (base, base_outcomes) = wf.serve(&scenario, &snapshot).expect("serves");
        assert_eq!(base.counters.requests, 24);
        for workers in [2usize, 8] {
            scenario.workers = workers;
            let (report, outcomes) = wf.serve(&scenario, &snapshot).expect("serves");
            assert_eq!(report.to_json(), base.to_json(), "workers {workers}");
            assert_eq!(outcomes, base_outcomes, "workers {workers}");
        }
    }

    #[test]
    fn workflow_planner_matches_plan_deployment() {
        let wf = Workflow::with_defaults();
        let stage_secs = [
            [6_100.0, 4_342.0, 3_449.0, 3_352.0],
            [1_206.0, 905.0, 644.0, 519.0],
            [10_461.0, 5_514.0, 2_894.0, 1_692.0],
            [183.0, 119.0, 90.0, 82.0],
        ];
        let planner = WorkflowPlanner::new(wf.clone());
        let summary = planner.plan(&stage_secs, 100_000).expect("valid").expect("feasible");
        let runtimes: Vec<StageRuntimes> = StageKind::ALL
            .iter()
            .enumerate()
            .map(|(k, &kind)| StageRuntimes { kind, runtimes_secs: stage_secs[k] })
            .collect();
        let direct = wf.plan_deployment(&runtimes, 100_000).expect("valid").expect("feasible");
        assert_eq!(summary.total_runtime_secs, direct.total_runtime_secs);
        assert_eq!(summary.total_cost_usd, direct.total_cost_usd);
        for (v, s) in summary.vcpus.iter().zip(&direct.stages) {
            assert_eq!(*v, s.vcpus);
        }
        // Below the fastest selection there is no feasible plan.
        assert!(planner.plan(&stage_secs, 5_000).expect("valid").is_none());
    }

    #[test]
    fn fleet_scenario_converts_to_serving_traffic() {
        let fleet = FleetScenario::new(12, 21);
        let scenario = ServeScenario::from_fleet(&fleet);
        assert_eq!(scenario.requests, 12);
        assert_eq!(scenario.seed, 21);
        assert!((scenario.rate_per_sec - fleet.rate_per_hour / 3600.0).abs() < 1e-12);
        let wf = Workflow::with_defaults();
        let requests = wf.serve_workload(&scenario);
        assert_eq!(requests.len(), 12);
        assert!(requests.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(requests.iter().any(|r| matches!(r.kind, RequestKind::Plan { .. })));
    }

    #[test]
    fn trained_predictors_snapshot_and_serve() {
        let wf = Workflow::with_defaults();
        let data = DatasetBuilder::new(&wf).build(&DatasetConfig::smoke()).expect("corpus");
        let mut trainer = Trainer::fast();
        trainer.epochs = 2; // keep the unit test quick
        let predictors = StagePredictors::train(&data, &trainer).expect("training");
        let snapshot = predictors.snapshot();
        // Snapshot predictions match the live predictors bit-for-bit.
        let text = snapshot.to_text();
        let reloaded = ModelSnapshot::from_text(&text).expect("parses");
        let direct = predictors.predict_design(&data.synthesis[0], &data.routing[0]);
        let via = reloaded.stage(0).predict_secs(&data.synthesis[0]);
        assert_eq!(direct[0].runtimes_secs, via);
        let (report, outcomes) = wf.serve(&ServeScenario::new(8, 3), &snapshot).expect("serves");
        assert_eq!(outcomes.len(), 8);
        assert_eq!(report.counters.completed + report.counters.shed, 8);
    }

    #[test]
    fn serving_counters_fold_into_workflow_metrics() {
        let wf = Workflow::with_defaults().with_metrics(eda_cloud_trace::Metrics::new());
        let (report, _) = wf.serve(&ServeScenario::new(10, 5), &seeded_snapshot(5)).expect("serves");
        assert_eq!(wf.metrics().counter("serve.requests"), 10);
        assert_eq!(wf.metrics().counter("serve.completed"), report.counters.completed);
        assert_eq!(
            wf.metrics().gauge("serve.deadline_hit_rate"),
            Some(report.deadline_hit_rate)
        );
    }
}
