//! End-to-end workflow of the paper's Figure 1: characterize the four
//! EDA applications on candidate VM configurations, train a GCN to
//! predict runtimes for new designs, and optimize the deployment with a
//! multi-choice knapsack under a deadline constraint.
//!
//! The [`Workflow`] type ties the substrates together:
//!
//! 1. [`Workflow::characterize_design`] — run synthesis / placement /
//!    routing / STA at 1/2/4/8 vCPUs on each stage's recommended
//!    instance family, collecting counter signatures and simulated
//!    runtimes (Problems 1 of the paper, Figures 2-3).
//! 2. [`dataset::DatasetBuilder`] — generate the benchmark corpus
//!    (18 design families × synthesis recipes) and label each netlist
//!    with per-vCPU stage runtimes (the paper's 330-netlist dataset).
//! 3. [`predict::StagePredictors`] — one GCN per application trained on
//!    that corpus (Problem 2, Figures 4-5).
//! 4. [`Workflow::plan_deployment`] — map predicted runtimes and the
//!    AWS-like pricing catalog to an MCKP instance and solve it
//!    (Problem 3, Table I and Figure 6).
//! 5. [`Workflow::simulate_fleet`] — plan a seeded stream of flow jobs
//!    and serve it on the simulated cloud with warm pools, spot
//!    interruptions, and retries, reporting deadline-hit rate and cost
//!    (the fleet-scale extension of the paper's single-flow analysis).
//! 6. [`Workflow::serve`] — play an open-loop stream of predict/plan
//!    requests against a frozen model snapshot on the deterministic
//!    simulated-time serving tier, planning with the catalog-backed
//!    MCKP ([`WorkflowPlanner`]).
//! 7. [`Workflow::lifecycle`] — manage the serving snapshot under
//!    traffic: join ground-truth feedback, detect runtime drift,
//!    shadow-retrain a candidate, and canary it to promotion or
//!    rollback, all in deterministic simulated time.
//! 8. [`Workflow::simtest`] — stress the fleet, serve, and lifecycle
//!    loops under a seeded fault plan (spot storms, overload bursts,
//!    feedback drops, snapshot corruption) and check global invariants
//!    over the results, with delta-debugging down to a minimal
//!    reproducer on failure.
//! 9. [`Workflow::recipe`] — search synthesis recipes per design with
//!    the deterministic MCTS agent, train the hybrid (design ⊕ recipe)
//!    runtime predictor, and answer joint recipe × VM-plan requests
//!    through the serving tier ([`WorkflowRecipePlanner`]).
//! 10. [`Workflow::ingest`] — push external netlists (BLIF, structural
//!     Verilog, Bookshelf) through the validating front door and serve
//!     a request stream with an upload mix: accepted designs are
//!     canonicalized, fingerprinted, and OOD-scored; malformed uploads
//!     are quarantined with typed, position-annotated reasons.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_core::{CharacterizationConfig, Workflow};
//! use eda_cloud_netlist::generators;
//!
//! let workflow = Workflow::with_defaults();
//! let design = generators::adder(8);
//! let report = workflow.characterize_design(&design, &CharacterizationConfig::fast())?;
//! assert_eq!(report.stages.len(), 4);
//! assert!(report.stages[0].runs[0].report.runtime_secs > 0.0);
//! # Ok::<(), eda_cloud_core::WorkflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
pub mod dataset;
mod error;
mod fleet_service;
mod ingest_service;
mod lifecycle_service;
mod optimize;
pub mod predict;
mod recipe_service;
mod recommend;
pub mod report;
mod serve_service;
mod simtest_service;
pub mod sweep;
mod workflow;

pub use characterize::{
    CharacterizationConfig, CharacterizationReport, StageCharacterization, VcpuRun,
};
pub use error::WorkflowError;
pub use fleet_service::FleetScenario;
pub use ingest_service::{IngestRunReport, IngestScenario};
pub use lifecycle_service::LifecycleScenario;
pub use optimize::{DeploymentPlan, StagePlan, StageRuntimes};
pub use recipe_service::{RecipeScenario, WorkflowRecipePlanner};
pub use recommend::{recommended_family, recommendation_notes};
pub use serve_service::{ServeScenario, WorkflowPlanner};
pub use simtest_service::SimtestScenario;
pub use sweep::{design_fingerprint, resolve_workers, FlowCache, FlowKey};
pub use workflow::{stage_work_scale, Workflow};
