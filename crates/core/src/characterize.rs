//! Problem 1: characterize the four applications across VM sizes.

use crate::sweep::{self, design_fingerprint, resolve_workers, FlowCache, FlowKey};
use crate::{recommended_family, WorkflowError, Workflow};
use eda_cloud_flow::{
    Placer, Recipe, Router, StaEngine, StageKind, StageReport, Synthesizer,
};
use eda_cloud_netlist::Aig;
use serde::{Deserialize, Serialize};

/// How to run a characterization sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// vCPU counts to sweep (the paper uses 1, 2, 4, 8).
    pub vcpu_sweep: Vec<u32>,
    /// Synthesis recipe used to produce the netlist.
    pub recipe: Recipe,
    /// Whether synthesis runs its equivalence spot-check.
    pub verify: bool,
    /// Worker threads fanning the sweep out; `0` (the default) means
    /// one per available core, capped at 8. Results are reduced in
    /// canonical sweep order, so any worker count yields bit-identical
    /// output.
    pub workers: usize,
}

impl CharacterizationConfig {
    /// The paper's sweep: 1, 2, 4, 8 vCPUs with the default recipe.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            vcpu_sweep: vec![1, 2, 4, 8],
            recipe: Recipe::balanced(),
            verify: true,
            workers: 0,
        }
    }

    /// A minimal sweep for tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            vcpu_sweep: vec![1, 2],
            recipe: Recipe::balanced(),
            verify: false,
            workers: 0,
        }
    }

    /// The same sweep pinned to a specific worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// One stage run at one vCPU count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcpuRun {
    /// vCPU count of the VM.
    pub vcpus: u32,
    /// The stage's performance report.
    pub report: StageReport,
}

/// A stage's full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCharacterization {
    /// Which application.
    pub kind: StageKind,
    /// Instance-family name the sweep ran on.
    pub family: String,
    /// One entry per vCPU count, in sweep order.
    pub runs: Vec<VcpuRun>,
}

impl StageCharacterization {
    /// Speedup of each run relative to the first (1-vCPU) run.
    #[must_use]
    pub fn speedups(&self) -> Vec<f64> {
        let base = self.runs.first().map_or(1.0, |r| r.report.runtime_secs);
        self.runs
            .iter()
            .map(|r| base / r.report.runtime_secs)
            .collect()
    }

    /// The run at a specific vCPU count, if it was swept.
    #[must_use]
    pub fn at_vcpus(&self, vcpus: u32) -> Option<&VcpuRun> {
        self.runs.iter().find(|r| r.vcpus == vcpus)
    }
}

/// The characterization of one design across all four stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Design name.
    pub design: String,
    /// Cell count of the synthesized netlist.
    pub cells: usize,
    /// Per-stage sweeps, in flow order.
    pub stages: Vec<StageCharacterization>,
}

impl CharacterizationReport {
    /// Find the sweep of a given stage.
    #[must_use]
    pub fn stage(&self, kind: StageKind) -> Option<&StageCharacterization> {
        self.stages.iter().find(|s| s.kind == kind)
    }
}

impl Workflow {
    /// Run the four-stage flow at every vCPU count in the sweep, each
    /// stage on its recommended instance family, and collect the
    /// counter signatures and runtimes of the paper's Figure 2.
    ///
    /// The sweep points fan out over `config.workers` threads and the
    /// synthesis result is computed once per `(design, recipe)` pair
    /// via [`FlowCache`], then replayed per machine configuration.
    /// Results are reduced in sweep order (index-keyed, not completion
    /// order), so the report is bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates stage failures as [`WorkflowError::Flow`]; with
    /// several failing sweep points, the error is the one a serial
    /// sweep would hit first.
    pub fn characterize_design(
        &self,
        design: &Aig,
        config: &CharacterizationConfig,
    ) -> Result<CharacterizationReport, WorkflowError> {
        let synthesizer = Synthesizer::new().with_verification(config.verify);
        let cache = FlowCache::new();
        let key = FlowKey {
            design: design_fingerprint(design),
            recipe: config.recipe.name().to_owned(),
            verify: config.verify,
        };
        let workers = resolve_workers(config.workers);

        type PointResult = Result<(usize, [StageReport; 4]), WorkflowError>;
        let points = sweep::run_indexed_metered(
            workers,
            config.vcpu_sweep.clone(),
            self.metrics(),
            |index, vcpus| -> PointResult {
                // Span identity comes from the sweep index — canonical
                // data, never scheduling — so the drained trace is
                // byte-identical at any worker count.
                let point_span = self.tracer().root_at(index as u64, &format!("point/{index:04}"));
                point_span.attr("vcpus", vcpus);

                let ctx = self
                    .exec_context(StageKind::Synthesis, vcpus)
                    .with_span(point_span.clone());
                let (netlist, syn_report) =
                    cache.synthesize(&synthesizer, design, &key, &config.recipe, &ctx)?;

                let ctx = self
                    .exec_context(StageKind::Placement, vcpus)
                    .with_span(point_span.child("placement"));
                let (placement, place_report) = Placer::new().run(&netlist, &ctx)?;

                let ctx = self
                    .exec_context(StageKind::Routing, vcpus)
                    .with_span(point_span.child("routing"));
                let (_routing, route_report) = Router::new().run(&netlist, &placement, &ctx)?;

                let ctx = self
                    .exec_context(StageKind::Sta, vcpus)
                    .with_span(point_span.child("sta"));
                let (_timing, sta_report) = StaEngine::new().run(&netlist, &placement, &ctx)?;

                Ok((
                    netlist.cell_count(),
                    [syn_report, place_report, route_report, sta_report],
                ))
            },
        );
        let points = sweep::reduce_results(points)?;

        let mut stages: Vec<StageCharacterization> = StageKind::ALL
            .iter()
            .map(|&kind| {
                let family = recommended_family(kind);
                StageCharacterization {
                    kind,
                    family: family.to_string(),
                    runs: Vec::new(),
                }
            })
            .collect();
        let mut cells = 0;
        for (&vcpus, (point_cells, reports)) in config.vcpu_sweep.iter().zip(points) {
            cells = point_cells;
            for (stage, report) in stages.iter_mut().zip(reports) {
                stage.runs.push(VcpuRun { vcpus, report });
            }
        }
        Ok(CharacterizationReport {
            design: design.name().to_owned(),
            cells,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::generators;

    #[test]
    fn sweep_produces_all_stages_and_vcpus() {
        let wf = Workflow::with_defaults();
        let report = wf
            .characterize_design(&generators::adder(8), &CharacterizationConfig::fast())
            .expect("characterization runs");
        assert_eq!(report.stages.len(), 4);
        for stage in &report.stages {
            assert_eq!(stage.runs.len(), 2);
            assert_eq!(stage.runs[0].vcpus, 1);
            assert!(stage.runs[0].report.runtime_secs > 0.0);
        }
        assert!(report.cells > 0);
        assert!(report.stage(StageKind::Routing).is_some());
    }

    #[test]
    fn placement_and_routing_run_on_memory_optimized() {
        let wf = Workflow::with_defaults();
        let report = wf
            .characterize_design(&generators::adder(6), &CharacterizationConfig::fast())
            .expect("characterization runs");
        assert_eq!(report.stage(StageKind::Placement).unwrap().family, "memory-optimized");
        assert_eq!(report.stage(StageKind::Sta).unwrap().family, "general-purpose");
    }

    #[test]
    fn speedups_start_at_one() {
        let wf = Workflow::with_defaults();
        let report = wf
            .characterize_design(&generators::multiplier(6), &CharacterizationConfig::fast())
            .expect("characterization runs");
        for stage in &report.stages {
            let sp = stage.speedups();
            assert!((sp[0] - 1.0).abs() < 1e-12);
        }
    }
}
