//! Workflow errors.

use eda_cloud_cloud::CloudError;
use eda_cloud_fleet::FleetError;
use eda_cloud_flow::FlowError;
use eda_cloud_gcn::GcnError;
use eda_cloud_ingest::IngestError;
use eda_cloud_lifecycle::LifecycleError;
use eda_cloud_mckp::MckpError;
use eda_cloud_recipe::RecipeError;
use eda_cloud_serve::ServeError;
use eda_cloud_simtest::SimtestError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the end-to-end workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// A flow stage failed.
    Flow(FlowError),
    /// The cloud substrate rejected a request.
    Cloud(CloudError),
    /// The optimizer instance was malformed.
    Mckp(MckpError),
    /// The fleet simulator rejected the workload.
    Fleet(FleetError),
    /// The serving tier rejected the request or stream.
    Serve(ServeError),
    /// The model-lifecycle controller rejected its configuration or a
    /// registry operation.
    Lifecycle(LifecycleError),
    /// The fault-injection harness rejected its configuration or plan,
    /// or a driven loop failed under it.
    Simtest(SimtestError),
    /// The recipe subsystem rejected a search, encoding, or snapshot.
    Recipe(RecipeError),
    /// The ingestion front door rejected an upload that the workflow
    /// needed to succeed (e.g. a checked-in fixture).
    Ingest(IngestError),
    /// The dataset builder produced no samples for a stage.
    EmptyDataset {
        /// The stage whose corpus came out empty.
        stage: &'static str,
    },
    /// Model training failed (empty split, degenerate architecture,
    /// diverged loss).
    Train(GcnError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Flow(e) => write!(f, "flow stage failed: {e}"),
            WorkflowError::Cloud(e) => write!(f, "cloud substrate error: {e}"),
            WorkflowError::Mckp(e) => write!(f, "optimizer error: {e}"),
            WorkflowError::Fleet(e) => write!(f, "fleet simulator error: {e}"),
            WorkflowError::Serve(e) => write!(f, "serving error: {e}"),
            WorkflowError::Lifecycle(e) => write!(f, "lifecycle error: {e}"),
            WorkflowError::Simtest(e) => write!(f, "simtest harness error: {e}"),
            WorkflowError::Recipe(e) => write!(f, "recipe subsystem error: {e}"),
            WorkflowError::Ingest(e) => write!(f, "ingestion error: {e}"),
            WorkflowError::EmptyDataset { stage } => {
                write!(f, "dataset for stage `{stage}` is empty")
            }
            WorkflowError::Train(e) => write!(f, "model training failed: {e}"),
        }
    }
}

impl Error for WorkflowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkflowError::Flow(e) => Some(e),
            WorkflowError::Cloud(e) => Some(e),
            WorkflowError::Mckp(e) => Some(e),
            WorkflowError::Fleet(e) => Some(e),
            WorkflowError::Serve(e) => Some(e),
            WorkflowError::Lifecycle(e) => Some(e),
            WorkflowError::Simtest(e) => Some(e),
            WorkflowError::Recipe(e) => Some(e),
            WorkflowError::Ingest(e) => Some(e),
            WorkflowError::EmptyDataset { .. } => None,
            WorkflowError::Train(e) => Some(e),
        }
    }
}

impl From<FlowError> for WorkflowError {
    fn from(e: FlowError) -> Self {
        WorkflowError::Flow(e)
    }
}

impl From<CloudError> for WorkflowError {
    fn from(e: CloudError) -> Self {
        WorkflowError::Cloud(e)
    }
}

impl From<MckpError> for WorkflowError {
    fn from(e: MckpError) -> Self {
        WorkflowError::Mckp(e)
    }
}

impl From<FleetError> for WorkflowError {
    fn from(e: FleetError) -> Self {
        WorkflowError::Fleet(e)
    }
}

impl From<ServeError> for WorkflowError {
    fn from(e: ServeError) -> Self {
        WorkflowError::Serve(e)
    }
}

impl From<LifecycleError> for WorkflowError {
    fn from(e: LifecycleError) -> Self {
        WorkflowError::Lifecycle(e)
    }
}

impl From<SimtestError> for WorkflowError {
    fn from(e: SimtestError) -> Self {
        WorkflowError::Simtest(e)
    }
}

impl From<RecipeError> for WorkflowError {
    fn from(e: RecipeError) -> Self {
        WorkflowError::Recipe(e)
    }
}

impl From<IngestError> for WorkflowError {
    fn from(e: IngestError) -> Self {
        WorkflowError::Ingest(e)
    }
}

impl From<GcnError> for WorkflowError {
    fn from(e: GcnError) -> Self {
        WorkflowError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: WorkflowError = FlowError::EmptyDesign.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("flow stage"));
        let e: WorkflowError = MckpError::NoStages.into();
        assert!(e.to_string().contains("optimizer"));
        let e: WorkflowError = FleetError::InvalidConfig("no stages").into();
        assert!(e.to_string().contains("fleet simulator"));
        assert!(e.source().is_some());
        let e: WorkflowError = ServeError::Overloaded {
            ordinal: 3,
            queue_depth: 4,
            capacity: 4,
        }
        .into();
        assert!(e.to_string().contains("serving"));
        assert!(e.source().is_some());
        let e: WorkflowError = LifecycleError::Config {
            message: "requests must be positive".into(),
        }
        .into();
        assert!(e.to_string().contains("lifecycle"));
        assert!(e.source().is_some());
        let e: WorkflowError = SimtestError::Config("fleet_jobs must be positive").into();
        assert!(e.to_string().contains("simtest harness"));
        assert!(e.source().is_some());
        let e: WorkflowError = RecipeError::NoCandidates.into();
        assert!(e.to_string().contains("recipe subsystem"));
        assert!(e.source().is_some());
        let e: WorkflowError = IngestError::UnknownFormat { format: "edif".into() }.into();
        assert!(e.to_string().contains("ingestion"));
        assert!(e.source().is_some());
        let e = WorkflowError::EmptyDataset { stage: "routing" };
        assert!(e.to_string().contains("routing"));
        assert!(e.source().is_none());
        let e: WorkflowError = GcnError::EmptyTrainingSet.into();
        assert!(e.to_string().contains("model training"));
        assert!(e.source().is_some());
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<WorkflowError>();
    }
}
