//! Problem 2: per-stage runtime predictors.
//!
//! "This model is trained for each application separately" — one GCN per
//! stage, trained on that stage's corpus, each predicting the four
//! runtimes (1/2/4/8 vCPUs) with a single combined MSE loss.

use crate::dataset::StageDatasets;
use crate::optimize::StageRuntimes;
use crate::WorkflowError;
use eda_cloud_flow::StageKind;
use eda_cloud_gcn::{DatasetSplit, GraphSample, TrainOutcome, Trainer};

/// The four trained per-stage models plus their evaluation reports.
#[derive(Debug, Clone)]
pub struct StagePredictors {
    /// Synthesis model (consumes AIG graphs).
    pub synthesis: TrainOutcome,
    /// Placement model (consumes netlist graphs).
    pub placement: TrainOutcome,
    /// Routing model.
    pub routing: TrainOutcome,
    /// STA model.
    pub sta: TrainOutcome,
}

impl StagePredictors {
    /// Train all four models with the same recipe, splitting each corpus
    /// 80/20 by design family (unseen designs in the test set).
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::EmptyDataset`] if a stage corpus is
    /// empty, and [`WorkflowError::Train`] if the training loop itself
    /// fails (degenerate architecture, diverged loss).
    pub fn train(datasets: &StageDatasets, trainer: &Trainer) -> Result<Self, WorkflowError> {
        let fit =
            |samples: &[GraphSample], stage: &'static str| -> Result<TrainOutcome, WorkflowError> {
                if samples.is_empty() {
                    return Err(WorkflowError::EmptyDataset { stage });
                }
                let split = DatasetSplit::by_design(samples, 0.2, trainer.seed);
                Ok(trainer.try_fit(samples, &split)?)
            };
        Ok(Self {
            synthesis: fit(&datasets.synthesis, "synthesis")?,
            placement: fit(&datasets.placement, "placement")?,
            routing: fit(&datasets.routing, "routing")?,
            sta: fit(&datasets.sta, "sta")?,
        })
    }

    /// The outcome for one stage.
    #[must_use]
    pub fn stage(&self, kind: StageKind) -> &TrainOutcome {
        match kind {
            StageKind::Synthesis => &self.synthesis,
            StageKind::Placement => &self.placement,
            StageKind::Routing => &self.routing,
            StageKind::Sta => &self.sta,
        }
    }

    /// Predict all four stages' runtimes for one design, given its AIG
    /// sample (for synthesis) and netlist sample (for the rest); the
    /// targets stored in the samples are ignored.
    #[must_use]
    pub fn predict_design(
        &self,
        aig_sample: &GraphSample,
        netlist_sample: &GraphSample,
    ) -> Vec<StageRuntimes> {
        StageKind::ALL
            .iter()
            .map(|&kind| {
                let sample = if kind == StageKind::Synthesis {
                    aig_sample
                } else {
                    netlist_sample
                };
                StageRuntimes {
                    kind,
                    runtimes_secs: self.stage(kind).model.predict_secs(sample),
                }
            })
            .collect()
    }

    /// Mean prediction error across the four stage models (the paper
    /// reports 13% for netlist stages, 5% for synthesis-on-AIG).
    #[must_use]
    pub fn mean_error(&self) -> f64 {
        let reports = [
            &self.synthesis.report,
            &self.placement.report,
            &self.routing.report,
            &self.sta.report,
        ];
        reports.iter().map(|r| r.mean_error).sum::<f64>() / reports.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetBuilder, DatasetConfig};
    use crate::Workflow;

    #[test]
    fn trains_and_predicts_all_stages() {
        let wf = Workflow::with_defaults();
        let data = DatasetBuilder::new(&wf)
            .build(&DatasetConfig::smoke())
            .expect("corpus");
        let mut trainer = Trainer::fast();
        trainer.epochs = 25; // keep the unit test quick
        let predictors = StagePredictors::train(&data, &trainer).expect("training");
        // Predict on a corpus sample (structure only; targets unused).
        let runtimes = predictors.predict_design(&data.synthesis[0], &data.routing[0]);
        assert_eq!(runtimes.len(), 4);
        for sr in &runtimes {
            assert!(sr.runtimes_secs.iter().all(|&t| t > 0.0));
        }
        assert!(predictors.mean_error().is_finite());
        assert!(predictors.stage(StageKind::Routing).report.accuracy() <= 1.0);
    }

    #[test]
    fn empty_dataset_rejected() {
        let datasets = StageDatasets::default();
        assert!(matches!(
            StagePredictors::train(&datasets, &Trainer::fast()).unwrap_err(),
            WorkflowError::EmptyDataset { stage: "synthesis" }
        ));
    }
}
