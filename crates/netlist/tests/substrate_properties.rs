//! Property-based tests over the design substrate.

use eda_cloud_netlist::{generators, DesignGraph, FEATURE_DIM};
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = (&'static str, u32)> {
    (
        proptest::sample::select(generators::FAMILY_NAMES.to_vec()),
        2u32..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated family builds a valid, non-trivial AIG.
    #[test]
    fn families_build_valid_aigs((name, size) in family_strategy()) {
        let aig = generators::build_family(name, size).expect("known family");
        aig.check().expect("valid AIG");
        prop_assert!(aig.and_count() > 0);
        prop_assert!(aig.input_count() > 0);
        prop_assert!(aig.output_count() > 0);
        prop_assert!(aig.depth() > 0);
    }

    /// AIG-to-graph conversion invariants: node/edge counts, transposed
    /// CSR views, and feature sanity.
    #[test]
    fn aig_graph_invariants((name, size) in family_strategy()) {
        let aig = generators::build_family(name, size).expect("known family");
        let g = DesignGraph::from_aig(&aig);
        prop_assert_eq!(g.node_count(), aig.node_count() + aig.output_count());
        prop_assert_eq!(g.edge_count(), 2 * aig.and_count() + aig.output_count());
        // Degree sums equal edge count on both CSR views.
        let out_deg: usize = (0..g.node_count()).map(|v| g.out_neighbors(v).len()).sum();
        let in_deg: usize = (0..g.node_count()).map(|v| g.in_neighbors(v).len()).sum();
        prop_assert_eq!(out_deg, g.edge_count());
        prop_assert_eq!(in_deg, g.edge_count());
        // Features: right width, finite, bias set.
        for v in 0..g.node_count() {
            let f = g.feature_row(v);
            prop_assert_eq!(f.len(), FEATURE_DIM);
            prop_assert!(f.iter().all(|x| x.is_finite()));
            prop_assert_eq!(f[FEATURE_DIM - 1], 1.0);
            // Levels are normalized.
            prop_assert!(f[6] >= 0.0 && f[6] <= 1.0 + 1e-12);
        }
    }

    /// Simulation agreement after a structural merge: the merged design
    /// evaluates each part independently.
    #[test]
    fn merge_is_functionally_parallel(
        (name_a, size_a) in family_strategy(),
        (name_b, size_b) in family_strategy(),
        seed in 0u64..1000,
    ) {
        let a = generators::build_family(name_a, size_a).expect("family");
        let b = generators::build_family(name_b, size_b).expect("family");
        let merged = generators::merge("m", &[a.clone(), b.clone()]);
        let rand_bit = |i: usize| (seed.wrapping_mul(i as u64 + 7) >> 11) & 1 == 1;
        let in_a: Vec<bool> = (0..a.input_count()).map(rand_bit).collect();
        let in_b: Vec<bool> = (a.input_count()..a.input_count() + b.input_count())
            .map(rand_bit)
            .collect();
        let mut merged_in = in_a.clone();
        merged_in.extend(&in_b);
        let out = merged.simulate(&merged_in).expect("sim");
        let (oa, ob) = out.split_at(a.output_count());
        prop_assert_eq!(oa.to_vec(), a.simulate(&in_a).expect("sim a"));
        prop_assert_eq!(ob.to_vec(), b.simulate(&in_b).expect("sim b"));
    }

    /// Depth never exceeds AND count, and levels are consistent with
    /// fanin structure.
    #[test]
    fn levels_are_consistent((name, size) in family_strategy()) {
        let aig = generators::build_family(name, size).expect("family");
        let levels = aig.levels();
        prop_assert!(aig.depth() as usize <= aig.and_count());
        for (i, node) in aig.nodes().iter().enumerate() {
            if let eda_cloud_netlist::AigNode::And(a, b) = node {
                let la = levels[a.node() as usize];
                let lb = levels[b.node() as usize];
                prop_assert_eq!(levels[i], 1 + la.max(lb));
            } else {
                prop_assert_eq!(levels[i], 0);
            }
        }
    }
}
