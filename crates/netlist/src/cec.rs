//! Combinational equivalence checking (CEC) via a built-in SAT solver.
//!
//! Random simulation (see [`crate::Aig::simulate_words`]) catches most
//! synthesis bugs but is not sound. This module provides the classical
//! sound check: build a *miter* of two AIGs (XOR of each output pair,
//! OR-reduced), Tseitin-encode it into CNF, and decide satisfiability
//! with a DPLL solver (unit propagation, activity-free decision
//! heuristic with phase saving, conflict-driven backtracking by simple
//! chronological backjumping). UNSAT means the designs are equivalent;
//! SAT yields a concrete counterexample input vector.
//!
//! The solver is deliberately small — no clause learning — which is
//! adequate for the miter sizes this workspace produces (thousands of
//! gates); the synthesizer's pipeline keeps random simulation as a fast
//! pre-filter.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_netlist::{cec, generators};
//!
//! let a = generators::adder(4);
//! let b = generators::adder(4);
//! assert!(matches!(
//!     cec::check_equivalence(&a, &b, 200_000).expect("within budget"),
//!     cec::CecResult::Equivalent
//! ));
//! ```

use crate::aig::{Aig, AigNode, Lit};
use crate::NetlistError;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecResult {
    /// The two designs implement the same function.
    Equivalent,
    /// A distinguishing input vector was found.
    Inequivalent {
        /// Input assignment (per primary input) on which outputs differ.
        counterexample: Vec<bool>,
    },
}

/// A CNF literal: variable index shifted left, LSB = negated.
type CnfLit = u32;

fn pos(var: u32) -> CnfLit {
    var << 1
}

fn neg(var: u32) -> CnfLit {
    (var << 1) | 1
}

fn lit_var(l: CnfLit) -> u32 {
    l >> 1
}

fn lit_negated(l: CnfLit) -> bool {
    l & 1 == 1
}

/// CNF builder with Tseitin encodings for AND and XOR.
#[derive(Debug, Default)]
struct Cnf {
    clauses: Vec<Vec<CnfLit>>,
    vars: u32,
}

impl Cnf {
    fn new_var(&mut self) -> u32 {
        self.vars += 1;
        self.vars - 1
    }

    fn clause(&mut self, lits: &[CnfLit]) {
        self.clauses.push(lits.to_vec());
    }

    /// `out <-> a AND b`.
    fn encode_and(&mut self, out: u32, a: CnfLit, b: CnfLit) {
        // out -> a ; out -> b ; a & b -> out
        self.clause(&[neg(out), a]);
        self.clause(&[neg(out), b]);
        self.clause(&[pos(out), a ^ 1, b ^ 1]);
    }

    /// `out <-> a XOR b`.
    fn encode_xor(&mut self, out: u32, a: CnfLit, b: CnfLit) {
        self.clause(&[neg(out), a, b]);
        self.clause(&[neg(out), a ^ 1, b ^ 1]);
        self.clause(&[pos(out), a, b ^ 1]);
        self.clause(&[pos(out), a ^ 1, b]);
    }
}

/// Check two AIGs for functional equivalence.
///
/// `budget_propagations` bounds solver effort (unit propagations); the
/// check aborts with an error when exceeded, so callers can fall back to
/// random simulation on pathological instances.
///
/// # Errors
///
/// Returns [`NetlistError::InputArity`] if the designs' interface
/// widths differ, and [`NetlistError::Parse`] (with a budget message)
/// when the propagation budget is exhausted.
pub fn check_equivalence(
    a: &Aig,
    b: &Aig,
    budget_propagations: u64,
) -> Result<CecResult, NetlistError> {
    if a.input_count() != b.input_count() || a.output_count() != b.output_count() {
        return Err(NetlistError::InputArity {
            got: b.input_count(),
            expected: a.input_count(),
        });
    }
    let n_inputs = a.input_count();
    let mut cnf = Cnf::default();

    // Shared input variables.
    let input_vars: Vec<u32> = (0..n_inputs).map(|_| cnf.new_var()).collect();

    // A constant-false variable (var fixed to 0 by a unit clause).
    let const_var = cnf.new_var();
    cnf.clause(&[neg(const_var)]);

    // Encode each AIG over the shared inputs.
    let encode = |aig: &Aig, cnf: &mut Cnf| -> Vec<CnfLit> {
        let mut node_lit: Vec<CnfLit> = Vec::with_capacity(aig.node_count());
        for node in aig.nodes() {
            let l = match node {
                AigNode::Const0 => pos(const_var),
                AigNode::Pi(k) => pos(input_vars[*k as usize]),
                AigNode::And(x, y) => {
                    let lx = node_lit[x.node() as usize] ^ u32::from(x.is_complemented());
                    let ly = node_lit[y.node() as usize] ^ u32::from(y.is_complemented());
                    let v = cnf.new_var();
                    cnf.encode_and(v, lx, ly);
                    pos(v)
                }
            };
            node_lit.push(l);
        }
        aig.outputs()
            .iter()
            .map(|(_, l)| node_lit[l.node() as usize] ^ u32::from(l.is_complemented()))
            .collect()
    };
    let outs_a = encode(a, &mut cnf);
    let outs_b = encode(b, &mut cnf);

    // Miter: xor each output pair, OR them all, assert the OR true.
    let mut xor_lits = Vec::with_capacity(outs_a.len());
    for (&la, &lb) in outs_a.iter().zip(&outs_b) {
        let v = cnf.new_var();
        cnf.encode_xor(v, la, lb);
        xor_lits.push(pos(v));
    }
    // OR(xors) must hold: a single clause.
    cnf.clause(&xor_lits.clone());

    let mut solver = Dpll::new(cnf, budget_propagations);
    match solver.solve() {
        SolveOutcome::Unsat => Ok(CecResult::Equivalent),
        SolveOutcome::Sat(model) => {
            let counterexample = input_vars
                .iter()
                .map(|&v| model[v as usize] == Some(true))
                .collect();
            Ok(CecResult::Inequivalent { counterexample })
        }
        SolveOutcome::BudgetExhausted => Err(NetlistError::Parse {
            line: 0,
            col: 0,
            message: "SAT budget exhausted during equivalence check".to_owned(),
        }),
    }
}

#[derive(Debug)]
enum SolveOutcome {
    Sat(Vec<Option<bool>>),
    Unsat,
    BudgetExhausted,
}

/// Minimal DPLL: two-watched-literal-free unit propagation over clause
/// lists, chronological backtracking, first-unassigned decision with
/// saved phases.
#[derive(Debug)]
struct Dpll {
    clauses: Vec<Vec<CnfLit>>,
    assignment: Vec<Option<bool>>,
    phase: Vec<bool>,
    /// Assignment trail: (var, is_decision).
    trail: Vec<(u32, bool)>,
    budget: u64,
}

impl Dpll {
    fn new(cnf: Cnf, budget: u64) -> Self {
        let n = cnf.vars as usize;
        Self {
            clauses: cnf.clauses,
            assignment: vec![None; n],
            phase: vec![false; n],
            trail: Vec::with_capacity(n),
            budget,
        }
    }

    fn lit_value(&self, l: CnfLit) -> Option<bool> {
        self.assignment[lit_var(l) as usize].map(|v| v ^ lit_negated(l))
    }

    fn assign(&mut self, var: u32, value: bool, decision: bool) {
        self.assignment[var as usize] = Some(value);
        self.phase[var as usize] = value;
        self.trail.push((var, decision));
    }

    /// Propagate all unit clauses; returns false on conflict.
    fn propagate(&mut self) -> Option<bool> {
        loop {
            if self.budget == 0 {
                return None;
            }
            self.budget -= 1;
            let mut changed = false;
            for ci in 0..self.clauses.len() {
                let mut unassigned: Option<CnfLit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in &self.clauses[ci] {
                    match self.lit_value(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return Some(false), // conflict
                    1 => {
                        let l = unassigned.expect("counted one unassigned");
                        self.assign(lit_var(l), !lit_negated(l), false);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return Some(true);
            }
        }
    }

    /// Undo the trail back to (and including) the last decision; returns
    /// that decision variable, or `None` at level zero.
    fn backtrack(&mut self) -> Option<(u32, bool)> {
        while let Some((var, decision)) = self.trail.pop() {
            let value = self.assignment[var as usize].take().expect("assigned");
            if decision {
                return Some((var, value));
            }
        }
        None
    }

    fn solve(&mut self) -> SolveOutcome {
        // Flipped[var] marks decisions whose second phase was tried.
        let mut flipped: Vec<bool> = vec![false; self.assignment.len()];
        loop {
            match self.propagate() {
                None => return SolveOutcome::BudgetExhausted,
                Some(true) => {
                    // Pick the next unassigned variable.
                    match (0..self.assignment.len())
                        .find(|&v| self.assignment[v].is_none())
                    {
                        None => return SolveOutcome::Sat(self.assignment.clone()),
                        Some(v) => {
                            flipped[v] = false;
                            let phase = self.phase[v];
                            self.assign(v as u32, phase, true);
                        }
                    }
                }
                Some(false) => {
                    // Conflict: backtrack to the most recent decision not
                    // yet flipped.
                    loop {
                        match self.backtrack() {
                            None => return SolveOutcome::Unsat,
                            Some((var, value)) => {
                                if flipped[var as usize] {
                                    continue; // both phases failed here
                                }
                                flipped[var as usize] = true;
                                self.assign(var, !value, true);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn identical_designs_are_equivalent() {
        let a = generators::parity(6);
        let b = generators::parity(6);
        assert_eq!(
            check_equivalence(&a, &b, 500_000).expect("budget"),
            CecResult::Equivalent
        );
    }

    #[test]
    fn structurally_different_same_function() {
        // adder built twice is structurally identical, so compare an
        // adder against itself merged through different construction
        // order: use ctrl with same seed = identical; instead compare
        // xor chains: parity(4) vs gray-coded equivalent.
        let mut x = Aig::new("x1");
        let ins: Vec<Lit> = (0..4).map(|_| x.add_pi()).collect();
        let t1 = x.xor2(ins[0], ins[1]);
        let t2 = x.xor2(ins[2], ins[3]);
        let y = x.xor2(t1, t2);
        x.add_po("p", y);

        let mut z = Aig::new("x2");
        let ins2: Vec<Lit> = (0..4).map(|_| z.add_pi()).collect();
        let mut acc = ins2[0];
        for &i in &ins2[1..] {
            acc = z.xor2(acc, i);
        }
        z.add_po("p", acc);

        assert_eq!(
            check_equivalence(&x, &z, 500_000).expect("budget"),
            CecResult::Equivalent
        );
    }

    #[test]
    fn inequivalence_produces_counterexample() {
        let mut a = Aig::new("and");
        let x = a.add_pi();
        let y = a.add_pi();
        let o = a.and2(x, y);
        a.add_po("o", o);

        let mut b = Aig::new("or");
        let x2 = b.add_pi();
        let y2 = b.add_pi();
        let o2 = b.or2(x2, y2);
        b.add_po("o", o2);

        match check_equivalence(&a, &b, 500_000).expect("budget") {
            CecResult::Inequivalent { counterexample } => {
                // Verify the counterexample actually distinguishes them.
                let oa = a.simulate(&counterexample).expect("sim");
                let ob = b.simulate(&counterexample).expect("sim");
                assert_ne!(oa, ob, "counterexample must distinguish");
            }
            CecResult::Equivalent => panic!("AND and OR are not equivalent"),
        }
    }

    #[test]
    fn single_output_bit_flip_detected() {
        let a = generators::adder(3);
        // Copy with one output complemented.
        let mut b = Aig::new("mutated");
        let mut map: Vec<Lit> = Vec::new();
        for node in a.nodes() {
            let l = match node {
                AigNode::Const0 => Lit::FALSE,
                AigNode::Pi(_) => b.add_pi(),
                AigNode::And(x, y) => {
                    let lx = map[x.node() as usize].complement_if(x.is_complemented());
                    let ly = map[y.node() as usize].complement_if(y.is_complemented());
                    b.and2(lx, ly)
                }
            };
            map.push(l);
        }
        for (i, (name, l)) in a.outputs().iter().enumerate() {
            let lit = map[l.node() as usize].complement_if(l.is_complemented());
            b.add_po(name.clone(), lit.complement_if(i == 1)); // flip bit 1
        }
        match check_equivalence(&a, &b, 2_000_000).expect("budget") {
            CecResult::Inequivalent { counterexample } => {
                assert_eq!(counterexample.len(), a.input_count());
            }
            CecResult::Equivalent => panic!("mutated design must differ"),
        }
    }

    #[test]
    fn mismatched_interfaces_rejected() {
        let a = generators::parity(4);
        let b = generators::parity(5);
        assert!(check_equivalence(&a, &b, 1_000).is_err());
    }

    #[test]
    fn tiny_budget_exhausts() {
        let a = generators::multiplier(5);
        let b = generators::multiplier(5);
        let err = check_equivalence(&a, &b, 1).expect_err("budget too small");
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn adders_of_equal_width_equivalent_via_sat() {
        let a = generators::adder(4);
        let b = generators::adder(4);
        assert_eq!(
            check_equivalence(&a, &b, 2_000_000).expect("budget"),
            CecResult::Equivalent
        );
    }
}

/// Convert a gate-level netlist back into an AIG (combinational view:
/// DFFs pass their data input through, matching
/// [`crate::Netlist::simulate`]). Enables SAT-based verification of a
/// mapped netlist against its source AIG.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic designs and
/// [`NetlistError::Undriven`] for nets without a driver.
pub fn netlist_to_aig(netlist: &crate::Netlist) -> Result<Aig, NetlistError> {
    use eda_cloud_tech::CellKind;

    for net in netlist.nets() {
        if net.driver.is_none() {
            return Err(NetlistError::Undriven(net.name.clone()));
        }
    }
    let order = netlist.topological_cells()?;
    let mut aig = Aig::new(netlist.name());
    let mut net_lit: Vec<Option<Lit>> = vec![None; netlist.net_count()];
    for &net in netlist.primary_inputs() {
        net_lit[net as usize] = Some(aig.add_pi());
    }
    // DFF outputs are sources in the combinational view but still carry
    // their data input's function per Netlist::simulate; process cells
    // in topological order (sequential cells first have in-degree 0 in
    // that order only for their *consumers*, so resolve DFFs by passing
    // the input literal through when available, otherwise treating the
    // output as a fresh PI is NOT done — simulate() evaluates them
    // in-order too, so the data literal is always resolved first for
    // acyclic-through-register designs handled here).
    for &cid in &order {
        let cell = &netlist.cells()[cid as usize];
        let arity = cell.kind.input_count();
        let mut ins = Vec::with_capacity(arity);
        for &inet in cell.inputs.iter().take(arity) {
            let lit = net_lit[inet as usize].unwrap_or(Lit::FALSE);
            ins.push(lit);
        }
        let out = match cell.kind {
            CellKind::Tie0 => Lit::FALSE,
            CellKind::Tie1 => Lit::TRUE,
            CellKind::Inv => !ins[0],
            CellKind::Buf | CellKind::Dff => ins[0],
            CellKind::And2 => aig.and2(ins[0], ins[1]),
            CellKind::Nand2 => !aig.and2(ins[0], ins[1]),
            CellKind::Nand3 => {
                let t = aig.and2(ins[0], ins[1]);
                !aig.and2(t, ins[2])
            }
            CellKind::Nor2 => !aig.or2(ins[0], ins[1]),
            CellKind::Or2 => aig.or2(ins[0], ins[1]),
            CellKind::Xor2 => aig.xor2(ins[0], ins[1]),
            CellKind::Xnor2 => aig.xnor2(ins[0], ins[1]),
            CellKind::Aoi21 => {
                let t = aig.and2(ins[0], ins[1]);
                !aig.or2(t, ins[2])
            }
            CellKind::Oai21 => {
                let t = aig.or2(ins[0], ins[1]);
                !aig.and2(t, ins[2])
            }
            CellKind::Mux2 => aig.mux2(ins[2], ins[1], ins[0]),
            CellKind::Maj3 => aig.maj3(ins[0], ins[1], ins[2]),
        };
        net_lit[cell.output as usize] = Some(out);
    }
    for (name, net) in netlist.primary_outputs() {
        let lit = net_lit[*net as usize].ok_or(NetlistError::Undriven(name.clone()))?;
        aig.add_po(name.clone(), lit);
    }
    Ok(aig)
}

#[cfg(test)]
mod conversion_tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_netlist_matches_simulation() {
        // Build a small netlist by hand and convert.
        use eda_cloud_tech::CellKind;
        let mut nl = crate::Netlist::new("conv", "synth14");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_cell("u1", "XOR2_X1", CellKind::Xor2, vec![a, b], n1);
        nl.add_cell("u2", "MUX2_X1", CellKind::Mux2, vec![n1, a, c], n2);
        nl.add_output("y", n2);
        let aig = netlist_to_aig(&nl).expect("converts");
        for bits in 0u8..8 {
            let ins: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                aig.simulate(&ins).expect("aig sim"),
                nl.simulate(&ins).expect("netlist sim"),
                "inputs {ins:?}"
            );
        }
    }

    #[test]
    fn full_sat_verification_of_synthesis_pipeline() {
        // The whole loop: AIG -> (external synthesis happens in the flow
        // crate; here emulate with identity) -> netlist -> AIG -> SAT.
        // Convert a generated AIG's own structure through a netlist-like
        // identity is covered in flow tests; here check that conversion
        // of a mapped-ish netlist stays equivalent under CEC using the
        // hand netlist above vs its AIG.
        use eda_cloud_tech::CellKind;
        let mut nl = crate::Netlist::new("conv2", "synth14");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_net("n1");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], n1);
        nl.add_output("y", n1);
        let converted = netlist_to_aig(&nl).expect("converts");

        let mut golden = Aig::new("golden");
        let x = golden.add_pi();
        let y = golden.add_pi();
        let o = golden.and2(x, y);
        golden.add_po("y", !o);
        assert_eq!(
            check_equivalence(&golden, &converted, 100_000).expect("budget"),
            CecResult::Equivalent
        );
    }

    #[test]
    fn undriven_net_rejected() {
        let mut nl = crate::Netlist::new("bad", "synth14");
        let _a = nl.add_input("a");
        let dangling = nl.add_net("dangling");
        nl.add_output("y", dangling);
        assert!(matches!(
            netlist_to_aig(&nl),
            Err(NetlistError::Undriven(_))
        ));
    }

    #[test]
    fn generated_family_aigs_self_equivalent_after_merge() {
        let a = generators::max(4);
        let same = generators::max(4);
        assert_eq!(
            check_equivalence(&a, &same, 1_000_000).expect("budget"),
            CecResult::Equivalent
        );
    }
}
