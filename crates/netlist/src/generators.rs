//! Synthetic benchmark generators.
//!
//! The paper's corpus — 18 designs from the EPFL combinational suite and
//! OpenCores plus OpenPiton blocks for the routing-scaling study — is tied
//! to a proprietary flow. This module rebuilds an equivalent corpus from
//! scratch: 18 parameterized combinational design families covering the
//! same structural variety (arithmetic, control, routing fabric, random
//! logic), plus named composite designs (`dynamic_node`, `aes`, ...,
//! `sparc_core`) in increasing size order for the Figure 3 experiment.
//!
//! All generators are deterministic; random families take an explicit
//! seed and use a ChaCha RNG so corpora are reproducible across runs and
//! platforms.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_netlist::generators;
//!
//! let aig = generators::build_family("multiplier", 8).expect("known family");
//! assert_eq!(aig.input_count(), 16);
//! assert_eq!(aig.output_count(), 16);
//! ```

use crate::aig::{Aig, Lit};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Names of the 18 design families, in a stable order.
pub const FAMILY_NAMES: [&str; 18] = [
    "adder",
    "barrel",
    "multiplier",
    "square",
    "max",
    "comparator",
    "parity",
    "decoder",
    "priority",
    "voter",
    "arbiter",
    "ctrl",
    "crossbar",
    "int2float",
    "alu",
    "sbox",
    "gray2bin",
    "hamming",
];

/// Build a family by name with a single size parameter.
///
/// Returns `None` for unknown names. The meaning of `size` is
/// family-specific (usually a word width or port count); every family
/// accepts any `size >= 2`.
#[must_use]
pub fn build_family(name: &str, size: u32) -> Option<Aig> {
    let size = size.max(2);
    let aig = match name {
        "adder" => adder(size),
        "barrel" => barrel(size.next_power_of_two()),
        "multiplier" => multiplier(size),
        "square" => square(size),
        "max" => max(size),
        "comparator" => comparator(size),
        "parity" => parity(size * 8),
        "decoder" => decoder(size.min(10)),
        "priority" => priority(size * 4),
        "voter" => voter(size * 4 + 1),
        "arbiter" => arbiter(size * 4),
        "ctrl" => ctrl(0xC0FFEE ^ u64::from(size), size * 40),
        "crossbar" => crossbar(size.next_power_of_two().min(16), size),
        "int2float" => int2float(size.next_power_of_two()),
        "alu" => alu(size),
        "sbox" => sbox(0x5B0C ^ u64::from(size), size.min(16)),
        "gray2bin" => gray2bin(size * 4),
        "hamming" => hamming(size * 8),
        _ => return None,
    };
    Some(aig)
}

/// Ripple-carry adder of two `w`-bit operands (outputs `w` sum bits + carry).
#[must_use]
pub fn adder(w: u32) -> Aig {
    let mut aig = Aig::new(format!("adder{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let b: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let (sum, carry) = add_vectors(&mut aig, &a, &b, Lit::FALSE);
    for (i, s) in sum.iter().enumerate() {
        aig.add_po(format!("s{i}"), *s);
    }
    aig.add_po("cout", carry);
    aig
}

/// Logarithmic barrel shifter: `w` data bits shifted left by a
/// `log2(w)`-bit amount (`w` must be a power of two).
///
/// # Panics
///
/// Panics if `w` is not a power of two.
#[must_use]
pub fn barrel(w: u32) -> Aig {
    assert!(w.is_power_of_two(), "barrel width must be a power of two");
    let stages = w.trailing_zeros();
    let mut aig = Aig::new(format!("barrel{w}"));
    let mut data: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let shift: Vec<Lit> = (0..stages).map(|_| aig.add_pi()).collect();
    for (s, &sel) in shift.iter().enumerate() {
        let amount = 1usize << s;
        let mut next = Vec::with_capacity(w as usize);
        for i in 0..w as usize {
            let shifted = if i >= amount {
                data[i - amount]
            } else {
                Lit::FALSE
            };
            next.push(aig.mux2(sel, shifted, data[i]));
        }
        data = next;
    }
    for (i, d) in data.iter().enumerate() {
        aig.add_po(format!("y{i}"), *d);
    }
    aig
}

/// Array multiplier of two `w`-bit operands (outputs `2w` bits).
#[must_use]
pub fn multiplier(w: u32) -> Aig {
    let mut aig = Aig::new(format!("multiplier{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let b: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let product = multiply_vectors(&mut aig, &a, &b);
    for (i, p) in product.iter().enumerate() {
        aig.add_po(format!("p{i}"), *p);
    }
    aig
}

/// Squarer: `w`-bit input multiplied by itself.
#[must_use]
pub fn square(w: u32) -> Aig {
    let mut aig = Aig::new(format!("square{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let product = multiply_vectors(&mut aig, &a.clone(), &a);
    for (i, p) in product.iter().enumerate() {
        aig.add_po(format!("p{i}"), *p);
    }
    aig
}

/// Maximum of two `w`-bit unsigned numbers.
#[must_use]
pub fn max(w: u32) -> Aig {
    let mut aig = Aig::new(format!("max{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let b: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let a_gt_b = greater_than(&mut aig, &a, &b);
    for i in 0..w as usize {
        let y = aig.mux2(a_gt_b, a[i], b[i]);
        aig.add_po(format!("y{i}"), y);
    }
    aig
}

/// Comparator producing `eq`, `lt`, `gt` for two `w`-bit numbers.
#[must_use]
pub fn comparator(w: u32) -> Aig {
    let mut aig = Aig::new(format!("comparator{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let b: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let gt = greater_than(&mut aig, &a, &b);
    let lt = greater_than(&mut aig, &b, &a);
    let eqs: Vec<Lit> = (0..w as usize)
        .map(|i| aig.xnor2(a[i], b[i]))
        .collect();
    let eq = aig.and_many(eqs);
    aig.add_po("eq", eq);
    aig.add_po("lt", lt);
    aig.add_po("gt", gt);
    aig
}

/// Parity (XOR reduction) over `w` inputs.
#[must_use]
pub fn parity(w: u32) -> Aig {
    let mut aig = Aig::new(format!("parity{w}"));
    let xs: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let p = aig.xor_many(xs);
    aig.add_po("p", p);
    aig
}

/// `w`-to-`2^w` one-hot decoder.
#[must_use]
pub fn decoder(w: u32) -> Aig {
    let mut aig = Aig::new(format!("decoder{w}"));
    let sel: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    for code in 0..(1u32 << w) {
        let terms: Vec<Lit> = sel
            .iter()
            .enumerate()
            .map(|(bit, &s)| s.complement_if((code >> bit) & 1 == 0))
            .collect();
        let y = aig.and_many(terms);
        aig.add_po(format!("y{code}"), y);
    }
    aig
}

/// Priority encoder over `w` request lines: binary index of the lowest
/// set bit, plus a `valid` output.
#[must_use]
pub fn priority(w: u32) -> Aig {
    let mut aig = Aig::new(format!("priority{w}"));
    let req: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    // none_before[i] = !req[0] & ... & !req[i-1]
    let mut none_before = Lit::TRUE;
    let mut selected = Vec::with_capacity(w as usize);
    for &r in &req {
        selected.push(aig.and2(r, none_before));
        none_before = aig.and2(none_before, !r);
    }
    let out_bits = 32 - (w - 1).leading_zeros();
    for bit in 0..out_bits {
        let terms: Vec<Lit> = (0..w as usize)
            .filter(|i| (i >> bit) & 1 == 1)
            .map(|i| selected[i])
            .collect();
        let y = aig.or_many(terms);
        aig.add_po(format!("idx{bit}"), y);
    }
    let valid = aig.or_many(selected);
    aig.add_po("valid", valid);
    aig
}

/// Exact majority voter over `n` inputs (true when more than half are set).
#[must_use]
pub fn voter(n: u32) -> Aig {
    let mut aig = Aig::new(format!("voter{n}"));
    let xs: Vec<Lit> = (0..n).map(|_| aig.add_pi()).collect();
    let count = popcount(&mut aig, &xs);
    let threshold = n / 2; // strict majority: count > n/2
    let y = greater_than_const(&mut aig, &count, u64::from(threshold));
    aig.add_po("maj", y);
    aig
}

/// Fixed-priority arbiter with a per-line mask input: grant the lowest
/// unmasked requester.
#[must_use]
pub fn arbiter(n: u32) -> Aig {
    let mut aig = Aig::new(format!("arbiter{n}"));
    let req: Vec<Lit> = (0..n).map(|_| aig.add_pi()).collect();
    let mask: Vec<Lit> = (0..n).map(|_| aig.add_pi()).collect();
    let eff: Vec<Lit> = (0..n as usize)
        .map(|i| aig.and2(req[i], !mask[i]))
        .collect();
    let mut none_before = Lit::TRUE;
    for (i, &e) in eff.iter().enumerate() {
        let g = aig.and2(e, none_before);
        aig.add_po(format!("grant{i}"), g);
        none_before = aig.and2(none_before, !e);
    }
    let any = aig.or_many(eff);
    aig.add_po("busy", any);
    aig
}

/// Random control-logic DAG with `gates` random two/three-input
/// operations over 32 inputs. Deterministic for a given `seed`.
#[must_use]
pub fn ctrl(seed: u64, gates: u32) -> Aig {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut aig = Aig::new(format!("ctrl{gates}"));
    let mut pool: Vec<Lit> = (0..32).map(|_| aig.add_pi()).collect();
    for _ in 0..gates {
        let pick = |rng: &mut ChaCha8Rng, pool: &[Lit]| {
            // Bias towards recent signals to get realistic depth.
            let n = pool.len();
            let idx = if rng.gen_bool(0.5) && n > 8 {
                n - 1 - rng.gen_range(0..8)
            } else {
                rng.gen_range(0..n)
            };
            pool[idx].complement_if(rng.gen_bool(0.3))
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let out = match rng.gen_range(0..5u8) {
            0 => aig.and2(a, b),
            1 => aig.or2(a, b),
            2 => aig.xor2(a, b),
            3 => {
                let c = pick(&mut rng, &pool);
                aig.mux2(a, b, c)
            }
            _ => {
                let c = pick(&mut rng, &pool);
                aig.maj3(a, b, c)
            }
        };
        pool.push(out);
    }
    let outputs = 16.min(pool.len());
    for (i, &l) in pool.iter().rev().take(outputs).enumerate() {
        aig.add_po(format!("o{i}"), l);
    }
    aig
}

/// `p`-port crossbar over `w`-bit data: each output port selects one of
/// `p` inputs by a binary select (`p` must be a power of two).
///
/// # Panics
///
/// Panics if `p` is not a power of two.
#[must_use]
pub fn crossbar(p: u32, w: u32) -> Aig {
    assert!(p.is_power_of_two(), "crossbar ports must be a power of two");
    let sel_bits = p.trailing_zeros().max(1);
    let mut aig = Aig::new(format!("crossbar{p}x{w}"));
    let data: Vec<Vec<Lit>> = (0..p)
        .map(|_| (0..w).map(|_| aig.add_pi()).collect())
        .collect();
    let sels: Vec<Vec<Lit>> = (0..p)
        .map(|_| (0..sel_bits).map(|_| aig.add_pi()).collect())
        .collect();
    for (port, sel) in sels.iter().enumerate() {
        for bit in 0..w as usize {
            // Mux tree over the p sources.
            let mut layer: Vec<Lit> = data.iter().map(|d| d[bit]).collect();
            for s in sel {
                let mut next = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 {
                        aig.mux2(*s, pair[1], pair[0])
                    } else {
                        pair[0]
                    });
                }
                layer = next;
            }
            aig.add_po(format!("out{port}_{bit}"), layer[0]);
        }
    }
    aig
}

/// Integer-to-float style normalizer: leading-one detector plus
/// normalizing left shift of a `w`-bit input (`w` a power of two).
///
/// # Panics
///
/// Panics if `w` is not a power of two.
#[must_use]
pub fn int2float(w: u32) -> Aig {
    assert!(w.is_power_of_two(), "int2float width must be a power of two");
    let stages = w.trailing_zeros();
    let mut aig = Aig::new(format!("int2float{w}"));
    let x: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    // Leading-one position from the MSB side: priority over reversed bits.
    let mut none_before = Lit::TRUE;
    let mut selected = vec![Lit::FALSE; w as usize];
    for i in (0..w as usize).rev() {
        selected[i] = aig.and2(x[i], none_before);
        none_before = aig.and2(none_before, !x[i]);
    }
    // Exponent bits = binary encoding of leading-one index.
    let mut exp = Vec::new();
    for bit in 0..stages {
        let terms: Vec<Lit> = (0..w as usize)
            .filter(|i| (i >> bit) & 1 == 1)
            .map(|i| selected[i])
            .collect();
        let e = aig.or_many(terms);
        exp.push(e);
    }
    // Normalize: barrel-shift left by (w-1 - index) == shift by !exp.
    let mut data = x;
    for (s, &e) in exp.iter().enumerate() {
        let amount = 1usize << s;
        let sel = !e; // shift when exponent bit is 0 (leading one is low)
        let mut next = Vec::with_capacity(w as usize);
        for i in 0..w as usize {
            let shifted = if i >= amount {
                data[i - amount]
            } else {
                Lit::FALSE
            };
            next.push(aig.mux2(sel, shifted, data[i]));
        }
        data = next;
    }
    for (i, e) in exp.iter().enumerate() {
        aig.add_po(format!("exp{i}"), *e);
    }
    for (i, m) in data.iter().enumerate().take(w as usize) {
        aig.add_po(format!("mant{i}"), *m);
    }
    aig
}

/// Small ALU over `w`-bit operands: ADD, SUB, AND, OR, XOR, PASS selected
/// by a 3-bit opcode.
#[must_use]
pub fn alu(w: u32) -> Aig {
    let mut aig = Aig::new(format!("alu{w}"));
    let a: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let b: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let op: Vec<Lit> = (0..3).map(|_| aig.add_pi()).collect();
    let (add, _) = add_vectors(&mut aig, &a, &b, Lit::FALSE);
    let not_b: Vec<Lit> = b.iter().map(|&l| !l).collect();
    let (sub, _) = add_vectors(&mut aig, &a, &not_b, Lit::TRUE);
    let and: Vec<Lit> = (0..w as usize).map(|i| aig.and2(a[i], b[i])).collect();
    let or: Vec<Lit> = (0..w as usize).map(|i| aig.or2(a[i], b[i])).collect();
    let xor: Vec<Lit> = (0..w as usize).map(|i| aig.xor2(a[i], b[i])).collect();
    for i in 0..w as usize {
        // op[1:0] select among {add,sub,and,or}; op[2] overrides to xor/pass.
        let lo = aig.mux2(op[0], sub[i], add[i]);
        let hi = aig.mux2(op[0], or[i], and[i]);
        let base = aig.mux2(op[1], hi, lo);
        let alt = aig.mux2(op[0], a[i], xor[i]);
        let y = aig.mux2(op[2], alt, base);
        aig.add_po(format!("y{i}"), y);
    }
    aig
}

/// Random substitution box: `w` inputs, `w` outputs of dense random logic
/// (crypto-like). Deterministic for a given `seed`.
#[must_use]
pub fn sbox(seed: u64, w: u32) -> Aig {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut aig = Aig::new(format!("sbox{w}"));
    let xs: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    for o in 0..w {
        // Random balanced expression tree of depth ~5 over the inputs.
        let mut layer: Vec<Lit> = (0..16)
            .map(|_| {
                let i = rng.gen_range(0..xs.len());
                xs[i].complement_if(rng.gen_bool(0.5))
            })
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                let y = if pair.len() == 2 {
                    match rng.gen_range(0..3u8) {
                        0 => aig.and2(pair[0], pair[1]),
                        1 => aig.or2(pair[0], pair[1]),
                        _ => aig.xor2(pair[0], pair[1]),
                    }
                } else {
                    pair[0]
                };
                next.push(y);
            }
            layer = next;
        }
        aig.add_po(format!("s{o}"), layer[0]);
    }
    aig
}

/// Gray-code to binary converter (XOR prefix chain).
#[must_use]
pub fn gray2bin(w: u32) -> Aig {
    let mut aig = Aig::new(format!("gray2bin{w}"));
    let g: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let mut acc = g[w as usize - 1];
    let mut bits = vec![acc];
    for i in (0..w as usize - 1).rev() {
        acc = aig.xor2(acc, g[i]);
        bits.push(acc);
    }
    for (i, b) in bits.iter().rev().enumerate() {
        aig.add_po(format!("b{i}"), *b);
    }
    aig
}

/// Hamming-style parity generator: one parity output per bit position of
/// the index, XORed over matching data bits.
#[must_use]
pub fn hamming(w: u32) -> Aig {
    let mut aig = Aig::new(format!("hamming{w}"));
    let d: Vec<Lit> = (0..w).map(|_| aig.add_pi()).collect();
    let r = 32 - w.leading_zeros();
    for bit in 0..r {
        let terms: Vec<Lit> = (0..w as usize)
            .filter(|i| ((i + 1) >> bit) & 1 == 1)
            .map(|i| d[i])
            .collect();
        let p = aig.xor_many(terms);
        aig.add_po(format!("p{bit}"), p);
    }
    aig
}

// ---------------------------------------------------------------------
// Composite OpenPiton-like designs for the routing-scaling experiment.
// ---------------------------------------------------------------------

/// Names of the composite designs used by Figure 3, smallest first
/// (`dynamic_node` is the smallest, `sparc_core` the largest).
pub const OPENPITON_NAMES: [&str; 6] = [
    "dynamic_node",
    "aes",
    "vanilla5",
    "fpu",
    "l2_bank",
    "sparc_core",
];

/// Build a composite design by OpenPiton-like name; `None` if unknown.
///
/// Sizes grow roughly geometrically from a few hundred to tens of
/// thousands of AIG nodes, mirroring the relative sizes in the paper
/// (scaled down ~4x to stay laptop-friendly).
#[must_use]
pub fn openpiton_design(name: &str) -> Option<Aig> {
    let parts: Vec<Aig> = match name {
        "dynamic_node" => vec![crossbar(4, 8), arbiter(16), ctrl(11, 120)],
        "aes" => vec![
            sbox(1, 16),
            sbox(2, 16),
            sbox(3, 16),
            sbox(4, 16),
            parity(64),
            ctrl(5, 400),
        ],
        "vanilla5" => vec![alu(16), barrel(16), priority(32), ctrl(7, 800)],
        "fpu" => vec![multiplier(24), adder(48), int2float(32), ctrl(9, 600)],
        "l2_bank" => vec![
            decoder(8),
            comparator(64),
            crossbar(8, 32),
            ctrl(13, 2500),
            parity(128),
        ],
        "sparc_core" => vec![
            multiplier(32),
            alu(32),
            barrel(32),
            int2float(32),
            decoder(7),
            priority(64),
            arbiter(32),
            ctrl(17, 5000),
            sbox(18, 16),
            voter(33),
        ],
        _ => return None,
    };
    Some(merge(name, &parts))
}

/// Merge independent AIGs into one design with disjoint I/O spaces.
#[must_use]
pub fn merge(name: &str, parts: &[Aig]) -> Aig {
    let mut out = Aig::new(name);
    for (pi, part) in parts.iter().enumerate() {
        let mut map: Vec<Lit> = Vec::with_capacity(part.node_count());
        for node in part.nodes() {
            let lit = match node {
                crate::aig::AigNode::Const0 => Lit::FALSE,
                crate::aig::AigNode::Pi(_) => out.add_pi(),
                crate::aig::AigNode::And(a, b) => {
                    let la = map[a.node() as usize].complement_if(a.is_complemented());
                    let lb = map[b.node() as usize].complement_if(b.is_complemented());
                    out.and2(la, lb)
                }
            };
            map.push(lit);
        }
        for (po_name, l) in part.outputs() {
            let lit = map[l.node() as usize].complement_if(l.is_complemented());
            out.add_po(format!("u{pi}_{po_name}"), lit);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Shared arithmetic helpers.
// ---------------------------------------------------------------------

/// Ripple add two equal-width bit vectors; returns (sum bits, carry out).
fn add_vectors(aig: &mut Aig, a: &[Lit], b: &[Lit], carry_in: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let axb = aig.xor2(a[i], b[i]);
        let s = aig.xor2(axb, carry);
        carry = aig.maj3(a[i], b[i], carry);
        sum.push(s);
    }
    (sum, carry)
}

/// Array multiplication; returns `a.len() + b.len()` product bits.
fn multiply_vectors(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let w = a.len() + b.len();
    let mut acc = vec![Lit::FALSE; w];
    for (i, &ai) in a.iter().enumerate() {
        // Partial product row: (a_i ? b : 0) << i, ripple-added into acc.
        let mut carry = Lit::FALSE;
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and2(ai, bj);
            let pos = i + j;
            let axb = aig.xor2(acc[pos], pp);
            let s = aig.xor2(axb, carry);
            carry = aig.maj3(acc[pos], pp, carry);
            acc[pos] = s;
        }
        // Propagate final carry.
        let mut pos = i + b.len();
        while carry != Lit::FALSE && pos < w {
            let s = aig.xor2(acc[pos], carry);
            carry = aig.and2(acc[pos], carry);
            acc[pos] = s;
            pos += 1;
        }
    }
    acc
}

/// Unsigned `a > b` over equal-width vectors.
fn greater_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let mut gt = Lit::FALSE;
    for i in 0..a.len() {
        // From LSB to MSB: gt = a_i & !b_i  |  (a_i == b_i) & gt_lower
        let ai_gt = aig.and2(a[i], !b[i]);
        let eq = aig.xnor2(a[i], b[i]);
        let keep = aig.and2(eq, gt);
        gt = aig.or2(ai_gt, keep);
    }
    gt
}

/// Unsigned `value > constant` for a bit vector.
fn greater_than_const(aig: &mut Aig, value: &[Lit], constant: u64) -> Lit {
    let mut gt = Lit::FALSE;
    for (i, &v) in value.iter().enumerate() {
        let kbit = (constant >> i) & 1 == 1;
        if kbit {
            // v must be 1 to stay equal; gt propagates only when equal.
            gt = aig.and2(v, gt);
        } else {
            // v=1 makes it greater at this bit.
            gt = aig.or2(v, gt);
        }
    }
    gt
}

/// Population count of a bit set, as a binary vector.
fn popcount(aig: &mut Aig, xs: &[Lit]) -> Vec<Lit> {
    // Tree of vector additions over 1-bit numbers.
    let mut layer: Vec<Vec<Lit>> = xs.iter().map(|&x| vec![x]).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(a) = it.next() {
            if let Some(b) = it.next() {
                let w = a.len().max(b.len()) ;
                let pad = |mut v: Vec<Lit>| {
                    v.resize(w, Lit::FALSE);
                    v
                };
                let (sum, carry) = add_vectors(aig, &pad(a), &pad(b), Lit::FALSE);
                let mut s = sum;
                s.push(carry);
                next.push(s);
            } else {
                next.push(a);
            }
        }
        layer = next;
    }
    layer.pop().unwrap_or_else(|| vec![Lit::FALSE])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_to_u64(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn u64_to_bits(v: u64, w: u32) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn adder_is_correct() {
        let aig = adder(6);
        for (a, b) in [(0u64, 0u64), (5, 9), (63, 1), (33, 31), (63, 63)] {
            let mut inputs = u64_to_bits(a, 6);
            inputs.extend(u64_to_bits(b, 6));
            let out = aig.simulate(&inputs).expect("arity");
            assert_eq!(bits_to_u64(&out), a + b, "{a}+{b}");
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let aig = multiplier(5);
        for (a, b) in [(0u64, 0u64), (3, 7), (31, 31), (17, 2), (25, 13)] {
            let mut inputs = u64_to_bits(a, 5);
            inputs.extend(u64_to_bits(b, 5));
            let out = aig.simulate(&inputs).expect("arity");
            assert_eq!(bits_to_u64(&out), a * b, "{a}*{b}");
        }
    }

    #[test]
    fn square_matches_multiplier() {
        let aig = square(4);
        for a in 0u64..16 {
            let out = aig.simulate(&u64_to_bits(a, 4)).expect("arity");
            assert_eq!(bits_to_u64(&out), a * a, "{a}^2");
        }
    }

    #[test]
    fn barrel_shifts_left() {
        let aig = barrel(8);
        for (data, shift) in [(0b1u64, 3u64), (0b1011, 2), (0xFF, 7), (0xAB, 0)] {
            let mut inputs = u64_to_bits(data, 8);
            inputs.extend(u64_to_bits(shift, 3));
            let out = aig.simulate(&inputs).expect("arity");
            assert_eq!(bits_to_u64(&out), (data << shift) & 0xFF);
        }
    }

    #[test]
    fn max_and_comparator_agree() {
        let maxer = max(5);
        let cmp = comparator(5);
        for (a, b) in [(0u64, 0u64), (3, 17), (30, 12), (12, 12), (31, 30)] {
            let mut inputs = u64_to_bits(a, 5);
            inputs.extend(u64_to_bits(b, 5));
            let m = maxer.simulate(&inputs).expect("arity");
            assert_eq!(bits_to_u64(&m), a.max(b));
            let c = cmp.simulate(&inputs).expect("arity");
            assert_eq!(c, vec![a == b, a < b, a > b]);
        }
    }

    #[test]
    fn parity_counts_mod_two() {
        let aig = parity(16);
        let mut inputs = vec![false; 16];
        inputs[1] = true;
        inputs[5] = true;
        inputs[6] = true;
        assert_eq!(aig.simulate(&inputs).unwrap(), vec![true]);
        inputs[9] = true;
        assert_eq!(aig.simulate(&inputs).unwrap(), vec![false]);
    }

    #[test]
    fn decoder_one_hot() {
        let aig = decoder(3);
        for code in 0u64..8 {
            let out = aig.simulate(&u64_to_bits(code, 3)).unwrap();
            let hot: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(hot, vec![code as usize]);
        }
    }

    #[test]
    fn priority_encoder_lowest_wins() {
        let aig = priority(8);
        let mut inputs = vec![false; 8];
        inputs[5] = true;
        inputs[2] = true; // lowest set bit = 2
        let out = aig.simulate(&inputs).unwrap();
        // idx bits (3) then valid.
        assert_eq!(bits_to_u64(&out[..3]), 2);
        assert!(out[3]);
        let out = aig.simulate(&[false; 8]).unwrap();
        assert!(!out[3], "no request -> invalid");
    }

    #[test]
    fn voter_majority() {
        let aig = voter(5);
        let vote = |n_set: usize| {
            let mut v = vec![false; 5];
            v.iter_mut().take(n_set).for_each(|b| *b = true);
            aig.simulate(&v).unwrap()[0]
        };
        assert!(!vote(0));
        assert!(!vote(2));
        assert!(vote(3));
        assert!(vote(5));
    }

    #[test]
    fn arbiter_grants_lowest_unmasked() {
        let aig = arbiter(4);
        // req = 0b1010, mask = 0b0010 -> effective = 0b1000 -> grant 3.
        let mut inputs = u64_to_bits(0b1010, 4);
        inputs.extend(u64_to_bits(0b0010, 4));
        let out = aig.simulate(&inputs).unwrap();
        assert_eq!(out[..4], [false, false, false, true]);
        assert!(out[4], "busy");
    }

    #[test]
    fn gray_roundtrip() {
        let aig = gray2bin(6);
        for v in [0u64, 1, 13, 42, 63] {
            let gray = v ^ (v >> 1);
            let out = aig.simulate(&u64_to_bits(gray, 6)).unwrap();
            assert_eq!(bits_to_u64(&out), v, "gray({v})");
        }
    }

    #[test]
    fn ctrl_is_deterministic() {
        let a = ctrl(42, 100);
        let b = ctrl(42, 100);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.outputs(), b.outputs());
        let c = ctrl(43, 100);
        assert_ne!(
            (a.node_count(), a.and_count()),
            (c.node_count() + 1000, c.and_count()) // trivially different sanity
        );
    }

    #[test]
    fn crossbar_routes() {
        let aig = crossbar(4, 2);
        // 4 ports x 2 bits data, then 4 x 2 select bits.
        let data: [u64; 4] = [0b01, 0b10, 0b11, 0b00];
        let mut inputs = Vec::new();
        for d in data {
            inputs.extend(u64_to_bits(d, 2));
        }
        // All four outputs select port 2.
        for _ in 0..4 {
            inputs.extend(u64_to_bits(2, 2));
        }
        let out = aig.simulate(&inputs).unwrap();
        for port in 0..4 {
            assert_eq!(bits_to_u64(&out[port * 2..port * 2 + 2]), 0b11);
        }
    }

    #[test]
    fn all_families_build_and_check() {
        for name in FAMILY_NAMES {
            let aig = build_family(name, 4).expect("known family");
            aig.check().expect("valid AIG");
            assert!(aig.and_count() > 0, "{name} has logic");
            assert!(aig.output_count() > 0, "{name} has outputs");
        }
        assert!(build_family("nonsense", 4).is_none());
    }

    #[test]
    fn openpiton_designs_increase_in_size() {
        let sizes: Vec<usize> = OPENPITON_NAMES
            .iter()
            .map(|n| openpiton_design(n).expect("known").and_count())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "sizes must increase: {sizes:?}");
        }
        assert!(openpiton_design("unknown").is_none());
    }

    #[test]
    fn merge_preserves_function() {
        let a = adder(3);
        let p = parity(4);
        let merged = merge("both", &[a.clone(), p.clone()]);
        assert_eq!(merged.input_count(), a.input_count() + p.input_count());
        assert_eq!(merged.output_count(), a.output_count() + p.output_count());
        // Simulate: adder part 3+2, parity part odd.
        let mut inputs = u64_to_bits(3, 3);
        inputs.extend(u64_to_bits(2, 3));
        inputs.extend([true, false, false, false]);
        let out = merged.simulate(&inputs).unwrap();
        assert_eq!(bits_to_u64(&out[..4]), 5);
        assert!(out[4]);
        merged.check().expect("valid");
    }

    #[test]
    fn int2float_normalizes() {
        let aig = int2float(8);
        // Input 0b0001_0000 -> leading one at index 4 -> exp = 4.
        let out = aig.simulate(&u64_to_bits(0b0001_0000, 8)).unwrap();
        let exp = bits_to_u64(&out[..3]);
        assert_eq!(exp, 4);
        // Mantissa: shifted so the leading one lands at the MSB.
        let mant = bits_to_u64(&out[3..]);
        assert_eq!(mant & 0x80, 0x80, "leading one at MSB, mant={mant:#b}");
    }

    #[test]
    fn alu_operations() {
        let aig = alu(4);
        let run = |a: u64, b: u64, op: u64| {
            let mut inputs = u64_to_bits(a, 4);
            inputs.extend(u64_to_bits(b, 4));
            inputs.extend(u64_to_bits(op, 3));
            bits_to_u64(&aig.simulate(&inputs).unwrap())
        };
        assert_eq!(run(5, 3, 0b000), 8); // add
        assert_eq!(run(5, 3, 0b001), 2); // sub
        assert_eq!(run(0b1100, 0b1010, 0b010), 0b1000); // and
        assert_eq!(run(0b1100, 0b1010, 0b011), 0b1110); // or
        assert_eq!(run(0b1100, 0b1010, 0b100), 0b0110); // xor
        assert_eq!(run(0b1100, 0b1010, 0b101), 0b1100); // pass a
    }

    #[test]
    fn hamming_parities() {
        let aig = hamming(8);
        // data = one-hot at position 0 (index 1 in 1-based): parity bits = 1's bits of 1.
        let mut d = vec![false; 8];
        d[0] = true;
        let out = aig.simulate(&d).unwrap();
        assert!(out[0]); // bit0 of (0+1)=1
        assert!(!out[1]);
    }
}
