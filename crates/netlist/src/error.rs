//! Error types for the design substrate.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or parsing designs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A literal or identifier referenced a node that does not exist.
    InvalidReference {
        /// What was being referenced (e.g. "node", "net", "cell").
        what: &'static str,
        /// The out-of-range index.
        index: usize,
        /// The number of valid entities.
        len: usize,
    },
    /// A net has more than one driver or a cell output drives two nets.
    MultipleDrivers(String),
    /// A net has no driver.
    Undriven(String),
    /// Structural check failed: the design contains a combinational cycle.
    CombinationalCycle,
    /// A file-format parse error with a line/column position and message.
    Parse {
        /// 1-based line number where parsing failed (0 when the error
        /// is not tied to a source position, e.g. a solver budget).
        line: usize,
        /// 1-based column (byte offset within the line) of the
        /// offending token; 0 when unknown.
        col: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// Simulation was given the wrong number of input values.
    InputArity {
        /// Number of values provided.
        got: usize,
        /// Number of primary inputs expected.
        expected: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InvalidReference { what, index, len } => {
                write!(f, "invalid {what} reference {index} (only {len} exist)")
            }
            NetlistError::MultipleDrivers(net) => write!(f, "net `{net}` has multiple drivers"),
            NetlistError::Undriven(net) => write!(f, "net `{net}` has no driver"),
            NetlistError::CombinationalCycle => write!(f, "design contains a combinational cycle"),
            NetlistError::Parse { line, col, message } => {
                if *col > 0 {
                    write!(f, "parse error at line {line}, col {col}: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            NetlistError::InputArity { got, expected } => {
                write!(f, "expected {expected} input values, got {got}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::InvalidReference {
            what: "node",
            index: 9,
            len: 3,
        };
        assert_eq!(e.to_string(), "invalid node reference 9 (only 3 exist)");
        let positioned = NetlistError::Parse {
            line: 4,
            col: 9,
            message: "bad token".into(),
        }
        .to_string();
        assert!(positioned.contains("line 4"), "{positioned}");
        assert!(positioned.contains("col 9"), "{positioned}");
        let unpositioned = NetlistError::Parse {
            line: 0,
            col: 0,
            message: "budget exhausted".into(),
        }
        .to_string();
        assert!(!unpositioned.contains("col"), "{unpositioned}");
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
