//! And-Inverter Graph with structural hashing.
//!
//! An AIG represents combinational logic with two-input AND nodes and
//! complemented edges. Synthesis tools lower RTL into this form before
//! optimization and technology mapping; the paper's synthesis-runtime GCN
//! consumes it directly.

use crate::NetlistError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside an [`Aig`].
pub type NodeId = u32;

/// A literal: a node reference with an optional complement.
///
/// Encoded as `node_id * 2 + complement`, mirroring the AIGER convention,
/// so `Lit(0)` is constant false and `Lit(1)` constant true.
///
/// # Examples
///
/// ```
/// use eda_cloud_netlist::Lit;
///
/// let x = Lit::from_node(3, false);
/// assert_eq!(x.node(), 3);
/// assert!(!x.is_complemented());
/// assert!((!x).is_complemented());
/// assert_eq!(!!x, x);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Build a literal from a node id and complement flag.
    #[must_use]
    pub fn from_node(node: NodeId, complemented: bool) -> Self {
        Lit(node * 2 + u32::from(complemented))
    }

    /// Raw AIGER-style encoding (`node * 2 + complement`).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Build from a raw AIGER-style encoding.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }

    /// The referenced node.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.0 / 2
    }

    /// Whether the literal is complemented.
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the constants.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// Apply a complement conditionally.
    #[must_use]
    pub fn complement_if(self, cond: bool) -> Self {
        Lit(self.0 ^ u32::from(cond))
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// A node in the AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AigNode {
    /// The constant-false node (always node 0).
    Const0,
    /// Primary input, with its position among the inputs.
    Pi(u32),
    /// Two-input AND over two literals.
    And(Lit, Lit),
}

/// A structurally-hashed And-Inverter Graph.
///
/// Nodes are stored in topological order by construction: an AND node's
/// fanin literals always reference lower node ids, so a single forward
/// pass visits the graph in dependency order.
///
/// # Examples
///
/// ```
/// use eda_cloud_netlist::Aig;
///
/// let mut aig = Aig::new("toy");
/// let a = aig.add_pi();
/// let b = aig.add_pi();
/// let y = aig.xor2(a, b);
/// aig.add_po("y", y);
/// assert_eq!(aig.simulate(&[true, false]).unwrap(), vec![true]);
/// assert_eq!(aig.simulate(&[true, true]).unwrap(), vec![false]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    pis: Vec<NodeId>,
    pos: Vec<(String, Lit)>,
    #[serde(skip)]
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Aig {
    /// Create an empty AIG with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: vec![AigNode::Const0],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total node count including the constant node.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    #[must_use]
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.pos.len()
    }

    /// The node table (index = [`NodeId`]).
    #[must_use]
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Primary-input node ids in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.pis
    }

    /// Primary outputs as (name, literal) pairs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.pos
    }

    /// Append a primary input and return its (non-complemented) literal.
    pub fn add_pi(&mut self) -> Lit {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(AigNode::Pi(self.pis.len() as u32));
        self.pis.push(id);
        Lit::from_node(id, false)
    }

    /// Register a primary output driven by `lit`.
    pub fn add_po(&mut self, name: impl Into<String>, lit: Lit) {
        debug_assert!((lit.node() as usize) < self.nodes.len());
        self.pos.push((name.into(), lit));
    }

    /// Structurally-hashed AND of two literals, with constant folding and
    /// trivial-case simplification (`x & x = x`, `x & !x = 0`, ...).
    pub fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        // Canonical order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return Lit::from_node(id, false);
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        Lit::from_node(id, false)
    }

    /// OR via De Morgan.
    pub fn or2(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and2(!a, !b)
    }

    /// XOR built from three ANDs.
    pub fn xor2(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.and2(a, !b);
        let ba = self.and2(!a, b);
        self.or2(ab, ba)
    }

    /// XNOR.
    pub fn xnor2(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor2(a, b)
    }

    /// 2:1 multiplexer: `sel ? t : e`.
    pub fn mux2(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and2(sel, t);
        let se = self.and2(!sel, e);
        self.or2(st, se)
    }

    /// Majority of three (full-adder carry).
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and2(a, b);
        let bc = self.and2(b, c);
        let ac = self.and2(a, c);
        let t = self.or2(ab, bc);
        self.or2(t, ac)
    }

    /// Wide AND over an iterator of literals (balanced tree).
    pub fn and_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut layer: Vec<Lit> = lits.into_iter().collect();
        if layer.is_empty() {
            return Lit::TRUE;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and2(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Wide OR over an iterator of literals (balanced tree).
    pub fn or_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let inv: Vec<Lit> = lits.into_iter().map(|l| !l).collect();
        if inv.is_empty() {
            return Lit::FALSE;
        }
        !self.and_many(inv)
    }

    /// Wide XOR over an iterator of literals (balanced tree).
    pub fn xor_many<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut layer: Vec<Lit> = lits.into_iter().collect();
        if layer.is_empty() {
            return Lit::FALSE;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.xor2(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Logic level of every node (PIs and constant at level 0).
    #[must_use]
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                level[i] = 1 + level[a.node() as usize].max(level[b.node() as usize]);
            }
        }
        level
    }

    /// Depth: maximum output level.
    #[must_use]
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.pos
            .iter()
            .map(|(_, l)| levels[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count of every node (references from AND fanins and POs).
    #[must_use]
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And(a, b) = node {
                fo[a.node() as usize] += 1;
                fo[b.node() as usize] += 1;
            }
        }
        for (_, l) in &self.pos {
            fo[l.node() as usize] += 1;
        }
        fo
    }

    /// Evaluate the AIG on one input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] if `inputs.len()` differs from
    /// [`Aig::input_count`].
    pub fn simulate(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.pis.len() {
            return Err(NetlistError::InputArity {
                got: inputs.len(),
                expected: self.pis.len(),
            });
        }
        let mut value = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            value[i] = match node {
                AigNode::Const0 => false,
                AigNode::Pi(k) => inputs[*k as usize],
                AigNode::And(a, b) => {
                    let va = value[a.node() as usize] ^ a.is_complemented();
                    let vb = value[b.node() as usize] ^ b.is_complemented();
                    va & vb
                }
            };
        }
        Ok(self
            .pos
            .iter()
            .map(|(_, l)| value[l.node() as usize] ^ l.is_complemented())
            .collect())
    }

    /// 64-way parallel bit-vector simulation: each input carries 64
    /// patterns packed into a `u64`. Used by equivalence spot-checks in
    /// tests and by the synthesis engine's verification pass.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on input-count mismatch.
    pub fn simulate_words(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        if inputs.len() != self.pis.len() {
            return Err(NetlistError::InputArity {
                got: inputs.len(),
                expected: self.pis.len(),
            });
        }
        let mut value = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            value[i] = match node {
                AigNode::Const0 => 0,
                AigNode::Pi(k) => inputs[*k as usize],
                AigNode::And(a, b) => {
                    let va = value[a.node() as usize] ^ (a.is_complemented() as u64).wrapping_neg();
                    let vb = value[b.node() as usize] ^ (b.is_complemented() as u64).wrapping_neg();
                    va & vb
                }
            };
        }
        Ok(self
            .pos
            .iter()
            .map(|(_, l)| value[l.node() as usize] ^ (l.is_complemented() as u64).wrapping_neg())
            .collect())
    }

    /// Rebuild the structural-hash table (needed after deserialization).
    pub fn rehash(&mut self) {
        self.strash.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                self.strash.insert((*a, *b), i as NodeId);
            }
        }
    }

    /// Validate internal invariants: fanins reference earlier nodes only.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidReference`] on a forward reference.
    pub fn check(&self) -> Result<(), NetlistError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                for lit in [a, b] {
                    if lit.node() as usize >= i {
                        return Err(NetlistError::InvalidReference {
                            what: "node",
                            index: lit.node() as usize,
                            len: i,
                        });
                    }
                }
            }
        }
        for (_, l) in &self.pos {
            if l.node() as usize >= self.nodes.len() {
                return Err(NetlistError::InvalidReference {
                    what: "node",
                    index: l.node() as usize,
                    len: self.nodes.len(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aig `{}`: {} PIs, {} POs, {} ANDs, depth {}",
            self.name,
            self.input_count(),
            self.output_count(),
            self.and_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Aig {
        let mut aig = Aig::new("ha");
        let a = aig.add_pi();
        let b = aig.add_pi();
        let sum = aig.xor2(a, b);
        let carry = aig.and2(a, b);
        aig.add_po("sum", sum);
        aig.add_po("carry", carry);
        aig
    }

    #[test]
    fn half_adder_truth_table() {
        let aig = half_adder();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = aig.simulate(&[a, b]).expect("arity ok");
            assert_eq!(out[0], a ^ b, "sum({a},{b})");
            assert_eq!(out[1], a & b, "carry({a},{b})");
        }
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_pi();
        let b = aig.add_pi();
        let x = aig.and2(a, b);
        let y = aig.and2(b, a); // commuted -> same node
        assert_eq!(x, y);
        assert_eq!(aig.and_count(), 1);
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new("t");
        let a = aig.add_pi();
        assert_eq!(aig.and2(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and2(a, Lit::TRUE), a);
        assert_eq!(aig.and2(a, a), a);
        assert_eq!(aig.and2(a, !a), Lit::FALSE);
        assert_eq!(aig.and_count(), 0);
    }

    #[test]
    fn mux_selects() {
        let mut aig = Aig::new("t");
        let s = aig.add_pi();
        let t = aig.add_pi();
        let e = aig.add_pi();
        let m = aig.mux2(s, t, e);
        aig.add_po("m", m);
        assert_eq!(aig.simulate(&[true, true, false]).unwrap(), vec![true]);
        assert_eq!(aig.simulate(&[false, true, false]).unwrap(), vec![false]);
        assert_eq!(aig.simulate(&[false, false, true]).unwrap(), vec![true]);
    }

    #[test]
    fn wide_gates() {
        let mut aig = Aig::new("t");
        let lits: Vec<Lit> = (0..5).map(|_| aig.add_pi()).collect();
        let all = aig.and_many(lits.iter().copied());
        let any = aig.or_many(lits.iter().copied());
        let par = aig.xor_many(lits.iter().copied());
        aig.add_po("all", all);
        aig.add_po("any", any);
        aig.add_po("par", par);
        let out = aig.simulate(&[true, true, true, false, true]).unwrap();
        assert_eq!(out, vec![false, true, false]);
        let out = aig.simulate(&[true; 5]).unwrap();
        assert_eq!(out, vec![true, true, true]);
        let out = aig.simulate(&[false; 5]).unwrap();
        assert_eq!(out, vec![false, false, false]);
    }

    #[test]
    fn empty_wide_gates_are_constants() {
        let mut aig = Aig::new("t");
        assert_eq!(aig.and_many(std::iter::empty()), Lit::TRUE);
        assert_eq!(aig.or_many(std::iter::empty()), Lit::FALSE);
        assert_eq!(aig.xor_many(std::iter::empty()), Lit::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let aig = half_adder();
        let levels = aig.levels();
        assert_eq!(levels[0], 0);
        assert!(aig.depth() >= 2); // xor is 2 levels of ands
    }

    #[test]
    fn fanout_counts() {
        let aig = half_adder();
        let fo = aig.fanouts();
        // Each PI feeds the xor decomposition (2 ands) and the carry and.
        for &pi in aig.inputs() {
            assert!(fo[pi as usize] >= 2);
        }
    }

    #[test]
    fn word_simulation_matches_scalar() {
        let aig = half_adder();
        // Pattern i in bit i: enumerate all 4 combinations in bits 0..4.
        let a = 0b1010u64;
        let b = 0b1100u64;
        let words = aig.simulate_words(&[a, b]).unwrap();
        for bit in 0..4 {
            let sa = (a >> bit) & 1 == 1;
            let sb = (b >> bit) & 1 == 1;
            let scalar = aig.simulate(&[sa, sb]).unwrap();
            assert_eq!((words[0] >> bit) & 1 == 1, scalar[0]);
            assert_eq!((words[1] >> bit) & 1 == 1, scalar[1]);
        }
    }

    #[test]
    fn arity_error() {
        let aig = half_adder();
        let err = aig.simulate(&[true]).unwrap_err();
        assert_eq!(
            err,
            NetlistError::InputArity {
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn check_passes_on_valid() {
        half_adder().check().expect("valid aig");
    }

    #[test]
    fn rehash_restores_sharing() {
        let mut aig = half_adder();
        aig.strash.clear();
        aig.rehash();
        let a = Lit::from_node(aig.inputs()[0], false);
        let b = Lit::from_node(aig.inputs()[1], false);
        let before = aig.and_count();
        let _ = aig.and2(a, b); // should hit strash, not grow
        assert_eq!(aig.and_count(), before);
    }

    #[test]
    fn lit_roundtrip() {
        let l = Lit::from_node(7, true);
        assert_eq!(Lit::from_raw(l.raw()), l);
        assert_eq!(l.to_string(), "!n7");
        assert_eq!((!l).to_string(), "n7");
        assert!(Lit::TRUE.is_const());
        assert_eq!(l.complement_if(true), !l);
        assert_eq!(l.complement_if(false), l);
    }
}
