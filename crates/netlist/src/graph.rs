//! Design-to-graph conversion for the runtime-prediction GCN.
//!
//! The paper feeds the GCN either the AIG of a design (synthesis) or the
//! *star-model* graph of its netlist (placement/routing/STA): cells and
//! I/O pins become nodes, and each net becomes a set of directed edges
//! from the driving cell (or input pin) to each sink (or output pin).

use crate::aig::{Aig, AigNode};
use crate::netlist::{NetDriver, NetSink, Netlist};
use serde::{Deserialize, Serialize};

/// Number of per-node input features produced by the converters.
pub const FEATURE_DIM: usize = 10;

/// Per-node feature vector layout (see [`FEATURE_DIM`]).
///
/// | idx | meaning |
/// |-----|---------|
/// | 0 | is primary input |
/// | 1 | is primary output |
/// | 2 | is combinational gate / AND node |
/// | 3 | is sequential element |
/// | 4 | fanin count / 4 |
/// | 5 | `ln(1 + fanout)` |
/// | 6 | logic level / depth (normalized) |
/// | 7 | complemented-fanin fraction (AIG) or relative drive (netlist) |
/// | 8 | relative area (netlist; 0 for AIG) |
/// | 9 | constant 1 (bias) |
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFeatures(pub [f64; FEATURE_DIM]);

/// A directed graph with node features, ready for GCN consumption.
///
/// Stored in CSR (compressed sparse row) form over *outgoing* edges;
/// [`DesignGraph::reverse_offsets`]/[`DesignGraph::reverse_targets`] give
/// the transposed (incoming) view used for fanin aggregation.
///
/// # Examples
///
/// ```
/// use eda_cloud_netlist::{generators, DesignGraph};
///
/// let graph = DesignGraph::from_aig(&generators::adder(4));
/// assert!(graph.edge_count() > 0);
/// let deg: usize = (0..graph.node_count()).map(|v| graph.out_neighbors(v).len()).sum();
/// assert_eq!(deg, graph.edge_count());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignGraph {
    name: String,
    node_count: usize,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    rev_offsets: Vec<u32>,
    rev_targets: Vec<u32>,
    features: Vec<f64>,
}

impl DesignGraph {
    /// Build from an edge list. Edges are `(from, to)` node indices.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= node_count` or if
    /// `features.len() != node_count`.
    #[must_use]
    pub fn from_edges(
        name: impl Into<String>,
        node_count: usize,
        edges: &[(u32, u32)],
        features: Vec<NodeFeatures>,
    ) -> Self {
        assert_eq!(features.len(), node_count, "one feature row per node");
        let csr = |key: fn(&(u32, u32)) -> u32, val: fn(&(u32, u32)) -> u32| {
            let mut offsets = vec![0u32; node_count + 1];
            for e in edges {
                let k = key(e) as usize;
                assert!(k < node_count, "edge endpoint out of range");
                assert!((val(e) as usize) < node_count, "edge endpoint out of range");
                offsets[k + 1] += 1;
            }
            for i in 0..node_count {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets.clone();
            let mut targets = vec![0u32; edges.len()];
            for e in edges {
                let k = key(e) as usize;
                targets[cursor[k] as usize] = val(e);
                cursor[k] += 1;
            }
            (offsets, targets)
        };
        let (offsets, targets) = csr(|e| e.0, |e| e.1);
        let (rev_offsets, rev_targets) = csr(|e| e.1, |e| e.0);
        let flat: Vec<f64> = features.iter().flat_map(|f| f.0).collect();
        Self {
            name: name.into(),
            node_count,
            offsets,
            targets,
            rev_offsets,
            rev_targets,
            features: flat,
        }
    }

    /// Convert an AIG: one node per AIG node plus one per primary output;
    /// edges follow signal flow (fanin → node, PO driver → PO node).
    #[must_use]
    pub fn from_aig(aig: &Aig) -> Self {
        let n_core = aig.node_count();
        let n = n_core + aig.output_count();
        let levels = aig.levels();
        let fanouts = aig.fanouts();
        // Normalize by the deepest node anywhere in the AIG (dead logic
        // included) so the level feature is always within [0, 1].
        let depth = f64::from(levels.iter().copied().max().unwrap_or(0).max(1));
        let mut edges = Vec::new();
        let mut features = vec![NodeFeatures([0.0; FEATURE_DIM]); n];
        for (i, node) in aig.nodes().iter().enumerate() {
            let f = &mut features[i].0;
            f[9] = 1.0;
            f[5] = (1.0 + f64::from(fanouts[i])).ln();
            f[6] = f64::from(levels[i]) / depth;
            match node {
                AigNode::Const0 => {}
                AigNode::Pi(_) => f[0] = 1.0,
                AigNode::And(a, b) => {
                    f[2] = 1.0;
                    f[4] = 2.0 / 4.0;
                    f[7] = (f64::from(u8::from(a.is_complemented()))
                        + f64::from(u8::from(b.is_complemented())))
                        / 2.0;
                    edges.push((a.node(), i as u32));
                    edges.push((b.node(), i as u32));
                }
            }
        }
        for (k, (_, lit)) in aig.outputs().iter().enumerate() {
            let v = (n_core + k) as u32;
            let f = &mut features[v as usize].0;
            f[1] = 1.0;
            f[4] = 1.0 / 4.0;
            f[6] = 1.0;
            f[7] = f64::from(u8::from(lit.is_complemented()));
            f[9] = 1.0;
            edges.push((lit.node(), v));
        }
        Self::from_edges(aig.name().to_owned(), n, &edges, features)
    }

    /// Convert a netlist using the star model: one node per cell, per
    /// primary input, and per primary output; each net contributes a
    /// directed edge from its driver node to every sink node.
    #[must_use]
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let n_cells = netlist.cell_count();
        let n_pis = netlist.primary_inputs().len();
        let n_pos = netlist.primary_outputs().len();
        let n = n_cells + n_pis + n_pos;
        // Node numbering: cells, then PI ports, then PO ports.
        let pi_node = |k: usize| (n_cells + k) as u32;
        let po_node = |k: usize| (n_cells + n_pis + k) as u32;

        let mut edges = Vec::new();
        for net in netlist.nets() {
            let Some(driver) = net.driver else { continue };
            let from = match driver {
                NetDriver::Cell(c) => c,
                NetDriver::PrimaryInput(k) => pi_node(k as usize),
            };
            for sink in &net.sinks {
                let to = match *sink {
                    NetSink::CellPin { cell, .. } => cell,
                    NetSink::PrimaryOutput(k) => po_node(k as usize),
                };
                edges.push((from, to));
            }
        }

        // Per-cell levels for the depth feature.
        let depth = netlist.depth().max(1) as f64;
        let mut level = vec![0usize; n_cells];
        if let Ok(order) = netlist.topological_cells() {
            for &cid in &order {
                let cell = &netlist.cells()[cid as usize];
                if cell.kind.is_sequential() {
                    continue;
                }
                let mut l = 1;
                for &inet in &cell.inputs {
                    if let Some(NetDriver::Cell(d)) = netlist.nets()[inet as usize].driver {
                        if !netlist.cells()[d as usize].kind.is_sequential() {
                            l = l.max(level[d as usize] + 1);
                        }
                    }
                }
                level[cid as usize] = l;
            }
        }
        let mut fanout = vec![0u32; n];
        for &(from, _) in &edges {
            fanout[from as usize] += 1;
        }

        let max_area = 2.0; // µm², roughly the largest master in synth14
        let mut features = vec![NodeFeatures([0.0; FEATURE_DIM]); n];
        for (i, cell) in netlist.cells().iter().enumerate() {
            let f = &mut features[i].0;
            f[2] = if cell.kind.is_sequential() { 0.0 } else { 1.0 };
            f[3] = if cell.kind.is_sequential() { 1.0 } else { 0.0 };
            f[4] = cell.inputs.len() as f64 / 4.0;
            f[5] = (1.0 + f64::from(fanout[i])).ln();
            f[6] = level[i] as f64 / depth;
            // Relative drive strength from the master name suffix.
            f[7] = if cell.cell_name.ends_with("X2") { 1.0 } else { 0.5 };
            f[8] = (0.2 + 0.1 * cell.inputs.len() as f64) / max_area;
            f[9] = 1.0;
        }
        for k in 0..n_pis {
            let f = &mut features[pi_node(k) as usize].0;
            f[0] = 1.0;
            f[5] = (1.0 + f64::from(fanout[pi_node(k) as usize])).ln();
            f[9] = 1.0;
        }
        for k in 0..n_pos {
            let f = &mut features[po_node(k) as usize].0;
            f[1] = 1.0;
            f[4] = 0.25;
            f[6] = 1.0;
            f[9] = 1.0;
        }
        Self::from_edges(netlist.name().to_owned(), n, &edges, features)
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Outgoing neighbors of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count`.
    #[must_use]
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Incoming neighbors of node `v` (its fanins under signal flow).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count`.
    #[must_use]
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.rev_targets[self.rev_offsets[v] as usize..self.rev_offsets[v + 1] as usize]
    }

    /// CSR offsets over outgoing edges (length `node_count + 1`).
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// CSR target array over outgoing edges.
    #[must_use]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// CSR offsets over incoming edges.
    #[must_use]
    pub fn reverse_offsets(&self) -> &[u32] {
        &self.rev_offsets
    }

    /// CSR source array over incoming edges.
    #[must_use]
    pub fn reverse_targets(&self) -> &[u32] {
        &self.rev_targets
    }

    /// Feature row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count`.
    #[must_use]
    pub fn feature_row(&self, v: usize) -> &[f64] {
        &self.features[v * FEATURE_DIM..(v + 1) * FEATURE_DIM]
    }

    /// Flat row-major feature matrix (`node_count x FEATURE_DIM`).
    #[must_use]
    pub fn features(&self) -> &[f64] {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use eda_cloud_tech::CellKind;

    #[test]
    fn aig_conversion_shape() {
        let aig = generators::adder(4);
        let g = DesignGraph::from_aig(&aig);
        assert_eq!(g.node_count(), aig.node_count() + aig.output_count());
        // Every AND contributes 2 edges; every PO 1 edge.
        assert_eq!(g.edge_count(), 2 * aig.and_count() + aig.output_count());
    }

    #[test]
    fn csr_views_are_transposes() {
        let g = DesignGraph::from_aig(&generators::adder(4));
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        for v in 0..g.node_count() {
            for &t in g.out_neighbors(v) {
                fwd.push((v as u32, t));
            }
        }
        let mut rev: Vec<(u32, u32)> = Vec::new();
        for v in 0..g.node_count() {
            for &s in g.in_neighbors(v) {
                rev.push((s, v as u32));
            }
        }
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn star_model_edge_count() {
        // Build 1 driver cell with 3 sinks: expect 3 star edges for that net.
        let mut nl = Netlist::new("star", "synth14");
        let a = nl.add_input("a");
        let hub = nl.add_net("hub");
        nl.add_cell("drv", "INV_X1", CellKind::Inv, vec![a], hub);
        for i in 0..3 {
            let out = nl.add_net(format!("o{i}"));
            nl.add_cell(format!("s{i}"), "INV_X1", CellKind::Inv, vec![hub], out);
            nl.add_output(format!("o{i}"), out);
        }
        let g = DesignGraph::from_netlist(&nl);
        // a->drv (1), hub: drv->s0,s1,s2 (3), o_i -> PO_i (3)
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.node_count(), 4 + 1 + 3);
        // drv node (id 0) has 3 outgoing star edges.
        assert_eq!(g.out_neighbors(0).len(), 3);
    }

    #[test]
    fn features_have_bias_and_flags() {
        let aig = generators::adder(4);
        let g = DesignGraph::from_aig(&aig);
        for v in 0..g.node_count() {
            let f = g.feature_row(v);
            assert_eq!(f.len(), FEATURE_DIM);
            assert_eq!(f[9], 1.0, "bias feature");
        }
        // PI nodes flagged.
        let pi = aig.inputs()[0] as usize;
        assert_eq!(g.feature_row(pi)[0], 1.0);
        // PO nodes flagged (appended after core nodes).
        let po = aig.node_count();
        assert_eq!(g.feature_row(po)[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn out_of_range_edge_panics() {
        let feats = vec![NodeFeatures([0.0; FEATURE_DIM]); 2];
        let _ = DesignGraph::from_edges("bad", 2, &[(0, 5)], feats);
    }
}
