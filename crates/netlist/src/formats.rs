//! Text formats: AIGER-ASCII (`aag`) for AIGs and a BLIF-style gate-level
//! format for netlists.
//!
//! These are interchange helpers so corpora can be inspected and
//! round-tripped in tests; both writers emit the subset their reader
//! accepts.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_netlist::{formats, generators};
//!
//! let aig = generators::adder(4);
//! let text = formats::write_aag(&aig);
//! let back = formats::read_aag(&text)?;
//! assert_eq!(back.and_count(), aig.and_count());
//! # Ok::<(), eda_cloud_netlist::NetlistError>(())
//! ```

use crate::aig::{Aig, AigNode, Lit};
use crate::netlist::{NetDriver, Netlist};
use crate::NetlistError;
use eda_cloud_tech::Library;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Split a line on ASCII whitespace, keeping each field's 1-based byte
/// column so parse errors can point at the offending token.
fn fields_with_cols(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i > start {
            out.push((start + 1, &line[start..i]));
        }
    }
    out
}

/// Serialize an AIG in AIGER-ASCII (`aag`) format with a symbol table for
/// the outputs.
#[must_use]
pub fn write_aag(aig: &Aig) -> String {
    let max_var = aig.node_count() - 1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} 0 {} {}",
        max_var,
        aig.input_count(),
        aig.output_count(),
        aig.and_count()
    );
    for &pi in aig.inputs() {
        let _ = writeln!(out, "{}", Lit::from_node(pi, false).raw());
    }
    for (_, lit) in aig.outputs() {
        let _ = writeln!(out, "{}", lit.raw());
    }
    for (i, node) in aig.nodes().iter().enumerate() {
        if let AigNode::And(a, b) = node {
            let lhs = Lit::from_node(i as u32, false).raw();
            let _ = writeln!(out, "{lhs} {} {}", a.raw(), b.raw());
        }
    }
    for (k, (name, _)) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{k} {name}");
    }
    let _ = writeln!(out, "c");
    let _ = writeln!(out, "{}", aig.name());
    out
}

/// Parse an AIGER-ASCII (`aag`) document produced by [`write_aag`] (no
/// latches; AND definitions must be in topological order).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input.
pub fn read_aag(text: &str) -> Result<Aig, NetlistError> {
    let perr = |line: usize, col: usize, message: &str| NetlistError::Parse {
        line,
        col,
        message: message.to_owned(),
    };
    // Truncated documents report the position one past the last line,
    // never the meaningless `line 0` they used to.
    let eof_line = text.lines().count() + 1;
    let mut lines = text.lines().enumerate();
    let (lno, header) = lines.next().ok_or_else(|| perr(1, 1, "empty document"))?;
    let fields = fields_with_cols(header);
    if fields.len() != 6 || fields[0].1 != "aag" {
        return Err(perr(lno + 1, 1, "expected `aag M I L O A` header"));
    }
    let parse_num = |f: (usize, &str), lno: usize| {
        f.1.parse::<u32>()
            .map_err(|_| perr(lno + 1, f.0, "invalid number"))
    };
    let max_var = parse_num(fields[1], lno)?;
    let n_in = parse_num(fields[2], lno)?;
    let n_latch = parse_num(fields[3], lno)?;
    let n_out = parse_num(fields[4], lno)?;
    let n_and = parse_num(fields[5], lno)?;
    if n_latch != 0 {
        return Err(perr(lno + 1, fields[3].0, "latches are not supported"));
    }
    if max_var != n_in + n_and {
        return Err(perr(lno + 1, fields[1].0, "M must equal I + A for this subset"));
    }

    let mut aig = Aig::new("aag");
    let mut pi_lits = Vec::with_capacity(n_in as usize);
    for _ in 0..n_in {
        let (lno, line) = lines
            .next()
            .ok_or_else(|| perr(eof_line, 1, "unexpected end of input list"))?;
        let lit = parse_num((1, line.trim()), lno)?;
        let expect = aig.add_pi();
        if lit != expect.raw() {
            return Err(perr(lno + 1, 1, "inputs must be consecutive even literals"));
        }
        pi_lits.push(expect);
    }
    let mut out_lits = Vec::with_capacity(n_out as usize);
    for _ in 0..n_out {
        let (lno, line) = lines
            .next()
            .ok_or_else(|| perr(eof_line, 1, "unexpected end of output list"))?;
        let lit = Lit::from_raw(parse_num((1, line.trim()), lno)?);
        // After the AND section the node count is exactly max_var + 1
        // (M = I + A is enforced above), so an out-of-range output
        // literal is detectable here — and would otherwise panic later.
        if lit.node() > max_var {
            return Err(perr(lno + 1, 1, "output literal references a nonexistent node"));
        }
        out_lits.push(lit);
    }
    for _ in 0..n_and {
        let (lno, line) = lines
            .next()
            .ok_or_else(|| perr(eof_line, 1, "unexpected end of AND list"))?;
        let nums = fields_with_cols(line);
        if nums.len() != 3 {
            return Err(perr(lno + 1, 1, "AND line needs `lhs rhs0 rhs1`"));
        }
        let lhs = parse_num(nums[0], lno)?;
        let a = Lit::from_raw(parse_num(nums[1], lno)?);
        let b = Lit::from_raw(parse_num(nums[2], lno)?);
        if lhs % 2 != 0 {
            return Err(perr(lno + 1, nums[0].0, "AND lhs must be even"));
        }
        let node = lhs / 2;
        if node as usize != aig.node_count() {
            return Err(perr(lno + 1, nums[0].0, "AND definitions must be in order"));
        }
        if a.node() >= node || b.node() >= node {
            return Err(perr(lno + 1, nums[1].0, "AND fanin references a later node"));
        }
        let got = aig.and2(a, b);
        // Structural hashing may fold the node; re-emit an explicit node
        // is not possible, so require the writer's canonical form.
        if got.node() as usize != node as usize {
            return Err(perr(
                lno + 1,
                nums[0].0,
                "AND folds to an existing node; input is not in canonical form",
            ));
        }
    }
    // Symbol table and comments.
    let mut names: HashMap<usize, String> = HashMap::new();
    let mut design_name: Option<String> = None;
    let mut in_comment = false;
    for (_, line) in lines {
        let line = line.trim();
        if in_comment {
            if design_name.is_none() && !line.is_empty() {
                design_name = Some(line.to_owned());
            }
            continue;
        }
        if line == "c" {
            in_comment = true;
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(k) = idx.parse::<usize>() {
                    names.insert(k, name.to_owned());
                }
            }
        }
    }
    for (k, lit) in out_lits.into_iter().enumerate() {
        let name = names.get(&k).cloned().unwrap_or_else(|| format!("o{k}"));
        aig.add_po(name, lit);
    }
    if let Some(name) = design_name {
        aig.set_name(name);
    }
    aig.check()?;
    Ok(aig)
}

/// Serialize a netlist in a BLIF-style `.gate` format.
#[must_use]
pub fn write_blif(netlist: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name());
    let pi_names: Vec<&str> = netlist
        .primary_inputs()
        .iter()
        .map(|&n| netlist.nets()[n as usize].name.as_str())
        .collect();
    let _ = writeln!(out, ".inputs {}", pi_names.join(" "));
    let po_names: Vec<String> = netlist
        .primary_outputs()
        .iter()
        .map(|(name, _)| name.clone())
        .collect();
    let _ = writeln!(out, ".outputs {}", po_names.join(" "));
    for cell in netlist.cells() {
        let master = lib.cell(&cell.cell_name);
        let mut parts = vec![format!(".gate {}", cell.cell_name)];
        if let Ok(master) = master {
            for (pin, &net) in master.input_pins().zip(cell.inputs.iter()) {
                parts.push(format!("{}={}", pin.name, netlist.nets()[net as usize].name));
            }
            parts.push(format!(
                "{}={}",
                master.output_pin().name,
                netlist.nets()[cell.output as usize].name
            ));
        }
        let _ = writeln!(out, "{}", parts.join(" "));
    }
    // Alias lines: connect PO port names to their nets when they differ.
    for (name, net) in netlist.primary_outputs() {
        let net_name = &netlist.nets()[*net as usize].name;
        if name != net_name {
            let _ = writeln!(out, "# alias {name} = {net_name}");
        }
    }
    let _ = writeln!(out, ".end");
    out
}

/// Parse the BLIF-style subset produced by [`write_blif`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input or references to
/// cells missing from `lib`.
pub fn read_blif(text: &str, lib: &Library) -> Result<Netlist, NetlistError> {
    let perr = |line: usize, col: usize, message: String| NetlistError::Parse { line, col, message };
    let mut name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    // Remember where each `.outputs` name sat so late failures (an
    // output referencing a net nothing drives) still carry a position.
    let mut outputs: Vec<(usize, usize, String)> = Vec::new();
    // (source line, master col, cell name, [(formal, actual)] bindings).
    type BlifGate = (usize, usize, String, Vec<(String, String)>);
    let mut gates: Vec<BlifGate> = Vec::new();
    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Column of the first payload token, relative to the raw line.
        let indent = raw.len() - raw.trim_start().len();
        if let Some(rest) = line.strip_prefix(".model ") {
            name = rest.trim().to_owned();
        } else if let Some(rest) = line.strip_prefix(".inputs ") {
            inputs.extend(rest.split_whitespace().map(str::to_owned));
        } else if line.strip_prefix(".outputs ").is_some() {
            for (col, field) in fields_with_cols(raw).into_iter().skip(1) {
                outputs.push((lno + 1, col, field.to_owned()));
            }
        } else if line.strip_prefix(".gate ").is_some() {
            let fields = fields_with_cols(raw);
            let Some(&(master_col, master)) = fields.get(1) else {
                return Err(perr(lno + 1, indent + 1, "missing gate master".into()));
            };
            let mut conns = Vec::new();
            for &(col, f) in &fields[2..] {
                let (pin, net) = f
                    .split_once('=')
                    .ok_or_else(|| perr(lno + 1, col, format!("bad connection `{f}`")))?;
                conns.push((pin.to_owned(), net.to_owned()));
            }
            gates.push((lno + 1, master_col, master.to_owned(), conns));
        } else if line == ".end" {
            break;
        } else {
            return Err(perr(lno + 1, indent + 1, format!("unrecognized line `{line}`")));
        }
    }

    let mut nl = Netlist::new(name, lib.name());
    let mut net_ids: HashMap<String, u32> = HashMap::new();
    for pi in &inputs {
        let id = nl.add_input(pi.clone());
        net_ids.insert(pi.clone(), id);
    }
    // Pre-create nets so gates can reference them in any order.
    let intern = |nl: &mut Netlist, net_ids: &mut HashMap<String, u32>, n: &str| -> u32 {
        if let Some(&id) = net_ids.get(n) {
            id
        } else {
            let id = nl.add_net(n.to_owned());
            net_ids.insert(n.to_owned(), id);
            id
        }
    };
    for (lno, master_col, master_name, conns) in &gates {
        let master = lib
            .cell(master_name)
            .map_err(|e| perr(*lno, *master_col, e.to_string()))?;
        let mut by_pin: HashMap<&str, &str> = HashMap::new();
        for (pin, net) in conns {
            by_pin.insert(pin.as_str(), net.as_str());
        }
        let mut input_nets = Vec::new();
        for pin in master.input_pins() {
            let net = by_pin.get(pin.name.as_str()).ok_or_else(|| {
                perr(*lno, *master_col, format!("missing pin `{}` on {master_name}", pin.name))
            })?;
            input_nets.push(intern(&mut nl, &mut net_ids, net));
        }
        let out_pin = master.output_pin().name.clone();
        let out_net_name = by_pin
            .get(out_pin.as_str())
            .ok_or_else(|| perr(*lno, *master_col, format!("missing output pin `{out_pin}`")))?;
        let out_net = intern(&mut nl, &mut net_ids, out_net_name);
        // Output nets must not already be driven: `add_cell` would
        // panic on a double driver, so reject torn input up front.
        if nl.nets()[out_net as usize].driver.is_some() {
            return Err(perr(
                *lno,
                *master_col,
                format!("net `{out_net_name}` already has a driver"),
            ));
        }
        let inst = format!("g{}", nl.cell_count());
        nl.add_cell(inst, master.name.clone(), master.kind, input_nets, out_net);
    }
    for (lno, col, po) in &outputs {
        let &id = net_ids
            .get(po)
            .ok_or_else(|| perr(*lno, *col, format!("output `{po}` references unknown net")))?;
        nl.add_output(po.clone(), id);
    }
    Ok(nl)
}

/// Serialize a netlist as structural Verilog (gate-level instantiations
/// of the library masters). Write-only: the module is meant for
/// inspection and hand-off to external tools, not re-import.
#[must_use]
pub fn write_verilog(netlist: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let sanitize = |name: &str| name.replace(['.', '[', ']'], "_");
    let pi_names: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|&n| sanitize(&netlist.nets()[n as usize].name))
        .collect();
    let po_names: Vec<String> = netlist
        .primary_outputs()
        .iter()
        .map(|(name, _)| sanitize(name))
        .collect();
    let _ = writeln!(out, "module {} (", sanitize(netlist.name()));
    let ports: Vec<String> = pi_names
        .iter()
        .map(|p| format!("  input  {p}"))
        .chain(po_names.iter().map(|p| format!("  output {p}")))
        .collect();
    let _ = writeln!(out, "{}\n);", ports.join(",\n"));

    // Wire declarations for internal nets.
    use std::collections::HashSet;
    let port_nets: HashSet<u32> = netlist
        .primary_inputs()
        .iter()
        .copied()
        .chain(netlist.primary_outputs().iter().map(|(_, n)| *n))
        .collect();
    for (ni, net) in netlist.nets().iter().enumerate() {
        if !port_nets.contains(&(ni as u32)) {
            let _ = writeln!(out, "  wire {};", sanitize(&net.name));
        }
    }
    // PO aliasing: when a PO port name differs from its net, emit assign.
    for (name, net) in netlist.primary_outputs() {
        let net_name = sanitize(&netlist.nets()[*net as usize].name);
        let port = sanitize(name);
        if port != net_name && !netlist.primary_inputs().contains(net) {
            // The net itself is the port in this writer; nothing to do
            // unless another port aliases it.
            let _ = (&port, &net_name);
        }
    }
    for cell in netlist.cells() {
        let Ok(master) = lib.cell(&cell.cell_name) else {
            continue;
        };
        let mut conns: Vec<String> = master
            .input_pins()
            .zip(&cell.inputs)
            .map(|(pin, &net)| {
                format!(".{}({})", pin.name, sanitize(&netlist.nets()[net as usize].name))
            })
            .collect();
        conns.push(format!(
            ".{}({})",
            master.output_pin().name,
            sanitize(&netlist.nets()[cell.output as usize].name)
        ));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.cell_name,
            sanitize(&cell.name),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Round-trip helper used by tests: whether two netlists are structurally
/// identical up to net ids (same drivers, same cell masters, same pin
/// wiring by name).
#[must_use]
pub fn netlists_equivalent(a: &Netlist, b: &Netlist) -> bool {
    if a.cell_count() != b.cell_count()
        || a.net_count() != b.net_count()
        || a.primary_inputs().len() != b.primary_inputs().len()
        || a.primary_outputs().len() != b.primary_outputs().len()
    {
        return false;
    }
    let net_name = |nl: &Netlist, id: u32| nl.nets()[id as usize].name.clone();
    for (ca, cb) in a.cells().iter().zip(b.cells()) {
        if ca.cell_name != cb.cell_name || ca.inputs.len() != cb.inputs.len() {
            return false;
        }
        if net_name(a, ca.output) != net_name(b, cb.output) {
            return false;
        }
        for (&ia, &ib) in ca.inputs.iter().zip(&cb.inputs) {
            if net_name(a, ia) != net_name(b, ib) {
                return false;
            }
        }
    }
    for (na, nb) in a.nets().iter().zip(b.nets()) {
        let da = matches!(na.driver, Some(NetDriver::PrimaryInput(_)));
        let db = matches!(nb.driver, Some(NetDriver::PrimaryInput(_)));
        if na.name != nb.name || da != db {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use eda_cloud_tech::CellKind;

    #[test]
    fn aag_roundtrip_preserves_structure_and_function() {
        let aig = generators::adder(4);
        let text = write_aag(&aig);
        let back = read_aag(&text).expect("parse own output");
        assert_eq!(back.input_count(), aig.input_count());
        assert_eq!(back.output_count(), aig.output_count());
        assert_eq!(back.and_count(), aig.and_count());
        assert_eq!(back.name(), aig.name());
        // Function preserved.
        let inputs = [true, false, true, false, false, true, true, false];
        assert_eq!(
            back.simulate(&inputs).unwrap(),
            aig.simulate(&inputs).unwrap()
        );
    }

    #[test]
    fn aag_rejects_garbage() {
        assert!(read_aag("").is_err());
        assert!(read_aag("not an aig").is_err());
        assert!(read_aag("aag 1 1 1 0 0\n2\n").is_err(), "latches rejected");
        assert!(read_aag("aag 5 1 0 0 0\n2\n").is_err(), "M mismatch");
    }

    #[test]
    fn aag_header_counts_match_body() {
        let aig = generators::parity(8);
        let text = write_aag(&aig);
        let header: Vec<&str> = text.lines().next().unwrap().split(' ').collect();
        let n_and: usize = header[5].parse().unwrap();
        assert_eq!(n_and, aig.and_count());
    }

    #[test]
    fn blif_roundtrip() {
        let lib = Library::synthetic_14nm();
        let mut nl = Netlist::new("rt", lib.name());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_net("n1");
        let y = nl.add_net("y");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], n1);
        nl.add_cell("u2", "INV_X1", CellKind::Inv, vec![n1], y);
        nl.add_output("y", y);

        let text = write_blif(&nl, &lib);
        let back = read_blif(&text, &lib).expect("parse own output");
        assert!(netlists_equivalent(&nl, &back), "structural round-trip");
        for (va, vb) in [(false, false), (true, true), (true, false)] {
            assert_eq!(
                back.simulate(&[va, vb]).unwrap(),
                nl.simulate(&[va, vb]).unwrap()
            );
        }
    }

    #[test]
    fn verilog_writer_emits_module() {
        let lib = Library::synthetic_14nm();
        let mut nl = Netlist::new("vtest", lib.name());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], y);
        nl.add_output("y", y);
        let v = write_verilog(&nl, &lib);
        assert!(v.contains("module vtest"));
        assert!(v.contains("input  a"));
        assert!(v.contains("output y"));
        assert!(v.contains("NAND2_X1 u1 (.A(a), .B(b), .Y(y));"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn verilog_writer_sanitizes_names() {
        let lib = Library::synthetic_14nm();
        let mut nl = Netlist::new("top.mod", lib.name());
        let a = nl.add_input("a[0]");
        let y = nl.add_net("y.z");
        nl.add_cell("u.1", "INV_X1", CellKind::Inv, vec![a], y);
        nl.add_output("out", y);
        let v = write_verilog(&nl, &lib);
        assert!(v.contains("module top_mod"));
        assert!(v.contains("a_0_"));
        assert!(!v.contains("y.z"));
    }

    #[test]
    fn blif_rejects_unknown_master() {
        let lib = Library::synthetic_14nm();
        let text = ".model x\n.inputs a\n.outputs y\n.gate FROB_X1 A=a Y=y\n.end\n";
        let err = read_blif(text, &lib).unwrap_err();
        assert!(err.to_string().contains("FROB_X1"));
    }

    #[test]
    fn blif_rejects_missing_pin() {
        let lib = Library::synthetic_14nm();
        let text = ".model x\n.inputs a\n.outputs y\n.gate NAND2_X1 A=a Y=y\n.end\n";
        assert!(read_blif(text, &lib).is_err());
    }

    #[test]
    fn parse_errors_carry_positions() {
        // Truncated AND list: the error points one past the last line,
        // never the old `line 0`.
        let truncated = "aag 2 1 0 1 1\n2\n4\n";
        let err = read_aag(truncated).unwrap_err();
        match err {
            NetlistError::Parse { line, col, .. } => {
                assert_eq!(line, 4, "position is one past the torn document");
                assert!(col >= 1);
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        // A bad token points at its column.
        let bad_token = "aag 1 xx 0 0 1\n";
        match read_aag(bad_token).unwrap_err() {
            NetlistError::Parse { line: 1, col, .. } => assert_eq!(col, 7),
            other => panic!("expected positioned Parse, got {other:?}"),
        }
        // BLIF: an output referencing an unknown net names its line.
        let lib = Library::synthetic_14nm();
        let text = ".model x\n.inputs a\n.outputs ghost\n.end\n";
        match read_blif(text, &lib).unwrap_err() {
            NetlistError::Parse { line, col, message } => {
                assert_eq!(line, 3);
                assert_eq!(col, 10);
                assert!(message.contains("ghost"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn blif_double_driver_is_a_typed_error_not_a_panic() {
        let lib = Library::synthetic_14nm();
        let text = "\
.model dd
.inputs a b
.outputs y
.gate INV_X1 A=a Y=y
.gate INV_X1 A=b Y=y
.end
";
        match read_blif(text, &lib).unwrap_err() {
            NetlistError::Parse { line: 5, message, .. } => {
                assert!(message.contains("already has a driver"), "{message}");
            }
            other => panic!("expected positioned Parse, got {other:?}"),
        }
    }

    #[test]
    fn readers_never_panic_on_torn_or_garbage_input() {
        // Fuzz-shaped: every prefix of a valid document plus byte-level
        // mutations must produce Ok or a typed error, never a panic.
        let lib = Library::synthetic_14nm();
        let aag = write_aag(&generators::adder(4));
        for cut in 0..aag.len() {
            let _ = read_aag(&aag[..cut]);
        }
        let mut nl = Netlist::new("fz", lib.name());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], y);
        nl.add_output("y", y);
        let blif = write_blif(&nl, &lib);
        for cut in 0..blif.len() {
            let _ = read_blif(&blif[..cut], &lib);
        }
        // Deterministic byte mutations (no RNG needed: every position,
        // a handful of replacement bytes).
        for pos in 0..aag.len() {
            for byte in [b'0', b'9', b' ', b'\n', b'~'] {
                let mut bytes = aag.clone().into_bytes();
                bytes[pos] = byte;
                if let Ok(s) = String::from_utf8(bytes) {
                    let _ = read_aag(&s);
                }
            }
        }
        for pos in 0..blif.len() {
            for byte in [b'0', b'=', b' ', b'\n', b'~'] {
                let mut bytes = blif.clone().into_bytes();
                bytes[pos] = byte;
                if let Ok(s) = String::from_utf8(bytes) {
                    let _ = read_blif(&s, &lib);
                }
            }
        }
    }
}
