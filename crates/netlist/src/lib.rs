//! Design substrate: And-Inverter Graphs, gate-level netlists, graph
//! conversion, and synthetic benchmark generators.
//!
//! The DATE 2021 paper operates on two design representations:
//!
//! * **AIG** (And-Inverter Graph) — the intermediate representation that
//!   synthesis tools map RTL into; the runtime-prediction GCN for the
//!   synthesis stage consumes it directly ([`Aig`]).
//! * **Gate-level netlist** — the input to placement, routing, and STA;
//!   the GCN consumes its *star-model* graph where each net contributes
//!   one directed edge from the driver to every sink ([`Netlist`],
//!   [`DesignGraph::from_netlist`]).
//!
//! The paper's benchmark corpus (18 EPFL/OpenCores designs, 330 netlists)
//! is proprietary-flow-derived; [`generators`] rebuilds an equivalent
//! synthetic corpus: 18 parameterized design families whose AIGs are then
//! synthesized under different recipes by `eda-cloud-flow`.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_netlist::{generators, DesignGraph};
//!
//! let aig = generators::adder(8);
//! assert!(aig.and_count() > 0);
//! let graph = DesignGraph::from_aig(&aig);
//! assert_eq!(graph.node_count(), aig.node_count() + aig.output_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod error;
pub mod cec;
pub mod formats;
pub mod generators;
mod graph;
mod netlist;

pub use aig::{Aig, AigNode, Lit, NodeId};
pub use error::NetlistError;
pub use graph::{DesignGraph, NodeFeatures, FEATURE_DIM};
pub use netlist::{CellId, CellInst, Net, NetDriver, NetId, NetSink, Netlist, NetlistStats};
