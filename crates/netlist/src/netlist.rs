//! Gate-level netlist: cells, nets, pins.

use crate::NetlistError;
use eda_cloud_tech::{CellKind, Library};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a cell instance inside a [`Netlist`].
pub type CellId = u32;
/// Index of a net inside a [`Netlist`].
pub type NetId = u32;

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetDriver {
    /// Driven by primary input number `n`.
    PrimaryInput(u32),
    /// Driven by the output pin of a cell.
    Cell(CellId),
}

/// A consumer of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetSink {
    /// Input pin `pin` of a cell.
    CellPin {
        /// The consuming cell.
        cell: CellId,
        /// Input-pin position on that cell.
        pin: u32,
    },
    /// Primary output number `n`.
    PrimaryOutput(u32),
}

/// An instantiated standard cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellInst {
    /// Instance name (unique within the netlist).
    pub name: String,
    /// Library master name (e.g. `"NAND2_X1"`).
    pub cell_name: String,
    /// Function class, cached from the master for fast access.
    pub kind: CellKind,
    /// Nets connected to the input pins, in pin order.
    pub inputs: Vec<NetId>,
    /// Net driven by the output pin.
    pub output: NetId,
}

/// A net: one driver, many sinks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The driver, if connected.
    pub driver: Option<NetDriver>,
    /// All sinks.
    pub sinks: Vec<NetSink>,
}

/// Summary statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of cell instances.
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of sequential cells.
    pub sequential: usize,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Mean sinks per net.
    pub avg_fanout: f64,
    /// Largest sink count on any net.
    pub max_fanout: usize,
    /// Combinational logic depth in cell levels.
    pub depth: usize,
}

/// A gate-level netlist over a standard-cell [`Library`].
///
/// # Examples
///
/// ```
/// use eda_cloud_netlist::Netlist;
/// use eda_cloud_tech::{CellKind, Library};
///
/// let lib = Library::synthetic_14nm();
/// let mut nl = Netlist::new("toy", lib.name());
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_net("y");
/// nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], y);
/// nl.add_output("y", y);
/// nl.check().expect("well-formed");
/// assert_eq!(nl.stats(&lib).cells, 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    library: String,
    cells: Vec<CellInst>,
    nets: Vec<Net>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Create an empty netlist bound to a library by name.
    #[must_use]
    pub fn new(name: impl Into<String>, library: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            library: library.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Name of the library the cells reference.
    #[must_use]
    pub fn library(&self) -> &str {
        &self.library
    }

    /// All cell instances (index = [`CellId`]).
    #[must_use]
    pub fn cells(&self) -> &[CellInst] {
        &self.cells
    }

    /// All nets (index = [`NetId`]).
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Nets driven by primary inputs, in input order.
    #[must_use]
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs as (port name, net) pairs.
    #[must_use]
    pub fn primary_outputs(&self) -> &[(String, NetId)] {
        &self.primary_outputs
    }

    /// Number of cell instances.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Add an unconnected net and return its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.nets.len() as NetId;
        self.nets.push(Net {
            name: name.into(),
            driver: None,
            sinks: Vec::new(),
        });
        id
    }

    /// Add a primary input port; creates and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let net = self.add_net(name);
        let pi_idx = self.primary_inputs.len() as u32;
        self.nets[net as usize].driver = Some(NetDriver::PrimaryInput(pi_idx));
        self.primary_inputs.push(net);
        net
    }

    /// Mark `net` as a primary output named `name`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        let po_idx = self.primary_outputs.len() as u32;
        self.nets[net as usize]
            .sinks
            .push(NetSink::PrimaryOutput(po_idx));
        self.primary_outputs.push((name.into(), net));
    }

    /// Instantiate a cell, wiring its pins, and return its id.
    ///
    /// # Panics
    ///
    /// Panics if any referenced net is out of range or the output net
    /// already has a driver.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell_name: impl Into<String>,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
    ) -> CellId {
        let id = self.cells.len() as CellId;
        for (pin, &net) in inputs.iter().enumerate() {
            assert!((net as usize) < self.nets.len(), "input net out of range");
            self.nets[net as usize].sinks.push(NetSink::CellPin {
                cell: id,
                pin: pin as u32,
            });
        }
        assert!(
            (output as usize) < self.nets.len(),
            "output net out of range"
        );
        let slot = &mut self.nets[output as usize].driver;
        assert!(
            slot.is_none(),
            "net `{}` already driven",
            self.nets[output as usize].name
        );
        *slot = Some(NetDriver::Cell(id));
        self.cells.push(CellInst {
            name: name.into(),
            cell_name: cell_name.into(),
            kind,
            inputs,
            output,
        });
        id
    }

    /// Validate structural invariants: every net driven exactly once, all
    /// references in range, and the combinational part acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn check(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(NetlistError::Undriven(net.name.clone()));
            }
        }
        for cell in &self.cells {
            for &n in cell.inputs.iter().chain(std::iter::once(&cell.output)) {
                if n as usize >= self.nets.len() {
                    return Err(NetlistError::InvalidReference {
                        what: "net",
                        index: n as usize,
                        len: self.nets.len(),
                    });
                }
            }
        }
        self.topological_cells().map(|_| ())
    }

    /// Cells in combinational topological order (sequential cells are
    /// treated as sources: their outputs are available at time zero).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if a cycle of
    /// combinational cells exists.
    pub fn topological_cells(&self) -> Result<Vec<CellId>, NetlistError> {
        // Kahn's algorithm over combinational dependencies.
        let mut indeg = vec![0u32; self.cells.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            if cell.kind.is_sequential() {
                continue; // outputs available immediately
            }
            for &inet in &cell.inputs {
                if let Some(NetDriver::Cell(driver)) = self.nets[inet as usize].driver {
                    if !self.cells[driver as usize].kind.is_sequential() {
                        indeg[ci] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<CellId> = (0..self.cells.len() as CellId)
            .filter(|&c| indeg[c as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.cells.len());
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            order.push(c);
            if self.cells[c as usize].kind.is_sequential() {
                // Edges from sequential drivers were never counted.
                continue;
            }
            let out = self.cells[c as usize].output;
            for sink in &self.nets[out as usize].sinks {
                if let NetSink::CellPin { cell, .. } = *sink {
                    if !self.cells[cell as usize].kind.is_sequential() {
                        indeg[cell as usize] -= 1;
                        if indeg[cell as usize] == 0 {
                            queue.push(cell);
                        }
                    }
                }
            }
        }
        if order.len() != self.cells.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Evaluate the combinational netlist on one input vector.
    ///
    /// Sequential cells pass their data input through (a one-cycle view),
    /// which is sufficient for the structural-equivalence checks used by
    /// the synthesis tests.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on input-count mismatch or
    /// [`NetlistError::CombinationalCycle`] if the design is cyclic.
    pub fn simulate(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.primary_inputs.len() {
            return Err(NetlistError::InputArity {
                got: inputs.len(),
                expected: self.primary_inputs.len(),
            });
        }
        let order = self.topological_cells()?;
        let mut value = vec![false; self.nets.len()];
        for (i, &net) in self.primary_inputs.iter().enumerate() {
            value[net as usize] = inputs[i];
        }
        for &cid in &order {
            let cell = &self.cells[cid as usize];
            let ins: Vec<bool> = cell
                .inputs
                .iter()
                .map(|&n| value[n as usize])
                .take(cell.kind.input_count())
                .collect();
            value[cell.output as usize] = cell.kind.eval(&ins);
        }
        Ok(self
            .primary_outputs
            .iter()
            .map(|(_, n)| value[*n as usize])
            .collect())
    }

    /// Combinational depth in cell levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        let Ok(order) = self.topological_cells() else {
            return 0;
        };
        let mut level = vec![0usize; self.cells.len()];
        let mut max = 0;
        for &cid in &order {
            let cell = &self.cells[cid as usize];
            if cell.kind.is_sequential() {
                continue;
            }
            let mut l = 0;
            for &inet in &cell.inputs {
                if let Some(NetDriver::Cell(d)) = self.nets[inet as usize].driver {
                    if !self.cells[d as usize].kind.is_sequential() {
                        l = l.max(level[d as usize] + 1);
                    }
                }
            }
            level[cid as usize] = l.max(1);
            max = max.max(level[cid as usize]);
        }
        max
    }

    /// Compute summary statistics against a library.
    #[must_use]
    pub fn stats(&self, lib: &Library) -> NetlistStats {
        let area: f64 = self
            .cells
            .iter()
            .map(|c| lib.cell(&c.cell_name).map(|m| m.area_um2).unwrap_or(0.0))
            .sum();
        let sinks: usize = self.nets.iter().map(|n| n.sinks.len()).sum();
        let max_fanout = self.nets.iter().map(|n| n.sinks.len()).max().unwrap_or(0);
        NetlistStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            inputs: self.primary_inputs.len(),
            outputs: self.primary_outputs.len(),
            sequential: self
                .cells
                .iter()
                .filter(|c| c.kind.is_sequential())
                .count(),
            area_um2: area,
            avg_fanout: if self.nets.is_empty() {
                0.0
            } else {
                sinks as f64 / self.nets.len() as f64
            },
            max_fanout,
            depth: self.depth(),
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} cells, {} nets, {} PIs, {} POs",
            self.name,
            self.cells.len(),
            self.nets.len(),
            self.primary_inputs.len(),
            self.primary_outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_xor() -> Netlist {
        // y = a XOR b built from 4 NAND2s.
        let mut nl = Netlist::new("xor_nand", "synth14");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        let n3 = nl.add_net("n3");
        let y = nl.add_net("y");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, b], n1);
        nl.add_cell("u2", "NAND2_X1", CellKind::Nand2, vec![a, n1], n2);
        nl.add_cell("u3", "NAND2_X1", CellKind::Nand2, vec![b, n1], n3);
        nl.add_cell("u4", "NAND2_X1", CellKind::Nand2, vec![n2, n3], y);
        nl.add_output("y", y);
        nl
    }

    #[test]
    fn xor_from_nands_simulates() {
        let nl = nand_xor();
        nl.check().expect("well-formed");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(nl.simulate(&[a, b]).unwrap(), vec![a ^ b]);
        }
    }

    #[test]
    fn depth_of_xor_nand_is_three() {
        assert_eq!(nand_xor().depth(), 3);
    }

    #[test]
    fn stats_are_consistent() {
        let lib = Library::synthetic_14nm();
        let nl = nand_xor();
        let s = nl.stats(&lib);
        assert_eq!(s.cells, 4);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.sequential, 0);
        assert!(s.area_um2 > 1.0);
        assert!(s.avg_fanout > 0.0);
        assert!(s.max_fanout >= 2); // n1 feeds u2 and u3
    }

    #[test]
    fn undriven_net_detected() {
        let mut nl = Netlist::new("bad", "synth14");
        let a = nl.add_input("a");
        let dangling = nl.add_net("dangling");
        let y = nl.add_net("y");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, dangling], y);
        nl.add_output("y", y);
        assert_eq!(
            nl.check().unwrap_err(),
            NetlistError::Undriven("dangling".to_owned())
        );
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc", "synth14");
        let a = nl.add_input("a");
        let n1 = nl.add_net("n1");
        let n2 = nl.add_net("n2");
        nl.add_cell("u1", "NAND2_X1", CellKind::Nand2, vec![a, n2], n1);
        nl.add_cell("u2", "NAND2_X1", CellKind::Nand2, vec![a, n1], n2);
        nl.add_output("y", n2);
        assert_eq!(nl.check().unwrap_err(), NetlistError::CombinationalCycle);
    }

    #[test]
    fn dff_breaks_cycle() {
        // A DFF in a loop is a legal sequential circuit.
        let mut nl = Netlist::new("seq", "synth14");
        let clk = nl.add_input("clk");
        let n1 = nl.add_net("n1");
        let q = nl.add_net("q");
        nl.add_cell("inv", "INV_X1", CellKind::Inv, vec![q], n1);
        nl.add_cell("ff", "DFF_X1", CellKind::Dff, vec![n1, clk], q);
        nl.add_output("q", q);
        nl.check().expect("sequential loop is fine");
        let s = nl.stats(&Library::synthetic_14nm());
        assert_eq!(s.sequential, 1);
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_driver_panics() {
        let mut nl = Netlist::new("bad", "synth14");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_net("y");
        nl.add_cell("u1", "INV_X1", CellKind::Inv, vec![a], y);
        nl.add_cell("u2", "INV_X1", CellKind::Inv, vec![b], y);
    }

    #[test]
    fn arity_error_on_simulate() {
        let nl = nand_xor();
        assert!(matches!(
            nl.simulate(&[true]).unwrap_err(),
            NetlistError::InputArity {
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn display_mentions_counts() {
        let text = nand_xor().to_string();
        assert!(text.contains("4 cells"));
        assert!(text.contains("2 PIs"));
    }
}
