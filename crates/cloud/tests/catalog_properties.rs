//! Property-based tests for the cloud substrate.

use eda_cloud_cloud::{Catalog, Host, InstanceFamily, Pricing, SpotMarket};
use proptest::prelude::*;

proptest! {
    /// Billing is monotone and positively priced for every instance.
    #[test]
    fn billing_monotone(secs_a in 0.0f64..100_000.0, secs_b in 0.0f64..100_000.0) {
        let catalog = Catalog::aws_like();
        let (lo, hi) = if secs_a <= secs_b { (secs_a, secs_b) } else { (secs_b, secs_a) };
        for instance in catalog.instances() {
            let p = catalog.pricing();
            prop_assert!(p.cost_usd(instance, lo) <= p.cost_usd(instance, hi) + 1e-12);
            prop_assert!(p.cost_usd(instance, hi) > 0.0);
        }
    }

    /// Billed seconds are never below the runtime or the minimum.
    #[test]
    fn billed_secs_lower_bounds(secs in 0.0f64..1e6) {
        let p = Pricing::per_second();
        let billed = p.billed_secs(secs);
        prop_assert!(billed as f64 >= secs.max(0.0).floor());
        prop_assert!(billed >= p.min_billed_secs);
    }

    /// A host can always be filled exactly to capacity with 1-vCPU
    /// placements and never beyond.
    #[test]
    fn host_capacity_is_exact(cores in 1u32..32) {
        let catalog = Catalog::aws_like();
        let small = catalog.instance("m5.medium").expect("1 vCPU size");
        let mut host = Host::with_cores(cores);
        for _ in 0..cores {
            prop_assert!(host.place(small).is_ok());
        }
        prop_assert!(host.place(small).is_err());
    }

    /// Spot completion probability is a proper probability and decreases
    /// with runtime.
    #[test]
    fn spot_probability_sane(secs in 0.0f64..1e7, frac in 0.01f64..0.99) {
        let market = SpotMarket { price_fraction: 0.3, interruption_per_hour: frac };
        let p = market.completion_probability(secs);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(market.completion_probability(secs + 3600.0) <= p + 1e-12);
    }
}

#[test]
fn every_family_is_price_ordered_by_size() {
    let catalog = Catalog::aws_like();
    for family in [
        InstanceFamily::GeneralPurpose,
        InstanceFamily::MemoryOptimized,
        InstanceFamily::ComputeOptimized,
    ] {
        let sizes = catalog.family_sizes(family);
        for pair in sizes.windows(2) {
            assert!(pair[0].price_per_hour < pair[1].price_per_hour, "{family}");
            assert!(pair[0].vcpus < pair[1].vcpus, "{family}");
        }
    }
}
