//! Simulated VM lifecycle.

use crate::{CloudError, InstanceType, Pricing};
use serde::{Deserialize, Serialize};

/// Lifecycle state of a provisioned VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// Requested; booting until `ready_at`.
    Pending,
    /// Booted and accepting work.
    Running,
    /// Shut down; billing stopped.
    Terminated,
}

/// A provisioned virtual machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Monotonic id assigned by the [`Provisioner`].
    pub id: u64,
    /// The purchased configuration.
    pub instance: InstanceType,
    /// Current lifecycle state.
    pub state: VmState,
    /// Simulation time the VM was requested.
    pub launched_at: f64,
    /// Simulation time the VM becomes `Running`.
    pub ready_at: f64,
    /// Simulation time the VM terminated (if it did).
    pub terminated_at: Option<f64>,
}

/// What one job execution cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// VM the job ran on.
    pub vm_id: u64,
    /// Instance name.
    pub instance: String,
    /// Job runtime in seconds (excluding boot).
    pub runtime_secs: f64,
    /// Seconds billed (boot + runtime, rounded per the pricing rules).
    pub billed_secs: u64,
    /// Total cost in USD.
    pub cost_usd: f64,
}

/// Simulated provisioning service with a virtual clock.
///
/// # Examples
///
/// ```
/// use eda_cloud_cloud::{Catalog, Provisioner};
///
/// let catalog = Catalog::aws_like();
/// let mut cloud = Provisioner::new(catalog.pricing().clone());
/// let vm = cloud.launch(catalog.instance("m5.large")?.clone());
/// let record = cloud.run_job(vm, 120.0)?;
/// assert!(record.cost_usd > 0.0);
/// # Ok::<(), eda_cloud_cloud::CloudError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provisioner {
    pricing: Pricing,
    boot_secs: f64,
    clock: f64,
    vms: Vec<Vm>,
}

impl Provisioner {
    /// Service with a 30-second boot time.
    #[must_use]
    pub fn new(pricing: Pricing) -> Self {
        Self {
            pricing,
            boot_secs: 30.0,
            clock: 0.0,
            vms: Vec::new(),
        }
    }

    /// Current simulation time in seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Provisioned VMs (all states).
    #[must_use]
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Request a VM; returns its id. The VM is `Pending` until the boot
    /// interval elapses (advanced by [`Provisioner::run_job`] or
    /// [`Provisioner::advance`]).
    pub fn launch(&mut self, instance: InstanceType) -> u64 {
        let id = self.vms.len() as u64;
        self.vms.push(Vm {
            id,
            instance,
            state: VmState::Pending,
            launched_at: self.clock,
            ready_at: self.clock + self.boot_secs,
            terminated_at: None,
        });
        id
    }

    /// Advance the virtual clock, transitioning pending VMs that finish
    /// booting.
    pub fn advance(&mut self, dt_secs: f64) {
        self.clock += dt_secs.max(0.0);
        for vm in &mut self.vms {
            if vm.state == VmState::Pending && self.clock >= vm.ready_at {
                vm.state = VmState::Running;
            }
        }
    }

    /// Advance the virtual clock to an absolute time (no-op when `t_secs`
    /// is in the past — the clock never moves backwards).
    pub fn advance_to(&mut self, t_secs: f64) {
        if t_secs > self.clock {
            self.advance(t_secs - self.clock);
        }
    }

    /// Look up a VM by id.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownVm`] for a bad id.
    pub fn vm(&self, vm_id: u64) -> Result<&Vm, CloudError> {
        usize::try_from(vm_id)
            .ok()
            .and_then(|idx| self.vms.get(idx))
            .ok_or(CloudError::UnknownVm(vm_id))
    }

    /// Assert the VM can accept work *now*: it must exist, be past its
    /// boot interval, and not be terminated. Event-driven callers (the
    /// fleet simulator) use this instead of [`Provisioner::run_job`],
    /// which owns the clock.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownVm`] for a bad id and
    /// [`CloudError::InvalidState`] when the VM already terminated or is
    /// still booting (a job submitted before `ready_at`).
    pub fn begin_job(&mut self, vm_id: u64) -> Result<(), CloudError> {
        let now = self.clock;
        let idx = usize::try_from(vm_id).map_err(|_| CloudError::UnknownVm(vm_id))?;
        let vm = self.vms.get_mut(idx).ok_or(CloudError::UnknownVm(vm_id))?;
        match vm.state {
            VmState::Terminated => Err(CloudError::InvalidState {
                vm: vm_id,
                operation: "begin_job after terminate",
            }),
            VmState::Pending if now < vm.ready_at => Err(CloudError::InvalidState {
                vm: vm_id,
                operation: "begin_job before ready_at",
            }),
            VmState::Pending | VmState::Running => {
                vm.state = VmState::Running;
                Ok(())
            }
        }
    }

    /// Terminate the VM at the current clock and return its billing
    /// record. Billing runs from launch to now (boot is billed), floored
    /// at the pricing minimum; `runtime_secs` reports the post-boot time
    /// the VM was available for work.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownVm`] for a bad id and
    /// [`CloudError::InvalidState`] on a double-terminate.
    pub fn terminate(&mut self, vm_id: u64) -> Result<JobRecord, CloudError> {
        let now = self.clock;
        let idx = usize::try_from(vm_id).map_err(|_| CloudError::UnknownVm(vm_id))?;
        let vm = self.vms.get_mut(idx).ok_or(CloudError::UnknownVm(vm_id))?;
        if vm.state == VmState::Terminated {
            return Err(CloudError::InvalidState {
                vm: vm_id,
                operation: "terminate twice",
            });
        }
        vm.state = VmState::Terminated;
        vm.terminated_at = Some(now);
        let billed_wall = now - vm.launched_at;
        Ok(JobRecord {
            vm_id,
            instance: vm.instance.name.clone(),
            runtime_secs: (now - vm.ready_at).max(0.0),
            billed_secs: self.pricing.billed_secs(billed_wall),
            cost_usd: self.pricing.cost_usd(&vm.instance, billed_wall),
        })
    }

    /// Run a job of `runtime_secs` on the VM, waiting for boot first,
    /// then terminate it and return the billing record.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownVm`] for a bad id or
    /// [`CloudError::InvalidState`] if the VM already terminated.
    pub fn run_job(&mut self, vm_id: u64, runtime_secs: f64) -> Result<JobRecord, CloudError> {
        let vm = self.vm(vm_id)?;
        if vm.state == VmState::Terminated {
            return Err(CloudError::InvalidState {
                vm: vm_id,
                operation: "run_job",
            });
        }
        let ready_at = vm.ready_at;
        self.advance_to(ready_at);
        self.begin_job(vm_id)?;
        self.advance(runtime_secs.max(0.0));
        let mut record = self.terminate(vm_id)?;
        // The record reports the job's own runtime (excluding boot and
        // any pre-existing idle time on the VM).
        record.runtime_secs = runtime_secs;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;

    fn setup() -> (Catalog, Provisioner) {
        let c = Catalog::aws_like();
        let p = Provisioner::new(*c.pricing());
        (c, p)
    }

    #[test]
    fn lifecycle_pending_running_terminated() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        assert_eq!(cloud.vms()[0].state, VmState::Pending);
        cloud.advance(35.0);
        assert_eq!(cloud.vms()[0].state, VmState::Running);
        let rec = cloud.run_job(id, 100.0).expect("runs");
        assert_eq!(cloud.vms()[0].state, VmState::Terminated);
        assert!(rec.billed_secs >= 100);
    }

    #[test]
    fn boot_time_is_billed() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        let rec = cloud.run_job(id, 120.0).expect("runs");
        assert_eq!(rec.billed_secs, 150, "30s boot + 120s job");
    }

    #[test]
    fn terminated_vm_rejects_jobs() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        cloud.run_job(id, 10.0).expect("first run");
        assert!(matches!(
            cloud.run_job(id, 10.0).unwrap_err(),
            CloudError::InvalidState { .. }
        ));
    }

    #[test]
    fn unknown_vm_rejected() {
        let (_, mut cloud) = setup();
        assert_eq!(cloud.run_job(7, 1.0).unwrap_err(), CloudError::UnknownVm(7));
    }

    #[test]
    fn begin_job_before_ready_at_is_invalid_state() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        // Still booting: submitting work must error, not panic.
        let err = cloud.begin_job(id).unwrap_err();
        assert!(matches!(err, CloudError::InvalidState { vm, .. } if vm == id));
        assert!(err.to_string().contains("before ready_at"));
        // After the boot interval it succeeds.
        cloud.advance(30.0);
        cloud.begin_job(id).expect("ready VM accepts work");
        assert_eq!(cloud.vm(id).unwrap().state, VmState::Running);
    }

    #[test]
    fn double_terminate_is_invalid_state() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("c5.large").unwrap().clone());
        cloud.advance(40.0);
        cloud.terminate(id).expect("first terminate");
        let err = cloud.terminate(id).unwrap_err();
        assert!(matches!(err, CloudError::InvalidState { vm, .. } if vm == id));
        assert_eq!(cloud.terminate(99).unwrap_err(), CloudError::UnknownVm(99));
    }

    #[test]
    fn billing_after_termination_is_invalid_state() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        cloud.advance(45.0);
        cloud.terminate(id).expect("terminates");
        // Neither a new job nor a work submission may bill a dead VM.
        assert!(matches!(
            cloud.run_job(id, 10.0).unwrap_err(),
            CloudError::InvalidState { .. }
        ));
        assert!(matches!(
            cloud.begin_job(id).unwrap_err(),
            CloudError::InvalidState { .. }
        ));
    }

    #[test]
    fn terminate_bills_launch_to_now_with_minimum() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("m5.large").unwrap().clone());
        // Terminated 10 s after launch, mid-boot: minimum still applies.
        cloud.advance(10.0);
        let rec = cloud.terminate(id).expect("terminates");
        assert_eq!(rec.billed_secs, 60);
        assert_eq!(rec.runtime_secs, 0.0, "never became available for work");
        // A longer life bills wall-clock from launch.
        let id2 = cloud.launch(c.instance("m5.large").unwrap().clone());
        cloud.advance(200.0);
        let rec2 = cloud.terminate(id2).expect("terminates");
        assert_eq!(rec2.billed_secs, 200);
        assert!((rec2.runtime_secs - 170.0).abs() < 1e-9, "200s life - 30s boot");
    }

    #[test]
    fn advance_to_never_rewinds() {
        let (_, mut cloud) = setup();
        cloud.advance_to(100.0);
        assert!((cloud.now() - 100.0).abs() < 1e-12);
        cloud.advance_to(50.0);
        assert!((cloud.now() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn clock_advances_monotonically() {
        let (c, mut cloud) = setup();
        let id = cloud.launch(c.instance("c5.large").unwrap().clone());
        let t0 = cloud.now();
        cloud.run_job(id, 50.0).expect("runs");
        assert!(cloud.now() >= t0 + 80.0 - 1e-9);
        cloud.advance(-10.0); // negative time is ignored
        assert!(cloud.now() >= t0 + 80.0 - 1e-9);
    }
}
