//! Cloud-substrate errors.

use std::error::Error;
use std::fmt;

/// Errors raised by the cloud substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// No instance type with the given name exists in the catalog.
    UnknownInstance(String),
    /// The host has no free cores for the requested VM.
    InsufficientCapacity {
        /// Cores requested.
        requested: u32,
        /// Cores free on the host.
        available: u32,
    },
    /// Operation on a VM in the wrong lifecycle state.
    InvalidState {
        /// The VM id.
        vm: u64,
        /// What was attempted.
        operation: &'static str,
    },
    /// No such VM id.
    UnknownVm(u64),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::UnknownInstance(name) => write!(f, "unknown instance type `{name}`"),
            CloudError::InsufficientCapacity {
                requested,
                available,
            } => write!(
                f,
                "host capacity exhausted: requested {requested} vCPUs, {available} free"
            ),
            CloudError::InvalidState { vm, operation } => {
                write!(f, "vm {vm} cannot `{operation}` in its current state")
            }
            CloudError::UnknownVm(id) => write!(f, "no vm with id {id}"),
        }
    }
}

impl Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CloudError::UnknownInstance("z9.mega".into())
            .to_string()
            .contains("z9.mega"));
        assert!(CloudError::InsufficientCapacity {
            requested: 8,
            available: 2
        }
        .to_string()
        .contains("8 vCPUs"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CloudError>();
    }
}
