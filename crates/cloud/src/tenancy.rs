//! Hypervisor host model for multi-tenancy.

use crate::{CloudError, InstanceType};
use eda_cloud_perf::MachineConfig;
use serde::{Deserialize, Serialize};

/// How co-tenant load translates into per-VM slowdown.
///
/// The paper emulates multi-tenancy with cgroups on a 14-core Xeon; the
/// interference a tenant suffers grows with how much of the host its
/// neighbors occupy (shared LLC and memory bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenancyModel {
    /// Maximum interference (fraction of throughput lost) when the host
    /// is fully packed with other tenants.
    pub max_interference: f64,
}

impl TenancyModel {
    /// Xeon-like default: up to 18% throughput loss on a packed host.
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_interference: 0.18,
        }
    }

    /// Interference for a tenant when `neighbor_load` (0..=1) of the
    /// host's other capacity is busy.
    #[must_use]
    pub fn interference(&self, neighbor_load: f64) -> f64 {
        self.max_interference * neighbor_load.clamp(0.0, 1.0)
    }
}

impl Default for TenancyModel {
    fn default() -> Self {
        Self::new()
    }
}

/// A physical host VMs are packed onto.
///
/// # Examples
///
/// ```
/// use eda_cloud_cloud::{Catalog, Host};
///
/// let catalog = Catalog::aws_like();
/// let mut host = Host::xeon_14_core();
/// let m5 = catalog.instance("m5.2xlarge")?.clone();
/// let cfg = host.place(&m5)?;
/// assert_eq!(cfg.vcpus, 8);
/// # Ok::<(), eda_cloud_cloud::CloudError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Total hardware threads.
    pub cores: u32,
    committed: u32,
    tenancy: TenancyModel,
}

impl Host {
    /// A host shaped like the paper's testbed: 14-core Xeon E5-2680
    /// (28 threads with SMT).
    #[must_use]
    pub fn xeon_14_core() -> Self {
        Self {
            cores: 28,
            committed: 0,
            tenancy: TenancyModel::new(),
        }
    }

    /// Host with explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn with_cores(cores: u32) -> Self {
        assert!(cores > 0, "host needs at least one core");
        Self {
            cores,
            committed: 0,
            tenancy: TenancyModel::new(),
        }
    }

    /// Cores currently committed to tenants.
    #[must_use]
    pub fn committed(&self) -> u32 {
        self.committed
    }

    /// Place a VM of the given instance type; returns the machine
    /// configuration the tenant observes, including interference from
    /// the neighbors already packed on this host.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::InsufficientCapacity`] if the host cannot
    /// hold the VM.
    pub fn place(&mut self, instance: &InstanceType) -> Result<MachineConfig, CloudError> {
        let free = self.cores - self.committed;
        if instance.vcpus > free {
            return Err(CloudError::InsufficientCapacity {
                requested: instance.vcpus,
                available: free,
            });
        }
        // Neighbor load before this VM arrives, over the capacity the
        // host has left for others.
        let others_capacity = f64::from(self.cores - instance.vcpus).max(1.0);
        let neighbor_load = f64::from(self.committed) / others_capacity;
        self.committed += instance.vcpus;
        let interference = self.tenancy.interference(neighbor_load);
        Ok(instance.machine_config().with_interference(interference))
    }

    /// Release a previously placed VM's cores.
    pub fn release(&mut self, instance: &InstanceType) {
        self.committed = self.committed.saturating_sub(instance.vcpus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;

    #[test]
    fn empty_host_has_no_interference() {
        let c = Catalog::aws_like();
        let mut host = Host::xeon_14_core();
        let cfg = host
            .place(c.instance("m5.large").unwrap())
            .expect("fits");
        assert_eq!(cfg.interference, 0.0);
    }

    #[test]
    fn packed_host_interferes() {
        let c = Catalog::aws_like();
        let mut host = Host::with_cores(16);
        let big = c.instance("m5.2xlarge").unwrap();
        let _ = host.place(big).expect("first fits");
        let cfg = host.place(big).expect("second fits");
        assert!(cfg.interference > 0.0);
        assert!(cfg.interference <= 0.18 + 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let c = Catalog::aws_like();
        let mut host = Host::with_cores(4);
        let big = c.instance("m5.2xlarge").unwrap();
        assert!(matches!(
            host.place(big).unwrap_err(),
            CloudError::InsufficientCapacity {
                requested: 8,
                available: 4
            }
        ));
    }

    #[test]
    fn release_restores_capacity() {
        let c = Catalog::aws_like();
        let mut host = Host::with_cores(8);
        let vm = c.instance("m5.2xlarge").unwrap();
        host.place(vm).expect("fits");
        assert_eq!(host.committed(), 8);
        host.release(vm);
        assert_eq!(host.committed(), 0);
        host.place(vm).expect("fits again");
    }

    #[test]
    fn interference_model_clamps() {
        let t = TenancyModel::new();
        assert_eq!(t.interference(0.0), 0.0);
        assert!((t.interference(1.0) - 0.18).abs() < 1e-12);
        assert!((t.interference(5.0) - 0.18).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_host_panics() {
        let _ = Host::with_cores(0);
    }
}
