//! Billing rules.

use crate::InstanceType;
use serde::{Deserialize, Serialize};

/// Billing model: per-second metering with a minimum billed duration,
/// matching AWS Linux on-demand billing (and the paper's assumption that
/// "cloud machines are billed per second (no fractions)", which lets the
/// knapsack round runtimes to whole seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pricing {
    /// Minimum billed seconds per VM launch.
    pub min_billed_secs: u64,
}

impl Pricing {
    /// Per-second billing with AWS's 60-second minimum.
    #[must_use]
    pub fn per_second() -> Self {
        Self {
            min_billed_secs: 60,
        }
    }

    /// Seconds actually billed for a runtime (rounded up to whole
    /// seconds, floored at the minimum).
    #[must_use]
    pub fn billed_secs(&self, runtime_secs: f64) -> u64 {
        (runtime_secs.max(0.0).ceil() as u64).max(self.min_billed_secs)
    }

    /// Cost in USD of running `instance` for `runtime_secs`.
    #[must_use]
    pub fn cost_usd(&self, instance: &InstanceType, runtime_secs: f64) -> f64 {
        self.billed_secs(runtime_secs) as f64 / 3600.0 * instance.price_per_hour
    }
}

impl Default for Pricing {
    fn default() -> Self {
        Self::per_second()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;

    #[test]
    fn rounds_up_to_whole_seconds() {
        let p = Pricing::per_second();
        assert_eq!(p.billed_secs(100.2), 101);
        assert_eq!(p.billed_secs(100.0), 100);
    }

    #[test]
    fn minimum_applies() {
        let p = Pricing::per_second();
        assert_eq!(p.billed_secs(3.0), 60);
        assert_eq!(p.billed_secs(0.0), 60);
        assert_eq!(p.billed_secs(-5.0), 60);
    }

    #[test]
    fn zero_length_jobs_bill_the_minimum() {
        let c = Catalog::aws_like();
        let i = c.instance("m5.large").unwrap();
        let p = c.pricing();
        assert_eq!(p.billed_secs(0.0), 60);
        let floor = 60.0 / 3600.0 * i.price_per_hour;
        assert!((p.cost_usd(i, 0.0) - floor).abs() < 1e-12);
        // Negative and NaN runtimes clamp to zero length, not panic.
        assert!((p.cost_usd(i, -30.0) - floor).abs() < 1e-12);
        assert_eq!(p.billed_secs(f64::NAN), 60);
    }

    #[test]
    fn sub_minute_jobs_all_cost_the_same() {
        let c = Catalog::aws_like();
        let i = c.instance("c5.xlarge").unwrap();
        let p = c.pricing();
        let floor = p.cost_usd(i, 60.0);
        for secs in [0.001, 1.0, 30.0, 59.0, 59.999, 60.0] {
            assert!(
                (p.cost_usd(i, secs) - floor).abs() < 1e-12,
                "{secs}s must bill exactly the 60s minimum"
            );
        }
        // The first second past the minimum is where cost starts moving.
        assert_eq!(p.billed_secs(60.000_1), 61);
        assert!(p.cost_usd(i, 60.01) > floor);
    }

    #[test]
    fn fractional_seconds_round_up_without_drift() {
        let p = Pricing::per_second();
        // ceil never rounds a whole-second runtime up an extra second.
        for whole in [60u64, 61, 100, 3600, 86_400] {
            assert_eq!(p.billed_secs(whole as f64), whole);
        }
        assert_eq!(p.billed_secs(100.000_000_001), 101);
        assert_eq!(p.billed_secs(99.999_999_999), 100);
    }

    #[test]
    fn hour_costs_hourly_price() {
        let c = Catalog::aws_like();
        let i = c.instance("r5.xlarge").unwrap();
        let cost = c.pricing().cost_usd(i, 3600.0);
        assert!((cost - i.price_per_hour).abs() < 1e-12);
    }

    #[test]
    fn cost_proportional_to_time() {
        let c = Catalog::aws_like();
        let i = c.instance("m5.large").unwrap();
        let one = c.pricing().cost_usd(i, 1800.0);
        let two = c.pricing().cost_usd(i, 3600.0);
        assert!((two / one - 2.0).abs() < 1e-9);
    }
}

/// Spot-market pricing extension: a discounted rate with an
/// interruption probability per hour. Not part of the paper's
/// evaluation (it prices on-demand machines), but the natural follow-on
/// an EDA team asks for; [`Pricing::expected_spot_cost_usd`] gives the
/// expected cost including re-run work after interruptions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Fraction of the on-demand price (e.g. 0.3 = 70% cheaper).
    pub price_fraction: f64,
    /// Probability a running instance is reclaimed within one hour.
    pub interruption_per_hour: f64,
}

impl SpotMarket {
    /// Typical spot conditions: ~70% discount, 5% hourly interruption.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            price_fraction: 0.3,
            interruption_per_hour: 0.05,
        }
    }

    /// Probability the job of the given length completes uninterrupted.
    #[must_use]
    pub fn completion_probability(&self, runtime_secs: f64) -> f64 {
        let hours = runtime_secs.max(0.0) / 3600.0;
        (1.0 - self.interruption_per_hour).powf(hours)
    }
}

impl Pricing {
    /// Expected cost of running a job on spot capacity, accounting for
    /// lost work on interruption: each attempt pays for the time until
    /// interruption (approximated as half the runtime) and the expected
    /// number of attempts is `1 / p_complete`.
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_cloud_cloud::{Catalog, SpotMarket};
    ///
    /// let catalog = Catalog::aws_like();
    /// let m5 = catalog.instance("m5.large")?;
    /// let spot = SpotMarket::typical();
    /// let on_demand = catalog.pricing().cost_usd(m5, 3600.0);
    /// let expected = catalog.pricing().expected_spot_cost_usd(m5, 3600.0, &spot);
    /// assert!(expected < on_demand, "short jobs: spot wins");
    /// # Ok::<(), eda_cloud_cloud::CloudError>(())
    /// ```
    #[must_use]
    pub fn expected_spot_cost_usd(
        &self,
        instance: &InstanceType,
        runtime_secs: f64,
        market: &SpotMarket,
    ) -> f64 {
        let p = market.completion_probability(runtime_secs).max(1e-9);
        let successful_run = self.cost_usd(instance, runtime_secs) * market.price_fraction;
        // Expected failed attempts before success: (1-p)/p, each paying
        // roughly half the runtime before being reclaimed.
        let failed_attempts = (1.0 - p) / p;
        let failed_cost =
            self.cost_usd(instance, runtime_secs / 2.0) * market.price_fraction * failed_attempts;
        successful_run + failed_cost
    }

    /// Ratio of the expected spot cost to the on-demand cost for a job of
    /// the given length. Instance-independent (hourly rates cancel), so
    /// optimizers that already priced their choices on demand — e.g. the
    /// MCKP choices in `eda-cloud-mckp` — can convert by multiplication
    /// without re-deriving the instance. Under 1.0 the spot discount
    /// wins; above it interruption re-runs dominate.
    #[must_use]
    pub fn expected_spot_multiplier(&self, runtime_secs: f64, market: &SpotMarket) -> f64 {
        let p = market.completion_probability(runtime_secs).max(1e-9);
        let failed_attempts = (1.0 - p) / p;
        let full = self.billed_secs(runtime_secs) as f64;
        let half = self.billed_secs(runtime_secs / 2.0) as f64;
        market.price_fraction * (full + half * failed_attempts) / full
    }
}

#[cfg(test)]
mod spot_tests {
    use super::*;
    use crate::Catalog;

    #[test]
    fn short_jobs_benefit_from_spot() {
        let c = Catalog::aws_like();
        let i = c.instance("r5.xlarge").unwrap();
        let spot = SpotMarket::typical();
        let on_demand = c.pricing().cost_usd(i, 1800.0);
        let expected = c.pricing().expected_spot_cost_usd(i, 1800.0, &spot);
        assert!(expected < 0.5 * on_demand);
    }

    #[test]
    fn very_long_jobs_lose_the_discount() {
        let c = Catalog::aws_like();
        let i = c.instance("m5.large").unwrap();
        // A job so long it is almost always interrupted.
        let hostile = SpotMarket {
            price_fraction: 0.3,
            interruption_per_hour: 0.9,
        };
        let week = 7.0 * 24.0 * 3600.0;
        let expected = c.pricing().expected_spot_cost_usd(i, week, &hostile);
        let on_demand = c.pricing().cost_usd(i, week);
        assert!(
            expected > on_demand,
            "interruption-dominated jobs cost more than on-demand"
        );
    }

    #[test]
    fn multiplier_agrees_with_expected_cost_and_is_instance_free() {
        let c = Catalog::aws_like();
        let spot = SpotMarket::typical();
        for secs in [45.0, 1800.0, 3600.0, 36_000.0] {
            let mult = c.pricing().expected_spot_multiplier(secs, &spot);
            for name in ["m5.large", "r5.xlarge", "c5.2xlarge"] {
                let i = c.instance(name).unwrap();
                let direct = c.pricing().expected_spot_cost_usd(i, secs, &spot);
                let via_mult = c.pricing().cost_usd(i, secs) * mult;
                assert!(
                    (direct - via_mult).abs() < 1e-9 * direct.max(1.0),
                    "{name} at {secs}s: {direct} vs {via_mult}"
                );
            }
        }
        // Short jobs keep most of the discount; hostile jobs lose it.
        assert!(c.pricing().expected_spot_multiplier(600.0, &spot) < 0.35);
        let hostile = SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.9 };
        let week = 7.0 * 24.0 * 3600.0;
        assert!(c.pricing().expected_spot_multiplier(week, &hostile) > 1.0);
    }

    #[test]
    fn completion_probability_monotone() {
        let spot = SpotMarket::typical();
        assert!(spot.completion_probability(60.0) > spot.completion_probability(36_000.0));
        assert!((spot.completion_probability(0.0) - 1.0).abs() < 1e-12);
    }
}
