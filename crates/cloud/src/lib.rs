//! Cloud substrate: instance catalog, pricing, provisioning, and the
//! multi-tenant host model.
//!
//! The paper provisions AWS VMs and prices deployments with "the pricing
//! table for the machine configurations from AWS at the time of this
//! writeup". Cloud access is an external gate, so this crate carries a
//! built-in on-demand catalog shaped like AWS's m5 (general-purpose),
//! r5 (memory-optimized), and c5 (compute-optimized) families at
//! `.large` through `.2xlarge` sizes, per-second billing with a
//! 60-second minimum, a simulated VM lifecycle, and a hypervisor host
//! model that produces co-tenant interference — the environment the
//! paper emulates with cgroups.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_cloud::{Catalog, InstanceFamily};
//!
//! let catalog = Catalog::aws_like();
//! let m5 = catalog.instance("m5.large").expect("exists");
//! assert_eq!(m5.vcpus, 2);
//! let cost = catalog.pricing().cost_usd(m5, 3600.0);
//! assert!((cost - m5.price_per_hour).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod instance;
mod pricing;
mod provision;
mod tenancy;

pub use error::CloudError;
pub use instance::{Catalog, InstanceFamily, InstanceType};
pub use pricing::{Pricing, SpotMarket};
pub use provision::{JobRecord, Provisioner, Vm, VmState};
pub use tenancy::{Host, TenancyModel};
