//! Instance families, types, and the built-in catalog.

use crate::CloudError;
use eda_cloud_perf::MachineConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cloud instance families, mirroring the broad AWS categories the
/// paper's recommendations are phrased in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstanceFamily {
    /// Balanced compute/memory (AWS m5-like).
    GeneralPurpose,
    /// High memory-to-core ratio and bandwidth (AWS r5-like).
    MemoryOptimized,
    /// High clock, AVX-512 (AWS c5-like).
    ComputeOptimized,
}

impl fmt::Display for InstanceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstanceFamily::GeneralPurpose => "general-purpose",
            InstanceFamily::MemoryOptimized => "memory-optimized",
            InstanceFamily::ComputeOptimized => "compute-optimized",
        };
        f.write_str(s)
    }
}

/// One purchasable VM configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Catalog name, e.g. `"m5.xlarge"`.
    pub name: String,
    /// Family this size belongs to.
    pub family: InstanceFamily,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// On-demand price in USD per hour.
    pub price_per_hour: f64,
    /// Sustained core clock in GHz.
    pub clock_ghz: f64,
    /// Whether the underlying processor exposes AVX-512 units.
    pub avx512: bool,
}

impl InstanceType {
    /// The machine configuration an EDA job observes on this instance.
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let bw_per_vcpu = match self.family {
            InstanceFamily::GeneralPurpose => 6.0,
            InstanceFamily::MemoryOptimized => 9.5,
            InstanceFamily::ComputeOptimized => 5.0,
        };
        MachineConfig {
            vcpus: self.vcpus,
            memory_gb: self.memory_gb,
            clock_ghz: self.clock_ghz,
            avx: true,
            mem_bw_gbps: bw_per_vcpu * f64::from(self.vcpus),
            interference: 0.0,
        }
    }

    /// Price in USD per vCPU-hour (cost-efficiency metric).
    #[must_use]
    pub fn price_per_vcpu_hour(&self) -> f64 {
        self.price_per_hour / f64::from(self.vcpus.max(1))
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vCPU, {} GiB, ${:.4}/h)",
            self.name, self.vcpus, self.memory_gb, self.price_per_hour
        )
    }
}

/// The instance catalog with its pricing rules.
///
/// # Examples
///
/// ```
/// use eda_cloud_cloud::{Catalog, InstanceFamily};
///
/// let catalog = Catalog::aws_like();
/// let sizes = catalog.family_sizes(InstanceFamily::MemoryOptimized);
/// let vcpus: Vec<u32> = sizes.iter().map(|i| i.vcpus).collect();
/// assert_eq!(vcpus, vec![1, 2, 4, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    instances: Vec<InstanceType>,
    pricing: crate::Pricing,
}

impl Catalog {
    /// The built-in catalog modeled on AWS 2020 us-east-1 on-demand
    /// pricing for m5 / r5 / c5 at 1-8 vCPUs.
    ///
    /// AWS sells these families starting at 2 vCPUs (`.large`); the
    /// 1-vCPU `.medium` rows carry the ~1.9x per-vCPU premium implied by
    /// the paper's own cost table (e.g. its 1-vCPU routing machine works
    /// out to $0.110/h where r5.large is $0.063/vCPU-h) — the smallest
    /// purchasable single-vCPU machines are never price-proportional.
    #[must_use]
    pub fn aws_like() -> Self {
        use InstanceFamily::{ComputeOptimized, GeneralPurpose, MemoryOptimized};
        let rows: &[(&str, InstanceFamily, u32, f64, f64, f64, bool)] = &[
            // name, family, vcpus, mem GiB, $/h, clock, avx512
            ("m5.medium", GeneralPurpose, 1, 4.0, 0.094, 3.1, false),
            ("m5.large", GeneralPurpose, 2, 8.0, 0.096, 3.1, false),
            ("m5.xlarge", GeneralPurpose, 4, 16.0, 0.192, 3.1, false),
            ("m5.2xlarge", GeneralPurpose, 8, 32.0, 0.384, 3.1, false),
            ("r5.medium", MemoryOptimized, 1, 8.0, 0.110, 3.1, false),
            ("r5.large", MemoryOptimized, 2, 16.0, 0.126, 3.1, false),
            ("r5.xlarge", MemoryOptimized, 4, 32.0, 0.252, 3.1, false),
            ("r5.2xlarge", MemoryOptimized, 8, 64.0, 0.504, 3.1, false),
            ("c5.medium", ComputeOptimized, 1, 2.0, 0.080, 3.6, true),
            ("c5.large", ComputeOptimized, 2, 4.0, 0.085, 3.6, true),
            ("c5.xlarge", ComputeOptimized, 4, 8.0, 0.17, 3.6, true),
            ("c5.2xlarge", ComputeOptimized, 8, 16.0, 0.34, 3.6, true),
        ];
        let instances = rows
            .iter()
            .map(
                |&(name, family, vcpus, memory_gb, price, clock_ghz, avx512)| InstanceType {
                    name: name.to_owned(),
                    family,
                    vcpus,
                    memory_gb,
                    price_per_hour: price,
                    clock_ghz,
                    avx512,
                },
            )
            .collect();
        Self {
            instances,
            pricing: crate::Pricing::per_second(),
        }
    }

    /// All instance types.
    #[must_use]
    pub fn instances(&self) -> &[InstanceType] {
        &self.instances
    }

    /// The billing rules.
    #[must_use]
    pub fn pricing(&self) -> &crate::Pricing {
        &self.pricing
    }

    /// Look up an instance by name.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownInstance`] when absent.
    pub fn instance(&self, name: &str) -> Result<&InstanceType, CloudError> {
        self.instances
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| CloudError::UnknownInstance(name.to_owned()))
    }

    /// Sizes of one family ordered by vCPU count.
    #[must_use]
    pub fn family_sizes(&self, family: InstanceFamily) -> Vec<&InstanceType> {
        let mut v: Vec<&InstanceType> = self
            .instances
            .iter()
            .filter(|i| i.family == family)
            .collect();
        v.sort_by_key(|i| i.vcpus);
        v
    }

    /// The cheapest instance of `family` with at least `vcpus` vCPUs.
    #[must_use]
    pub fn cheapest_with(&self, family: InstanceFamily, vcpus: u32) -> Option<&InstanceType> {
        self.instances
            .iter()
            .filter(|i| i.family == family && i.vcpus >= vcpus)
            .min_by(|a, b| a.price_per_hour.total_cmp(&b.price_per_hour))
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::aws_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_three_families_at_four_sizes() {
        let c = Catalog::aws_like();
        for family in [
            InstanceFamily::GeneralPurpose,
            InstanceFamily::MemoryOptimized,
            InstanceFamily::ComputeOptimized,
        ] {
            let sizes = c.family_sizes(family);
            assert_eq!(sizes.len(), 4, "{family}");
            assert_eq!(
                sizes.iter().map(|i| i.vcpus).collect::<Vec<_>>(),
                vec![1, 2, 4, 8]
            );
        }
    }

    #[test]
    fn prices_scale_linearly_from_large_up() {
        let c = Catalog::aws_like();
        let m5 = c.family_sizes(InstanceFamily::GeneralPurpose);
        // .large -> .xlarge -> .2xlarge double exactly; .medium carries
        // the small-instance premium.
        for w in m5[1..].windows(2) {
            let ratio = w[1].price_per_hour / w[0].price_per_hour;
            assert!((ratio - 2.0).abs() < 1e-9, "m5 doubles each step");
        }
        assert!(
            m5[0].price_per_vcpu_hour() > 1.5 * m5[1].price_per_vcpu_hour(),
            "1-vCPU premium present"
        );
    }

    #[test]
    fn memory_optimized_costs_more_per_vcpu() {
        let c = Catalog::aws_like();
        let m5 = c.instance("m5.large").unwrap();
        let r5 = c.instance("r5.large").unwrap();
        assert!(r5.price_per_vcpu_hour() > m5.price_per_vcpu_hour());
    }

    #[test]
    fn machine_config_reflects_family() {
        let c = Catalog::aws_like();
        let r5 = c.instance("r5.2xlarge").unwrap().machine_config();
        let m5 = c.instance("m5.2xlarge").unwrap().machine_config();
        assert!(r5.mem_bw_gbps > m5.mem_bw_gbps);
        assert!(r5.memory_gb > m5.memory_gb);
        let c5 = c.instance("c5.2xlarge").unwrap().machine_config();
        assert!(c5.clock_ghz > m5.clock_ghz);
    }

    #[test]
    fn unknown_instance_is_error() {
        let c = Catalog::aws_like();
        assert_eq!(
            c.instance("z1.nano").unwrap_err(),
            CloudError::UnknownInstance("z1.nano".to_owned())
        );
    }

    #[test]
    fn cheapest_with_respects_constraints() {
        let c = Catalog::aws_like();
        let pick = c
            .cheapest_with(InstanceFamily::MemoryOptimized, 3)
            .expect("exists");
        assert_eq!(pick.name, "r5.xlarge");
        assert!(c.cheapest_with(InstanceFamily::GeneralPurpose, 64).is_none());
    }

    #[test]
    fn display_formats() {
        let c = Catalog::aws_like();
        let text = c.instance("m5.large").unwrap().to_string();
        assert!(text.contains("m5.large"));
        assert!(text.contains("2 vCPU"));
        assert_eq!(InstanceFamily::MemoryOptimized.to_string(), "memory-optimized");
    }
}
