//! Deterministic fleet simulator: serve a stream of EDA flow jobs on
//! the simulated cloud.
//!
//! The paper characterizes single flows; this crate asks the fleet
//! question — what happens when a *stream* of flow jobs, each carrying
//! an MCKP deployment plan, hits the cloud substrate over hours. A
//! discrete-event engine ([`FleetSimulator`]) plays the stream against
//! `eda-cloud-cloud`'s provisioner: per-stage VM requests with real
//! boot intervals, a warm pool sized by an arrival-rate autoscaler
//! ([`AutoscaleConfig`]), optional spot purchasing with seeded
//! interruption injection, exponential-backoff retries, and
//! stage-boundary checkpointing ([`SpotPolicy`]). Each run folds into a
//! [`FleetReport`] — deadline-hit rate, total and per-job cost, latency
//! percentiles, histograms — whose JSON rendering is byte-identical
//! across same-seed runs.
//!
//! Everything random flows through seeded ChaCha streams consumed in
//! event order ([`poisson_arrivals`] for the workload, the internal
//! fault injector for reclaims), so a `(jobs, config)` pair fully
//! determines the report.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_cloud::Catalog;
//! use eda_cloud_fleet::{
//!     poisson_arrivals, FleetConfig, FleetJob, FleetSimulator, JobPlan, PlannedStage, SpotPolicy,
//! };
//!
//! let arrivals = poisson_arrivals(5, 60.0, 7);
//! let jobs: Vec<FleetJob> = arrivals
//!     .into_iter()
//!     .enumerate()
//!     .map(|(id, arrival_secs)| FleetJob {
//!         plan: JobPlan {
//!             id: id as u64,
//!             stages: vec![PlannedStage {
//!                 name: "synthesis".into(),
//!                 instance: "m5.xlarge".into(),
//!                 runtime_secs: 3_449,
//!             }],
//!             deadline_secs: 4_000,
//!         },
//!         arrival_secs,
//!     })
//!     .collect();
//!
//! let config = FleetConfig::on_demand(7).with_spot(SpotPolicy::typical());
//! let report = FleetSimulator::new(Catalog::aws_like()).run(&jobs, &config)?;
//! assert_eq!(report.counters.jobs_completed, 5);
//! let again = FleetSimulator::new(Catalog::aws_like()).run(&jobs, &config)?;
//! assert_eq!(report.to_json(), again.to_json());
//! # Ok::<(), eda_cloud_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoscale;
mod error;
mod faults;
mod job;
mod metrics;
mod sim;
mod spot;

pub use autoscale::AutoscaleConfig;
pub use error::FleetError;
pub use faults::{FleetFaults, NoFleetFaults, SharedFleetFaults};
pub use job::{poisson_arrivals, FleetJob, JobPlan, PlannedStage};
pub use metrics::{FleetCounters, FleetReport, Histogram};
pub use sim::{FleetConfig, FleetSimulator};
pub use spot::SpotPolicy;
