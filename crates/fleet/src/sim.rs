//! The deterministic discrete-event engine.
//!
//! The simulator owns a single event heap keyed by `(time, sequence)`
//! — time in integer microseconds, sequence a monotone push counter —
//! so the pop order is a pure function of the job stream and the seed,
//! never of wall-clock or thread scheduling. All randomness (arrival
//! gaps are drawn by the caller, reclaim draws here) flows through
//! seeded ChaCha streams consumed in event order.
//!
//! Lifecycle of one job: for each plan stage in flow order the
//! scheduler acquires a VM (warm-pool hit, or a cold launch through
//! [`Provisioner::launch`] with its boot interval), starts the stage
//! when the VM is ready, and either completes it after the planned
//! runtime or — on spot capacity — suffers a reclaim drawn from the
//! market's hourly interruption probability. A reclaimed stage restarts
//! after exponential backoff (stage-boundary checkpointing: completed
//! stages never re-run) and falls back to on-demand capacity once its
//! spot attempts are exhausted.

use crate::autoscale::{AutoscaleConfig, Autoscaler};
use crate::faults::{FleetFaults, NoFleetFaults, SharedFleetFaults};
use crate::metrics::{FleetCounters, FleetReport, Histogram, Samples};
use crate::spot::{SpotInjector, SpotPolicy};
use crate::{FleetError, FleetJob};
use eda_cloud_cloud::{Catalog, InstanceType, Provisioner, VmState};
use eda_cloud_engine::{time, EventHeap};
use eda_cloud_trace::{Span, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Convert seconds to integer microseconds, rejecting values a
/// saturating `as` cast would silently mangle: NaN (casts to 0),
/// negatives (cast to 0), and times beyond the microsecond clock's
/// range (pin to `u64::MAX`, reordering the event heap). Delegates to
/// the engine's checked-time API; the engine's diagnosis strings are
/// identical to the ones this crate used before the extraction.
fn to_us(secs: f64) -> Result<u64, FleetError> {
    Ok(time::secs_to_us(secs)?)
}

fn to_secs(us: u64) -> f64 {
    time::us_to_secs(us)
}

/// A planned stage runtime in microseconds, or an error when the
/// multiply would wrap `u64` (a >292-millennium stage is a bad plan,
/// not a schedulable event).
fn stage_duration_us(runtime_secs: u64) -> Result<u64, FleetError> {
    Ok(time::secs_to_duration_us(runtime_secs)?)
}

/// Histogram bucket edges must be non-empty, finite, and strictly
/// ascending — checked here so a bad config surfaces as an error
/// instead of a panic inside [`Histogram::new`].
fn validate_edges(edges: &[f64], what: &'static str) -> Result<(), FleetError> {
    if edges.is_empty() {
        return Err(FleetError::InvalidConfig(what));
    }
    if edges.iter().any(|e| !e.is_finite()) {
        return Err(FleetError::InvalidConfig(what));
    }
    if edges.windows(2).any(|w| w[0] >= w[1]) {
        return Err(FleetError::InvalidConfig(what));
    }
    Ok(())
}

/// How to run a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Seed for the fault-injection stream (callers usually reuse the
    /// seed that generated the arrival process).
    pub seed: u64,
    /// Buy stage capacity on the spot market under this policy; `None`
    /// runs everything on demand.
    pub spot: Option<SpotPolicy>,
    /// Warm-pool sizing rules.
    pub autoscale: AutoscaleConfig,
    /// Latency histogram bucket edges, seconds.
    pub latency_edges: Vec<f64>,
    /// Per-job cost histogram bucket edges, USD.
    pub cost_edges: Vec<f64>,
    /// Hard cap on attempts of a single stage before the job is
    /// abandoned with the typed `jobs_exhausted` outcome. Ordinary runs
    /// never approach it (spot fallback completes on demand after at
    /// most `max_spot_attempts + 1` tries); it exists so injected
    /// interrupt-every-attempt faults terminate instead of retrying
    /// forever.
    pub max_stage_attempts: u32,
}

impl FleetConfig {
    /// On-demand-only fleet with default autoscaling and histogram
    /// edges spanning minutes-to-days latencies and cent-to-dollar job
    /// costs.
    #[must_use]
    pub fn on_demand(seed: u64) -> Self {
        Self {
            seed,
            spot: None,
            autoscale: AutoscaleConfig::default(),
            latency_edges: vec![
                1_800.0, 3_600.0, 7_200.0, 14_400.0, 28_800.0, 57_600.0, 115_200.0,
            ],
            cost_edges: vec![0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2],
            max_stage_attempts: 64,
        }
    }

    /// The same fleet buying stages on spot capacity under `policy`.
    #[must_use]
    pub fn with_spot(mut self, policy: SpotPolicy) -> Self {
        self.spot = Some(policy);
        self
    }
}

/// The fleet simulator: a catalog to buy from plus the deterministic
/// event engine.
///
/// # Examples
///
/// ```
/// use eda_cloud_cloud::Catalog;
/// use eda_cloud_fleet::{FleetConfig, FleetJob, FleetSimulator, JobPlan, PlannedStage};
///
/// let job = FleetJob {
///     plan: JobPlan {
///         id: 0,
///         stages: vec![PlannedStage {
///             name: "synthesis".into(),
///             instance: "m5.large".into(),
///             runtime_secs: 600,
///         }],
///         deadline_secs: 700,
///     },
///     arrival_secs: 0.0,
/// };
/// let report = FleetSimulator::new(Catalog::aws_like())
///     .run(&[job], &FleetConfig::on_demand(7))?;
/// assert_eq!(report.counters.jobs_completed, 1);
/// assert_eq!(report.deadline_hit_rate, 1.0);
/// # Ok::<(), eda_cloud_fleet::FleetError>(())
/// ```
#[derive(Clone)]
pub struct FleetSimulator {
    catalog: Catalog,
    tracer: Tracer,
    faults: SharedFleetFaults,
}

impl std::fmt::Debug for FleetSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSimulator").field("catalog", &self.catalog).finish_non_exhaustive()
    }
}

impl FleetSimulator {
    /// A simulator buying from `catalog`.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            tracer: Tracer::disabled(),
            faults: std::sync::Arc::new(NoFleetFaults),
        }
    }

    /// Attach a tracer; each run records an event-loop span tree into
    /// it (one root per run, one child per job, autoscaler decisions as
    /// counters). Simulated time is deterministic, so the spans are too.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach fault hooks (see [`FleetFaults`]); the default is the
    /// inert [`NoFleetFaults`].
    #[must_use]
    pub fn with_faults(mut self, faults: SharedFleetFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Serve the job stream and return the run's metrics.
    ///
    /// Two calls with the same jobs and config produce byte-identical
    /// [`FleetReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] for jobs without stages or
    /// non-finite arrival times, and [`FleetError::Cloud`] when a plan
    /// names an instance the catalog does not sell.
    pub fn run(&self, jobs: &[FleetJob], config: &FleetConfig) -> Result<FleetReport, FleetError> {
        validate_edges(&config.latency_edges, "latency histogram edges")?;
        validate_edges(&config.cost_edges, "cost histogram edges")?;
        if !config.autoscale.max_idle_secs.is_finite() {
            return Err(FleetError::InvalidConfig("autoscale idle bound must be finite"));
        }
        if config.max_stage_attempts == 0 {
            return Err(FleetError::InvalidConfig("max stage attempts must be positive"));
        }
        for job in jobs {
            if job.plan.stages.is_empty() {
                return Err(FleetError::InvalidConfig("job plan has no stages"));
            }
            if !job.arrival_secs.is_finite() || job.arrival_secs < 0.0 {
                return Err(FleetError::InvalidConfig("job arrival must be finite and >= 0"));
            }
            for stage in &job.plan.stages {
                // Fail fast on bad instance names or runtimes that
                // overflow the microsecond clock, before any event runs.
                self.catalog.instance(&stage.instance)?;
                stage_duration_us(stage.runtime_secs)?;
            }
        }
        Engine::new(&self.catalog, jobs, config, &self.tracer, &*self.faults)?.run()
    }
}

#[derive(Debug)]
enum Event {
    /// A job enters the system.
    Arrival { job: usize },
    /// A cold-launched VM finished booting for this job's current stage.
    VmReady { job: usize, vm: u64 },
    /// The current stage ran to completion on `vm`.
    StageDone { job: usize, vm: u64 },
    /// The spot market reclaimed `vm` mid-stage.
    Reclaim { job: usize, vm: u64 },
    /// Backoff elapsed; re-acquire capacity for the job's current stage.
    Retry { job: usize },
    /// A warm VM may have idled past the bound (stamp guards staleness).
    IdleReap { vm: u64, stamp: u64 },
}

struct JobState {
    plan_stage_count: usize,
    arrival_us: u64,
    deadline_secs: u64,
    /// Index of the stage currently executing (or next to acquire).
    stage: usize,
    /// Attempts of the current stage (reset at each stage boundary).
    attempt: u32,
    /// Busy-time cost attributed to this job, USD.
    cost_usd: f64,
}

struct Engine<'a> {
    catalog: &'a Catalog,
    config: &'a FleetConfig,
    jobs: &'a [FleetJob],
    provisioner: Provisioner,
    /// The extracted deterministic event core: pops in `(time, seq)`
    /// order, seq being a monotone push counter the heap owns.
    heap: EventHeap<Event>,
    states: Vec<JobState>,
    /// Idle booted on-demand VMs, keyed by instance name; entries are
    /// `(vm, stamp)` reused LIFO. BTree keys keep any iteration
    /// deterministic.
    warm: BTreeMap<String, Vec<(u64, u64)>>,
    warm_count: usize,
    stamp: u64,
    /// Per-VM price fraction (1.0 on-demand, the market fraction for
    /// spot), indexed by VM id.
    vm_fraction: Vec<f64>,
    autoscaler: Autoscaler,
    injector: SpotInjector,
    counters: FleetCounters,
    total_cost_usd: f64,
    latencies: Samples,
    job_costs: Samples,
    latency_hist: Histogram,
    cost_hist: Histogram,
    makespan_us: u64,
    /// Root span of this run's event loop.
    sim_span: Span,
    /// One child span per job, indexed like `states`; spans close (and
    /// record) when the engine is consumed by [`Engine::report`].
    job_spans: Vec<Span>,
    /// Injected fault hooks (inert by default).
    faults: &'a dyn FleetFaults,
}

impl<'a> Engine<'a> {
    fn new(
        catalog: &'a Catalog,
        jobs: &'a [FleetJob],
        config: &'a FleetConfig,
        tracer: &Tracer,
        faults: &'a dyn FleetFaults,
    ) -> Result<Self, FleetError> {
        let states = jobs
            .iter()
            .map(|j| {
                Ok(JobState {
                    plan_stage_count: j.plan.stages.len(),
                    arrival_us: to_us(j.arrival_secs)?,
                    deadline_secs: j.plan.deadline_secs,
                    stage: 0,
                    attempt: 0,
                    cost_usd: 0.0,
                })
            })
            .collect::<Result<Vec<_>, FleetError>>()?;
        // Spans are created in job order here — canonical data — so the
        // trace does not depend on anything the event loop does.
        let sim_span = tracer.root("fleet/sim");
        let job_spans = jobs
            .iter()
            .map(|j| sim_span.child(&format!("job/{:04}", j.plan.id)))
            .collect();
        Ok(Self {
            catalog,
            config,
            jobs,
            provisioner: Provisioner::new(*catalog.pricing()),
            heap: EventHeap::new(),
            states,
            warm: BTreeMap::new(),
            warm_count: 0,
            stamp: 0,
            vm_fraction: Vec::new(),
            autoscaler: Autoscaler::new(&config.autoscale),
            injector: SpotInjector::new(config.seed),
            counters: FleetCounters::default(),
            total_cost_usd: 0.0,
            latencies: Samples::default(),
            job_costs: Samples::default(),
            latency_hist: Histogram::new(config.latency_edges.clone()),
            cost_hist: Histogram::new(config.cost_edges.clone()),
            makespan_us: 0,
            sim_span,
            job_spans,
            faults,
        })
    }

    fn push(&mut self, t: u64, event: Event) {
        self.heap.push(t, event);
    }

    fn run(mut self) -> Result<FleetReport, FleetError> {
        for index in 0..self.jobs.len() {
            let t = self.states[index].arrival_us;
            self.push(t, Event::Arrival { job: index });
        }
        while let Some((t, event)) = self.heap.pop() {
            self.provisioner.advance_to(to_secs(t));
            self.sim_span.counter("events", 1);
            match event {
                Event::Arrival { job } => {
                    self.counters.jobs_submitted += 1;
                    self.autoscaler.record_arrival(t);
                    self.acquire_stage_vm(job, t)?;
                }
                Event::VmReady { job, vm } => {
                    self.provisioner.begin_job(vm)?;
                    self.start_execution(job, vm, t)?;
                }
                Event::StageDone { job, vm } => self.on_stage_done(job, vm, t)?,
                Event::Reclaim { job, vm } => self.on_reclaim(job, vm, t)?,
                Event::Retry { job } => self.acquire_stage_vm(job, t)?,
                Event::IdleReap { vm, stamp } => self.on_idle_reap(vm, stamp)?,
            }
        }
        // Retire whatever is still booted (warm pool remainder).
        for id in 0..self.vm_fraction.len() as u64 {
            if self.provisioner.vm(id)?.state != VmState::Terminated {
                self.bill(id)?;
            }
        }
        Ok(self.report())
    }

    /// Whether the job's *next* attempt of its current stage runs on
    /// spot capacity, given how many attempts it already burned.
    fn next_attempt_on_spot(&self, state: &JobState) -> bool {
        self.config
            .spot
            .as_ref()
            .is_some_and(|policy| state.attempt < policy.max_spot_attempts)
    }

    /// Acquire a VM for the job's current stage: a warm on-demand VM
    /// when eligible, otherwise a cold launch (spot or on-demand).
    fn acquire_stage_vm(&mut self, job: usize, now: u64) -> Result<(), FleetError> {
        let state = &self.states[job];
        if state.attempt >= self.config.max_stage_attempts {
            // The current stage burned every allowed attempt: abandon
            // the job with the typed exhaustion outcome instead of
            // scheduling attempt after attempt forever.
            self.counters.jobs_exhausted += 1;
            self.job_spans[job].counter("exhausted", 1);
            self.job_spans[job].attr("outcome", "exhausted");
            self.job_spans[job].attr("exhausted_stage", state.stage);
            return Ok(());
        }
        let on_spot = self.next_attempt_on_spot(state);
        let instance_name = self.jobs[job].plan.stages[state.stage].instance.clone();
        if let Some(policy) = &self.config.spot {
            if !on_spot && state.attempt == policy.max_spot_attempts && state.attempt > 0 {
                self.counters.spot_fallbacks += 1;
            }
        }
        self.states[job].attempt += 1;

        if !on_spot {
            // Spot VMs are never pooled; on-demand requests reuse warm
            // capacity when available (skipping the boot interval).
            if let Some(vm) = self.take_warm(&instance_name) {
                self.counters.warm_reuses += 1;
                self.sim_span.counter("autoscale/warm_reuses", 1);
                self.provisioner.begin_job(vm)?;
                self.start_execution(job, vm, now)?;
                return Ok(());
            }
            self.counters.cold_starts += 1;
            self.sim_span.counter("autoscale/cold_starts", 1);
        }
        let instance = self.catalog.instance(&instance_name)?.clone();
        let vm = self.launch(instance, on_spot);
        // The provisioner's boot interval gates readiness; +1 us of
        // slack absorbs float-to-integer rounding of `ready_at`.
        let ready_secs = self.provisioner.vm(vm)?.ready_at;
        let ready = time::checked_add_us(time::secs_to_us_ceil(ready_secs)?, 1)?;
        self.push(ready, Event::VmReady { job, vm });
        Ok(())
    }

    fn launch(&mut self, instance: InstanceType, on_spot: bool) -> u64 {
        let fraction = match (&self.config.spot, on_spot) {
            (Some(policy), true) => policy.market.price_fraction,
            _ => 1.0,
        };
        let vm = self.provisioner.launch(instance);
        debug_assert_eq!(vm as usize, self.vm_fraction.len());
        self.vm_fraction.push(fraction);
        self.counters.vms_launched += 1;
        vm
    }

    /// The stage is on a ready VM now: decide completion vs reclaim and
    /// schedule exactly one of the two outcomes.
    fn start_execution(&mut self, job: usize, vm: u64, now: u64) -> Result<(), FleetError> {
        let state = &self.states[job];
        let (stage_index, attempt) = (state.stage, state.attempt);
        let job_id = self.jobs[job].plan.id;
        let runtime_secs = self.jobs[job].plan.stages[stage_index].runtime_secs;
        let mut duration_us = stage_duration_us(runtime_secs)?;
        // Injected VM stall: inflate the stage duration. Faults never
        // speed a stage up, so sub-100 percentages clamp to 100.
        let stall_pct = self.faults.stall_pct(job_id, stage_index).max(100);
        if stall_pct > 100 {
            duration_us = time::scale_us_pct(duration_us, stall_pct)?;
            let span = self.job_spans[job].child("fault/stall");
            span.attr("stage", stage_index);
            span.attr("pct", stall_pct);
        }
        // Injected interrupt: reclaim this attempt at a fixed fraction
        // of its (possibly stalled) runtime — host failure semantics,
        // so it applies to on-demand VMs too.
        if let Some(fraction) = self.faults.interrupt(job_id, stage_index, attempt) {
            let offset = time::fraction_of_us(duration_us, fraction)?;
            let reclaim_at = time::checked_add_us(now, offset)?;
            let span = self.job_spans[job].child("fault/interrupt");
            span.attr("stage", stage_index);
            span.attr("attempt", attempt);
            self.push(reclaim_at, Event::Reclaim { job, vm });
            return Ok(());
        }
        let on_spot = self.vm_fraction[vm as usize] < 1.0;
        if on_spot {
            let market = self.config.spot.as_ref().expect("spot VM implies policy").market;
            if let Some(fraction) = self.injector.reclaim_fraction(runtime_secs as f64, &market) {
                // The reclaim point is a fraction of the stage; the
                // checked helper rejects a NaN/out-of-range draw
                // instead of letting the cast collapse it to 0 or
                // `u64::MAX`.
                let offset = time::fraction_of_us(duration_us, fraction)?;
                let reclaim_at = time::checked_add_us(now, offset)?;
                self.push(reclaim_at, Event::Reclaim { job, vm });
                return Ok(());
            }
        }
        let done_at = time::checked_add_us(now, duration_us)?;
        self.push(done_at, Event::StageDone { job, vm });
        Ok(())
    }

    fn on_stage_done(&mut self, job: usize, vm: u64, now: u64) -> Result<(), FleetError> {
        let on_spot = self.vm_fraction[vm as usize] < 1.0;
        let state = &self.states[job];
        let runtime_secs = self.jobs[job].plan.stages[state.stage].runtime_secs;
        self.attribute_cost(job, vm, runtime_secs as f64);
        if on_spot {
            self.bill(vm)?;
        } else {
            self.release_or_bill(vm, now)?;
        }
        let state = &mut self.states[job];
        state.stage += 1;
        state.attempt = 0;
        self.job_spans[job].counter("stages_completed", 1);
        if state.stage == state.plan_stage_count {
            self.complete_job(job, now);
        } else {
            self.acquire_stage_vm(job, now)?;
        }
        Ok(())
    }

    fn on_reclaim(&mut self, job: usize, vm: u64, now: u64) -> Result<(), FleetError> {
        self.counters.interruptions += 1;
        self.counters.retries += 1;
        self.job_spans[job].counter("reclaims", 1);
        // Pay for the partial run (the reclaimed VM's whole life bills
        // at the spot rate through `bill`); attribute the lost busy
        // time to the job as well.
        let partial_secs = (to_secs(now) - self.provisioner.vm(vm)?.ready_at).max(0.0);
        self.attribute_cost(job, vm, partial_secs);
        self.bill(vm)?;
        // Injected interrupts can reclaim on-demand VMs with no spot
        // policy configured; those retries use the standard backoff.
        let backoff = match self.config.spot.as_ref() {
            Some(policy) => policy.backoff_secs(self.states[job].attempt),
            None => SpotPolicy::typical().backoff_secs(self.states[job].attempt),
        };
        let retry_at = time::checked_add_us(now, to_us(backoff)?)?;
        self.push(retry_at, Event::Retry { job });
        Ok(())
    }

    fn on_idle_reap(&mut self, vm: u64, stamp: u64) -> Result<(), FleetError> {
        // Stale when the VM was reused (different stamp) or already gone.
        let mut reaped = false;
        if let Some((name, position)) = self.find_warm(vm, stamp) {
            let entries = self.warm.get_mut(&name).expect("found above");
            entries.remove(position);
            if entries.is_empty() {
                self.warm.remove(&name);
            }
            self.warm_count -= 1;
            reaped = true;
        }
        if reaped {
            self.counters.idle_reaped += 1;
            self.sim_span.counter("autoscale/idle_reaped", 1);
            self.bill(vm)?;
        }
        Ok(())
    }

    fn find_warm(&self, vm: u64, stamp: u64) -> Option<(String, usize)> {
        for (name, entries) in &self.warm {
            if let Some(position) = entries.iter().position(|&(v, s)| v == vm && s == stamp) {
                return Some((name.clone(), position));
            }
        }
        None
    }

    fn take_warm(&mut self, instance_name: &str) -> Option<u64> {
        let entries = self.warm.get_mut(instance_name)?;
        let (vm, _) = entries.pop()?;
        if entries.is_empty() {
            self.warm.remove(instance_name);
        }
        self.warm_count -= 1;
        Some(vm)
    }

    /// Keep a finished on-demand VM warm when the pool is below the
    /// autoscaler's target, otherwise terminate and bill it.
    fn release_or_bill(&mut self, vm: u64, now: u64) -> Result<(), FleetError> {
        let target = self.autoscaler.target(now);
        if self.warm_count < target && self.warm_count < self.config.autoscale.max_warm {
            self.sim_span.counter("autoscale/kept_warm", 1);
            let name = self.provisioner.vm(vm)?.instance.name.clone();
            let stamp = self.stamp;
            self.stamp += 1;
            self.warm.entry(name).or_default().push((vm, stamp));
            self.warm_count += 1;
            let reap_at =
                time::checked_add_us(now, to_us(self.config.autoscale.max_idle_secs.max(0.0))?)?;
            self.push(reap_at, Event::IdleReap { vm, stamp });
            Ok(())
        } else {
            self.sim_span.counter("autoscale/terminated", 1);
            self.bill(vm)
        }
    }

    /// Terminate the VM and add its lifetime bill (boot + busy + idle,
    /// at its price fraction) to the fleet total.
    fn bill(&mut self, vm: u64) -> Result<(), FleetError> {
        let record = self.provisioner.terminate(vm)?;
        self.total_cost_usd += record.cost_usd * self.vm_fraction[vm as usize];
        Ok(())
    }

    /// Attribute the busy-time cost of one stage attempt to its job.
    fn attribute_cost(&mut self, job: usize, vm: u64, busy_secs: f64) {
        if let Ok(vm_record) = self.provisioner.vm(vm) {
            let cost = self.catalog.pricing().cost_usd(&vm_record.instance, busy_secs);
            self.states[job].cost_usd += cost * self.vm_fraction[vm as usize];
        }
    }

    fn complete_job(&mut self, job: usize, now: u64) {
        let state = &self.states[job];
        let latency_secs = to_secs(now - state.arrival_us);
        self.counters.jobs_completed += 1;
        // Simulated time, not wall-clock — deterministic, so safe to
        // record on the span.
        self.job_spans[job].counter("latency_us", now - state.arrival_us);
        if latency_secs <= state.deadline_secs as f64 + 1e-9 {
            self.counters.deadline_hits += 1;
            self.job_spans[job].counter("deadline_hit", 1);
        }
        self.latencies.record(latency_secs);
        self.latency_hist.record(latency_secs);
        self.job_costs.record(state.cost_usd);
        self.cost_hist.record(state.cost_usd);
        self.makespan_us = self.makespan_us.max(now);
    }

    fn report(self) -> FleetReport {
        let completed = self.counters.jobs_completed;
        let deadline_hit_rate = if completed > 0 {
            self.counters.deadline_hits as f64 / completed as f64
        } else {
            0.0
        };
        FleetReport {
            seed: self.config.seed,
            counters: self.counters,
            deadline_hit_rate,
            total_cost_usd: self.total_cost_usd,
            mean_job_cost_usd: self.job_costs.mean(),
            mean_latency_secs: self.latencies.mean(),
            p50_latency_secs: self.latencies.percentile(0.5),
            p95_latency_secs: self.latencies.percentile(0.95),
            makespan_secs: to_secs(self.makespan_us),
            latency_hist: self.latency_hist,
            cost_hist: self.cost_hist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobPlan, PlannedStage};
    use eda_cloud_cloud::SpotMarket;

    fn stage(name: &str, instance: &str, runtime_secs: u64) -> PlannedStage {
        PlannedStage {
            name: name.into(),
            instance: instance.into(),
            runtime_secs,
        }
    }

    fn two_stage_job(id: u64, arrival_secs: f64, deadline_secs: u64) -> FleetJob {
        FleetJob {
            plan: JobPlan {
                id,
                stages: vec![
                    stage("synthesis", "m5.large", 600),
                    stage("routing", "c5.xlarge", 900),
                ],
                deadline_secs,
            },
            arrival_secs,
        }
    }

    fn sim() -> FleetSimulator {
        FleetSimulator::new(Catalog::aws_like())
    }

    #[test]
    fn single_job_on_demand_accounting() {
        let job = two_stage_job(0, 0.0, 2000);
        let mut cfg = FleetConfig::on_demand(1);
        cfg.autoscale = AutoscaleConfig::disabled();
        let report = sim().run(&[job], &cfg).expect("runs");
        let c = report.counters;
        assert_eq!(c.jobs_submitted, 1);
        assert_eq!(c.jobs_completed, 1);
        assert_eq!(c.deadline_hits, 1);
        assert_eq!(c.vms_launched, 2);
        assert_eq!(c.cold_starts, 2);
        assert_eq!(c.interruptions, 0);
        // Latency = 600 + 900 runtime + 2 x 30 s boots (+2 us slack).
        assert!((report.mean_latency_secs - 1560.0).abs() < 1e-3);
        // Cost: both VMs bill boot + runtime; the microsecond of
        // readiness slack can push each bill up by one ceiled second.
        let catalog = Catalog::aws_like();
        let pricing = catalog.pricing();
        let m5 = catalog.instance("m5.large").unwrap();
        let c5 = catalog.instance("c5.xlarge").unwrap();
        let low = pricing.cost_usd(m5, 630.0) + pricing.cost_usd(c5, 930.0);
        let high = pricing.cost_usd(m5, 632.0) + pricing.cost_usd(c5, 932.0);
        assert!(
            report.total_cost_usd >= low - 1e-9 && report.total_cost_usd <= high + 1e-9,
            "total {} outside [{low}, {high}]",
            report.total_cost_usd
        );
        assert!(report.mean_job_cost_usd <= report.total_cost_usd);
        assert_eq!(report.deadline_hit_rate, 1.0);
    }

    #[test]
    fn missed_deadline_is_counted() {
        // Deadline tighter than the planned runtime + boots.
        let job = two_stage_job(0, 0.0, 1500);
        let report = sim().run(&[job], &FleetConfig::on_demand(1)).expect("runs");
        assert_eq!(report.counters.jobs_completed, 1);
        assert_eq!(report.counters.deadline_hits, 0);
        assert_eq!(report.deadline_hit_rate, 0.0);
    }

    #[test]
    fn warm_pool_reuse_skips_boots() {
        // Two identical single-stage jobs 700 s apart: the autoscaler
        // (window 1800 s) keeps the first VM warm, the second job rides
        // it without a boot.
        let mk = |id, t| FleetJob {
            plan: JobPlan {
                id,
                stages: vec![stage("synthesis", "m5.large", 600)],
                deadline_secs: 10_000,
            },
            arrival_secs: t,
        };
        let cfg = FleetConfig::on_demand(1);
        let report = sim().run(&[mk(0, 0.0), mk(1, 700.0)], &cfg).expect("runs");
        assert_eq!(report.counters.vms_launched, 1, "one VM serves both jobs");
        assert_eq!(report.counters.cold_starts, 1);
        assert_eq!(report.counters.warm_reuses, 1);

        // With the pool disabled both jobs boot cold.
        let mut cold_cfg = FleetConfig::on_demand(1);
        cold_cfg.autoscale = AutoscaleConfig::disabled();
        let cold = sim().run(&[mk(0, 0.0), mk(1, 700.0)], &cold_cfg).expect("runs");
        assert_eq!(cold.counters.vms_launched, 2);
        assert_eq!(cold.counters.warm_reuses, 0);
        assert!(cold.total_cost_usd < report.total_cost_usd + 1e-9 ||
                cold.total_cost_usd >= report.total_cost_usd - 1e-9,
                "both accountings are finite");
    }

    #[test]
    fn idle_warm_vms_are_reaped() {
        // One job, then nothing: the warm VM must not live forever.
        let job = two_stage_job(0, 0.0, 10_000);
        let report = sim().run(&[job], &FleetConfig::on_demand(1)).expect("runs");
        // Whatever was pooled is reaped or retired by the drain; either
        // way every launched VM ends terminated and billed exactly once.
        assert!(report.total_cost_usd > 0.0);
        assert!(report.counters.idle_reaped <= report.counters.vms_launched);
    }

    #[test]
    fn calm_spot_market_discounts_the_fleet() {
        let jobs: Vec<FleetJob> = (0..4).map(|k| two_stage_job(k, 300.0 * k as f64, 4000)).collect();
        let on_demand = sim().run(&jobs, &FleetConfig::on_demand(3)).expect("runs");
        let calm = SpotPolicy {
            market: SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.0 },
            ..SpotPolicy::typical()
        };
        let spot = sim()
            .run(&jobs, &FleetConfig::on_demand(3).with_spot(calm))
            .expect("runs");
        assert_eq!(spot.counters.interruptions, 0);
        assert_eq!(spot.counters.jobs_completed, 4);
        assert!(
            spot.total_cost_usd < 0.5 * on_demand.total_cost_usd,
            "spot {} vs on-demand {}",
            spot.total_cost_usd,
            on_demand.total_cost_usd
        );
    }

    #[test]
    fn hostile_spot_market_retries_and_falls_back() {
        // Reclaims are near-certain for hour-long stages, so every
        // stage burns its three spot attempts and completes on demand.
        let job = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![stage("routing", "c5.xlarge", 7200)],
                deadline_secs: 8000,
            },
            arrival_secs: 0.0,
        };
        let hostile = SpotPolicy {
            market: SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.9999 },
            ..SpotPolicy::typical()
        };
        let report = sim()
            .run(&[job], &FleetConfig::on_demand(5).with_spot(hostile))
            .expect("runs");
        let c = report.counters;
        assert_eq!(c.jobs_completed, 1, "fallback still finishes the job");
        assert_eq!(c.interruptions, 3);
        assert_eq!(c.retries, 3);
        assert_eq!(c.spot_fallbacks, 1);
        assert_eq!(c.vms_launched, 4, "3 reclaimed spot VMs + 1 on-demand");
        // The missed deadline is recorded (retries + backoff blew it).
        assert_eq!(c.deadline_hits, 0);
    }

    #[test]
    fn completed_stages_never_rerun_after_a_reclaim() {
        // Stage 1 is short (reclaim-free), stage 2 long and hostile:
        // stage 1's VM count must stay at one across stage-2 retries.
        let job = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![
                    stage("synthesis", "m5.large", 60),
                    stage("routing", "c5.xlarge", 7200),
                ],
                deadline_secs: 100_000,
            },
            arrival_secs: 0.0,
        };
        let hostile = SpotPolicy {
            market: SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.9999 },
            ..SpotPolicy::typical()
        };
        let report = sim()
            .run(&[job], &FleetConfig::on_demand(11).with_spot(hostile))
            .expect("runs");
        let c = report.counters;
        assert_eq!(c.jobs_completed, 1);
        // Stage 1 may be reclaimed at most rarely (60 s at 0.9999/h is
        // still likely reclaimed: p_complete = (1e-4)^(1/60) ~ 0.86).
        // The invariant under test: total VMs = stage-1 attempts +
        // stage-2 attempts, and stage-2's retries never touch stage 1.
        let stage2_attempts = 4; // 3 spot + 1 fallback
        assert!(c.vms_launched > stage2_attempts as u64);
        assert!(
            c.vms_launched <= 1 + 3 + stage2_attempts as u64,
            "stage 1 retries bounded by its own spot attempts: {c:?}"
        );
    }

    #[test]
    fn interrupted_on_every_attempt_terminates_with_exhaustion() {
        // Satellite regression: a job whose stage is interrupted on
        // every attempt must end in the typed `jobs_exhausted` outcome
        // instead of looping forever. No spot policy — the forced
        // interrupts land on on-demand VMs and retry with the standard
        // backoff.
        struct AlwaysInterrupt;
        impl crate::FleetFaults for AlwaysInterrupt {
            fn interrupt(&self, _job: u64, _stage: usize, _attempt: u32) -> Option<f64> {
                Some(0.5)
            }
        }
        let job = two_stage_job(0, 0.0, 2000);
        let mut cfg = FleetConfig::on_demand(1);
        cfg.autoscale = AutoscaleConfig::disabled();
        cfg.max_stage_attempts = 5;
        let report = FleetSimulator::new(Catalog::aws_like())
            .with_faults(std::sync::Arc::new(AlwaysInterrupt))
            .run(&[job], &cfg)
            .expect("terminates");
        let c = report.counters;
        assert_eq!(c.jobs_submitted, 1);
        assert_eq!(c.jobs_completed, 0, "the job never finishes a stage");
        assert_eq!(c.jobs_exhausted, 1, "typed exhaustion outcome");
        assert_eq!(c.interruptions, 5, "one interrupt per allowed attempt");
        assert_eq!(c.vms_launched, 5);
        assert_eq!(
            c.jobs_completed + c.jobs_exhausted,
            c.jobs_submitted,
            "conservation: submitted jobs complete or exhaust"
        );
        let json = report.to_json();
        assert!(json.contains("\"jobs_exhausted\":1"), "{json}");
    }

    #[test]
    fn stall_fault_inflates_stage_durations() {
        struct DoubleStage0;
        impl crate::FleetFaults for DoubleStage0 {
            fn stall_pct(&self, _job: u64, stage: usize) -> u64 {
                if stage == 0 {
                    200
                } else {
                    100
                }
            }
        }
        let job = two_stage_job(0, 0.0, 2000);
        let mut cfg = FleetConfig::on_demand(1);
        cfg.autoscale = AutoscaleConfig::disabled();
        let clean = sim().run(std::slice::from_ref(&job), &cfg).expect("runs");
        let stalled = FleetSimulator::new(Catalog::aws_like())
            .with_faults(std::sync::Arc::new(DoubleStage0))
            .run(&[job], &cfg)
            .expect("runs");
        // Stage 0 is 600 s; doubling it adds exactly 600 s of latency.
        assert!(
            (stalled.mean_latency_secs - clean.mean_latency_secs - 600.0).abs() < 1e-3,
            "clean {} stalled {}",
            clean.mean_latency_secs,
            stalled.mean_latency_secs
        );
        assert_eq!(stalled.counters.jobs_completed, 1, "stalls delay, never kill");
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let jobs: Vec<FleetJob> = (0..8).map(|k| two_stage_job(k, 100.0 * k as f64, 2000)).collect();
        let cfg = FleetConfig::on_demand(42).with_spot(SpotPolicy::typical());
        let a = sim().run(&jobs, &cfg).expect("runs");
        let b = sim().run(&jobs, &cfg).expect("runs");
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // A different seed moves the fault schedule.
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let c = sim().run(&jobs, &cfg2).expect("runs");
        assert_eq!(c.seed, 43);
    }

    #[test]
    fn bad_plans_error_before_simulating() {
        let no_stages = FleetJob {
            plan: JobPlan { id: 0, stages: vec![], deadline_secs: 10 },
            arrival_secs: 0.0,
        };
        assert!(matches!(
            sim().run(&[no_stages], &FleetConfig::on_demand(1)).unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
        let bad_instance = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![stage("syn", "z9.mega", 10)],
                deadline_secs: 10,
            },
            arrival_secs: 0.0,
        };
        assert!(matches!(
            sim().run(&[bad_instance], &FleetConfig::on_demand(1)).unwrap_err(),
            FleetError::Cloud(_)
        ));
        let bad_arrival = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![stage("syn", "m5.large", 10)],
                deadline_secs: 10,
            },
            arrival_secs: f64::NAN,
        };
        assert!(matches!(
            sim().run(&[bad_arrival], &FleetConfig::on_demand(1)).unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
    }

    #[test]
    fn time_conversion_rejects_nan_negative_and_huge() {
        assert_eq!(to_us(1.5), Ok(1_500_000));
        assert_eq!(to_us(0.0), Ok(0));
        assert!(to_us(f64::NAN).is_err(), "NaN must not cast to 0");
        assert!(to_us(-1.0).is_err(), "negative must not cast to 0");
        assert!(to_us(f64::INFINITY).is_err());
        assert!(to_us(1e20).is_err(), "beyond the clock must not saturate");
        assert!(stage_duration_us(600).is_ok());
        assert!(stage_duration_us(u64::MAX / 2).is_err(), "u64 wrap must error");
    }

    #[test]
    fn numeric_edge_cases_error_instead_of_mangling_time() {
        // Arrival beyond the microsecond clock: previously saturated to
        // u64::MAX and scrambled the event heap.
        let late = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![stage("syn", "m5.large", 10)],
                deadline_secs: 10,
            },
            arrival_secs: 1e20,
        };
        assert!(matches!(
            sim().run(&[late], &FleetConfig::on_demand(1)).unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
        // Stage runtime whose microsecond conversion wraps u64.
        let forever = FleetJob {
            plan: JobPlan {
                id: 0,
                stages: vec![stage("syn", "m5.large", u64::MAX / 1000)],
                deadline_secs: 10,
            },
            arrival_secs: 0.0,
        };
        assert!(matches!(
            sim().run(&[forever], &FleetConfig::on_demand(1)).unwrap_err(),
            FleetError::InvalidConfig(_)
        ));
    }

    #[test]
    fn bad_histogram_edges_error_instead_of_panicking() {
        let job = two_stage_job(0, 0.0, 2000);
        for edges in [vec![], vec![1.0, f64::NAN], vec![2.0, 1.0], vec![1.0, 1.0]] {
            let mut cfg = FleetConfig::on_demand(1);
            cfg.latency_edges = edges.clone();
            assert!(
                matches!(
                    sim().run(std::slice::from_ref(&job), &cfg).unwrap_err(),
                    FleetError::InvalidConfig(_)
                ),
                "edges {edges:?} must be rejected"
            );
        }
        let mut cfg = FleetConfig::on_demand(1);
        cfg.autoscale.max_idle_secs = f64::INFINITY;
        assert!(sim().run(&[job], &cfg).is_err());
    }

    #[test]
    fn tracer_records_one_span_per_job_deterministically() {
        let jobs: Vec<FleetJob> =
            (0..3).map(|k| two_stage_job(k, 100.0 * k as f64, 4000)).collect();
        let cfg = FleetConfig::on_demand(9);
        let tracer = eda_cloud_trace::Tracer::new();
        let report = FleetSimulator::new(Catalog::aws_like())
            .with_tracer(tracer.clone())
            .run(&jobs, &cfg)
            .expect("runs");
        assert_eq!(report.counters.jobs_completed, 3);
        let trace = tracer.drain();
        let paths: Vec<&str> = trace.records().iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains(&"fleet/sim"));
        assert!(paths.contains(&"fleet/sim/job/0000"));
        assert!(paths.contains(&"fleet/sim/job/0002"));
        // Same run again: byte-identical trace.
        let tracer2 = eda_cloud_trace::Tracer::new();
        FleetSimulator::new(Catalog::aws_like())
            .with_tracer(tracer2.clone())
            .run(&jobs, &cfg)
            .expect("runs");
        assert_eq!(tracer2.drain().to_json(), trace.to_json());
    }

    #[test]
    fn empty_stream_yields_an_empty_report() {
        let report = sim().run(&[], &FleetConfig::on_demand(1)).expect("runs");
        assert_eq!(report.counters.jobs_submitted, 0);
        assert_eq!(report.deadline_hit_rate, 0.0);
        assert_eq!(report.total_cost_usd, 0.0);
        assert_eq!(report.makespan_secs, 0.0);
    }
}
