//! The warm-pool autoscaler policy.

use eda_cloud_engine::time;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Warm-pool sizing rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Observation window for the recent arrival rate, seconds.
    pub window_secs: f64,
    /// Hard cap on warm (idle, booted) VMs across all instance types.
    pub max_warm: usize,
    /// A warm VM idle longer than this is terminated.
    pub max_idle_secs: f64,
}

impl Default for AutoscaleConfig {
    /// 30-minute rate window, at most 16 warm VMs, 10-minute idle reap.
    fn default() -> Self {
        Self {
            window_secs: 1800.0,
            max_warm: 16,
            max_idle_secs: 600.0,
        }
    }
}

impl AutoscaleConfig {
    /// A disabled pool: every stage boots a cold VM.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            max_warm: 0,
            ..Self::default()
        }
    }
}

/// Tracks recent arrivals and sizes the warm pool to them: the target
/// is one warm VM per arrival observed in the window, capped at
/// `max_warm`. Purely a function of the arrival sequence, so it is
/// deterministic.
#[derive(Debug, Clone)]
pub(crate) struct Autoscaler {
    window_us: u64,
    max_warm: usize,
    arrivals: VecDeque<u64>,
}

impl Autoscaler {
    pub(crate) fn new(config: &AutoscaleConfig) -> Self {
        Self {
            // Saturating by design: the window is a smoothing horizon,
            // not an event time, so a NaN/negative config degrades to 0
            // and an absurdly large one clamps instead of erroring.
            window_us: time::saturating_secs_to_us(config.window_secs.max(0.0)),
            max_warm: config.max_warm,
            arrivals: VecDeque::new(),
        }
    }

    pub(crate) fn record_arrival(&mut self, now_us: u64) {
        self.arrivals.push_back(now_us);
    }

    /// Warm VMs the pool should hold at `now_us`.
    pub(crate) fn target(&mut self, now_us: u64) -> usize {
        let horizon = now_us.saturating_sub(self.window_us);
        while self.arrivals.front().is_some_and(|&t| t < horizon) {
            self.arrivals.pop_front();
        }
        self.arrivals.len().min(self.max_warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler(window_secs: f64, max_warm: usize) -> Autoscaler {
        Autoscaler::new(&AutoscaleConfig {
            window_secs,
            max_warm,
            max_idle_secs: 600.0,
        })
    }

    #[test]
    fn target_counts_recent_arrivals_only() {
        let mut a = scaler(100.0, 16);
        a.record_arrival(0);
        a.record_arrival(50_000_000);
        a.record_arrival(90_000_000);
        assert_eq!(a.target(90_000_000), 3);
        // 0 falls out of the 100 s window at t = 101 s.
        assert_eq!(a.target(101_000_000), 2);
        assert_eq!(a.target(1_000_000_000), 0);
    }

    #[test]
    fn target_respects_the_cap() {
        let mut a = scaler(1000.0, 2);
        for k in 0..10 {
            a.record_arrival(k * 1_000_000);
        }
        assert_eq!(a.target(10_000_000), 2);
    }

    #[test]
    fn disabled_config_targets_zero() {
        let mut a = Autoscaler::new(&AutoscaleConfig::disabled());
        a.record_arrival(5);
        assert_eq!(a.target(5), 0);
    }
}
