//! Spot-interruption fault injection.

use eda_cloud_cloud::SpotMarket;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How the fleet buys spot capacity and reacts to reclaims.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotPolicy {
    /// The spot market (discount + hourly interruption probability).
    pub market: SpotMarket,
    /// Attempts a stage makes on spot capacity before falling back to
    /// on-demand (stage-boundary checkpointing: only the reclaimed
    /// stage restarts, completed stages keep their results).
    pub max_spot_attempts: u32,
    /// Base retry delay after a reclaim; doubles per failed attempt.
    pub backoff_base_secs: f64,
}

impl SpotPolicy {
    /// Typical conditions: the [`SpotMarket::typical`] market, three
    /// spot attempts, and a 60-second base backoff.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            market: SpotMarket::typical(),
            max_spot_attempts: 3,
            backoff_base_secs: 60.0,
        }
    }

    /// Retry delay before attempt `attempt + 1` after `attempt` failed
    /// ones: exponential backoff capped at 16x the base.
    #[must_use]
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(4);
        self.backoff_base_secs * f64::from(1u32 << exp)
    }
}

/// The seeded fault injector: decides, at stage start, whether the spot
/// market reclaims the VM during the run and at what point. Draw order
/// follows simulation event order, so a fixed seed replays the exact
/// same fault schedule.
#[derive(Debug, Clone)]
pub(crate) struct SpotInjector {
    rng: ChaCha8Rng,
}

impl SpotInjector {
    const SALT: u64 = 0x5907_FA17_C3A1_55ED;

    pub(crate) fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed ^ Self::SALT),
        }
    }

    /// `Some(fraction)` when a run of `runtime_secs` is reclaimed after
    /// `fraction` of its runtime (drawn uniformly away from the exact
    /// endpoints); `None` when it completes uninterrupted.
    pub(crate) fn reclaim_fraction(
        &mut self,
        runtime_secs: f64,
        market: &SpotMarket,
    ) -> Option<f64> {
        let p_complete = market.completion_probability(runtime_secs);
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < p_complete {
            None
        } else {
            Some(self.rng.gen_range(0.05..0.95))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interruption_market_never_reclaims() {
        let market = SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.0 };
        let mut inj = SpotInjector::new(1);
        for _ in 0..200 {
            assert_eq!(inj.reclaim_fraction(36_000.0, &market), None);
        }
    }

    #[test]
    fn hostile_market_reclaims_long_runs() {
        let market = SpotMarket { price_fraction: 0.3, interruption_per_hour: 0.99 };
        let mut inj = SpotInjector::new(1);
        let reclaims = (0..200)
            .filter_map(|_| inj.reclaim_fraction(10.0 * 3600.0, &market))
            .collect::<Vec<_>>();
        assert!(reclaims.len() > 190, "{} reclaims", reclaims.len());
        assert!(reclaims.iter().all(|f| (0.05..0.95).contains(f)));
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let market = SpotMarket::typical();
        let mut a = SpotInjector::new(9);
        let mut b = SpotInjector::new(9);
        for _ in 0..100 {
            assert_eq!(
                a.reclaim_fraction(7200.0, &market),
                b.reclaim_fraction(7200.0, &market)
            );
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = SpotPolicy::typical();
        assert_eq!(policy.backoff_secs(1), 60.0);
        assert_eq!(policy.backoff_secs(2), 120.0);
        assert_eq!(policy.backoff_secs(3), 240.0);
        assert_eq!(policy.backoff_secs(10), 960.0, "capped at 16x");
    }
}
