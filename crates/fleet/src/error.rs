//! Fleet-simulator errors.

use eda_cloud_cloud::CloudError;
use eda_cloud_engine::EngineError;
use std::error::Error;
use std::fmt;

/// Errors raised by the fleet simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The cloud substrate rejected a request (unknown instance name in
    /// a plan, or a lifecycle violation — the latter indicates a
    /// scheduler bug and is surfaced, never panicked on).
    Cloud(CloudError),
    /// A job plan or configuration value is unusable.
    InvalidConfig(&'static str),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Cloud(e) => write!(f, "cloud substrate error: {e}"),
            FleetError::InvalidConfig(what) => write!(f, "invalid fleet configuration: {what}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Cloud(e) => Some(e),
            FleetError::InvalidConfig(_) => None,
        }
    }
}

impl From<CloudError> for FleetError {
    fn from(e: CloudError) -> Self {
        FleetError::Cloud(e)
    }
}

/// Engine-substrate failures (checked-time overflow, bad sim config)
/// surface as fleet configuration errors, carrying the engine's static
/// diagnosis.
impl From<EngineError> for FleetError {
    fn from(e: EngineError) -> Self {
        FleetError::InvalidConfig(e.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: FleetError = CloudError::UnknownVm(3).into();
        assert!(e.to_string().contains("no vm with id 3"));
        assert!(e.source().is_some());
        let e = FleetError::InvalidConfig("job 2 has no stages");
        assert!(e.to_string().contains("no stages"));
        assert!(e.source().is_none());
    }

    #[test]
    fn engine_errors_keep_their_diagnosis() {
        let e: FleetError = EngineError::Time("time overflows the microsecond clock").into();
        assert_eq!(e, FleetError::InvalidConfig("time overflows the microsecond clock"));
        let e: FleetError = EngineError::UnknownRegion { region: 1, regions: 1 }.into();
        assert!(matches!(e, FleetError::InvalidConfig(_)));
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<FleetError>();
    }
}
