//! Trait-based fault hooks for the discrete-event engine.
//!
//! The simtest harness injects fleet faults through this trait instead
//! of reaching into the engine: every hook is a pure function of
//! canonical job identity (`JobPlan::id`), stage index, and attempt
//! number — never of wall-clock, thread schedule, or VM ids — so a
//! fault plan replays byte-identically across runs and worker counts.
//! The default implementation of every hook is "no fault", and the
//! simulator's default hook object is [`NoFleetFaults`], so behavior is
//! unchanged unless a harness explicitly attaches hooks.

use std::sync::Arc;

/// Fault hooks consulted by the engine at deterministic decision
/// points of each stage attempt.
pub trait FleetFaults: Send + Sync {
    /// Force this stage attempt to be interrupted (reclaimed) after the
    /// given fraction of its runtime, in `(0, 1)`. Applies to on-demand
    /// VMs too — a forced interrupt models host failure, not just spot
    /// reclamation. `None` leaves the attempt to the seeded spot
    /// injector (and to completion on on-demand capacity).
    fn interrupt(&self, job_id: u64, stage: usize, attempt: u32) -> Option<f64> {
        let _ = (job_id, stage, attempt);
        None
    }

    /// Inflate this stage's planned duration to `pct` percent — a VM
    /// stall / straggler fault. `100` means no stall; values below 100
    /// are clamped up to 100 (faults never speed a stage up).
    fn stall_pct(&self, job_id: u64, stage: usize) -> u64 {
        let _ = (job_id, stage);
        100
    }
}

/// The no-fault default: every hook answers "no fault".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFleetFaults;

impl FleetFaults for NoFleetFaults {}

/// A shared, immutable hook object (hooks take `&self` so one plan can
/// be consulted from any number of runs concurrently).
pub type SharedFleetFaults = Arc<dyn FleetFaults>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_inert() {
        let faults = NoFleetFaults;
        assert_eq!(faults.interrupt(0, 0, 1), None);
        assert_eq!(faults.stall_pct(0, 0), 100);
        let shared: SharedFleetFaults = Arc::new(NoFleetFaults);
        assert_eq!(shared.interrupt(9, 2, 3), None);
    }
}
