//! Job plans and the seeded arrival process.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One stage of a job's MCKP plan: which instance to buy and how long
/// the stage runs on it (the knapsack's whole-second runtime).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedStage {
    /// Stage name (e.g. `"routing"`).
    pub name: String,
    /// Catalog instance name to provision (e.g. `"r5.xlarge"`).
    pub instance: String,
    /// Stage runtime on that instance, whole seconds.
    pub runtime_secs: u64,
}

/// A flow job's deployment plan: per-stage VM selections in flow order
/// plus the deadline the plan was optimized against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobPlan {
    /// Caller-assigned job id (stable across runs for a fixed seed).
    pub id: u64,
    /// Per-stage selections in flow order.
    pub stages: Vec<PlannedStage>,
    /// Total-latency deadline in seconds from arrival.
    pub deadline_secs: u64,
}

impl JobPlan {
    /// Sum of planned stage runtimes (excludes boots and retries).
    #[must_use]
    pub fn planned_runtime_secs(&self) -> u64 {
        self.stages.iter().map(|s| s.runtime_secs).sum()
    }
}

/// A job plus its arrival time in the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJob {
    /// The deployment plan to execute.
    pub plan: JobPlan,
    /// Arrival time in seconds from the start of the simulation.
    pub arrival_secs: f64,
}

/// Seeded Poisson arrival process: `count` arrival times (seconds,
/// non-decreasing) with exponential inter-arrival gaps at
/// `rate_per_hour`. Deterministic per `(count, rate, seed)`; a
/// non-positive rate degenerates to all jobs arriving at `t = 0`.
#[must_use]
pub fn poisson_arrivals(count: usize, rate_per_hour: f64, seed: u64) -> Vec<f64> {
    if rate_per_hour <= 0.0 {
        return vec![0.0; count];
    }
    let mean_gap = 3600.0 / rate_per_hour;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            // Inverse-transform sample of Exp(1/mean): u in [0, 1) keeps
            // the log argument in (0, 1].
            t += -mean_gap * (1.0 - u).ln();
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_positive_and_deterministic() {
        let a = poisson_arrivals(200, 120.0, 7);
        let b = poisson_arrivals(200, 120.0, 7);
        assert_eq!(a, b);
        assert!(a[0] > 0.0);
        assert!(a.windows(2).all(|w| w[1] >= w[0]));
        assert_ne!(a, poisson_arrivals(200, 120.0, 8), "seed matters");
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let a = poisson_arrivals(4000, 60.0, 3);
        let mean = a.last().unwrap() / 4000.0;
        // 60 jobs/hour -> 60 s mean gap, within sampling noise.
        assert!((mean - 60.0).abs() < 5.0, "mean gap {mean}");
    }

    #[test]
    fn zero_rate_degenerates_to_burst() {
        assert_eq!(poisson_arrivals(3, 0.0, 1), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn planned_runtime_sums_stages() {
        let plan = JobPlan {
            id: 0,
            stages: vec![
                PlannedStage { name: "syn".into(), instance: "m5.large".into(), runtime_secs: 10 },
                PlannedStage { name: "sta".into(), instance: "c5.large".into(), runtime_secs: 5 },
            ],
            deadline_secs: 100,
        };
        assert_eq!(plan.planned_runtime_secs(), 15);
    }
}
