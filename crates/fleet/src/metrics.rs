//! Fleet metrics: counters and the [`FleetReport`] with its
//! deterministic JSON rendering.
//!
//! The histogram/sample primitives moved to `eda-cloud-engine` when
//! the event engine was extracted; [`Histogram`] is re-exported here
//! so downstream crates (serve, simtest) keep their import paths.
//!
//! The workspace's `serde` is an offline marker stub, so the report
//! writes its own JSON: keys in fixed order, floats printed with six
//! decimal places, no whitespace variation — two reports are equal iff
//! their JSON strings are byte-identical, which is what the determinism
//! tests and the CI same-seed diff assert.

use eda_cloud_engine::fmt_f64;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use eda_cloud_engine::Histogram;
pub(crate) use eda_cloud_engine::Samples;

/// Monotone event counters accumulated over one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCounters {
    /// Jobs that arrived.
    pub jobs_submitted: u64,
    /// Jobs that ran every stage to completion.
    pub jobs_completed: u64,
    /// Completed jobs whose latency met their deadline.
    pub deadline_hits: u64,
    /// VMs requested from the provisioner (all kinds).
    pub vms_launched: u64,
    /// Stage placements that booted a fresh on-demand VM.
    pub cold_starts: u64,
    /// Stage placements served instantly from the warm pool.
    pub warm_reuses: u64,
    /// Warm VMs reaped after sitting idle past the configured bound.
    pub idle_reaped: u64,
    /// Spot VMs reclaimed by the market mid-stage.
    pub interruptions: u64,
    /// Stage attempts re-run after an interruption.
    pub retries: u64,
    /// Stages that exhausted their spot attempts and fell back to
    /// on-demand capacity.
    pub spot_fallbacks: u64,
    /// Jobs abandoned after a stage burned every allowed attempt
    /// (`FleetConfig::max_stage_attempts`) — the typed exhaustion
    /// outcome, so an interrupt-on-every-attempt job terminates instead
    /// of retrying forever.
    pub jobs_exhausted: u64,
}

/// The per-run report: counters, cost, latency statistics, and
/// histograms. Produced by `FleetSimulator::run`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Event counters.
    pub counters: FleetCounters,
    /// Fraction of completed jobs that met their deadline (0 when no
    /// job completed).
    pub deadline_hit_rate: f64,
    /// Everything the fleet was billed, USD: every VM from launch to
    /// termination (boots, warm idle, and reclaimed partial runs
    /// included), spot VMs at the discounted rate.
    pub total_cost_usd: f64,
    /// Mean per-job attributed cost, USD (busy time only).
    pub mean_job_cost_usd: f64,
    /// Mean completed-job latency (arrival to last stage done), seconds.
    pub mean_latency_secs: f64,
    /// Median completed-job latency, seconds.
    pub p50_latency_secs: f64,
    /// 95th-percentile completed-job latency, seconds.
    pub p95_latency_secs: f64,
    /// Time of the last job completion, seconds.
    pub makespan_secs: f64,
    /// Latency distribution of completed jobs.
    pub latency_hist: Histogram,
    /// Attributed-cost distribution of completed jobs.
    pub cost_hist: Histogram,
}

impl FleetReport {
    /// Render the report as a single JSON object with a fixed key order
    /// and fixed float formatting — byte-identical across same-seed
    /// runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let _ = write!(
            s,
            "\"counters\":{{\"jobs_submitted\":{},\"jobs_completed\":{},\"deadline_hits\":{},\
             \"vms_launched\":{},\"cold_starts\":{},\"warm_reuses\":{},\"idle_reaped\":{},\
             \"interruptions\":{},\"retries\":{},\"spot_fallbacks\":{},\"jobs_exhausted\":{}}},",
            c.jobs_submitted,
            c.jobs_completed,
            c.deadline_hits,
            c.vms_launched,
            c.cold_starts,
            c.warm_reuses,
            c.idle_reaped,
            c.interruptions,
            c.retries,
            c.spot_fallbacks,
            c.jobs_exhausted
        );
        let _ = write!(s, "\"deadline_hit_rate\":{},", fmt_f64(self.deadline_hit_rate));
        let _ = write!(s, "\"total_cost_usd\":{},", fmt_f64(self.total_cost_usd));
        let _ = write!(s, "\"mean_job_cost_usd\":{},", fmt_f64(self.mean_job_cost_usd));
        let _ = write!(s, "\"mean_latency_secs\":{},", fmt_f64(self.mean_latency_secs));
        let _ = write!(s, "\"p50_latency_secs\":{},", fmt_f64(self.p50_latency_secs));
        let _ = write!(s, "\"p95_latency_secs\":{},", fmt_f64(self.p95_latency_secs));
        let _ = write!(s, "\"makespan_secs\":{},", fmt_f64(self.makespan_secs));
        let _ = write!(s, "\"latency_hist\":{},", self.latency_hist.to_json());
        let _ = write!(s, "\"cost_hist\":{}", self.cost_hist.to_json());
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_histogram_is_the_engine_histogram() {
        // The serve/simtest crates import `eda_cloud_fleet::Histogram`;
        // the re-export must stay type-identical to the engine's.
        let mut h: eda_cloud_engine::Histogram = Histogram::new(vec![10.0]);
        h.record(5.0);
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    fn report_json_is_stable_and_ordered() {
        let report = FleetReport {
            seed: 7,
            counters: FleetCounters { jobs_submitted: 2, jobs_completed: 2, ..Default::default() },
            deadline_hit_rate: 1.0,
            total_cost_usd: 1.25,
            mean_job_cost_usd: 0.625,
            mean_latency_secs: 100.0,
            p50_latency_secs: 90.0,
            p95_latency_secs: 110.0,
            makespan_secs: 500.0,
            latency_hist: Histogram::new(vec![60.0]),
            cost_hist: Histogram::new(vec![1.0]),
        };
        let a = report.to_json();
        assert_eq!(a, report.clone().to_json());
        assert!(a.starts_with("{\"seed\":7,\"counters\":{\"jobs_submitted\":2,"));
        assert!(a.contains("\"total_cost_usd\":1.250000"));
        assert!(a.ends_with("\"cost_hist\":{\"edges\":[1.000000],\"counts\":[0,0]}}"));
    }
}
