//! Fleet metrics: counters, fixed-bucket histograms, and the
//! [`FleetReport`] with its deterministic JSON rendering.
//!
//! The workspace's `serde` is an offline marker stub, so the report
//! writes its own JSON: keys in fixed order, floats printed with six
//! decimal places, no whitespace variation — two reports are equal iff
//! their JSON strings are byte-identical, which is what the determinism
//! tests and the CI same-seed diff assert.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A histogram over fixed, caller-chosen bucket edges. A value lands in
/// the first bucket whose upper edge is `>=` the value; values beyond
/// the last edge land in the overflow bucket, so `counts` has
/// `edges.len() + 1` entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram over ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must ascend"
        );
        let counts = vec![0; edges.len() + 1];
        Self { edges, counts }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let bucket = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[bucket] += 1;
    }

    /// Bucket upper edges.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render as `{"edges":[...],"counts":[...]}` with the same fixed
    /// float formatting as [`FleetReport::to_json`] — byte-stable, so
    /// other crates (the serve report) can embed histograms in their own
    /// deterministic JSON documents.
    #[must_use]
    pub fn to_json(&self) -> String {
        let edges: Vec<String> = self.edges.iter().map(|e| fmt_f64(*e)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"edges\":[{}],\"counts\":[{}]}}",
            edges.join(","),
            counts.join(",")
        )
    }
}

/// Monotone event counters accumulated over one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCounters {
    /// Jobs that arrived.
    pub jobs_submitted: u64,
    /// Jobs that ran every stage to completion.
    pub jobs_completed: u64,
    /// Completed jobs whose latency met their deadline.
    pub deadline_hits: u64,
    /// VMs requested from the provisioner (all kinds).
    pub vms_launched: u64,
    /// Stage placements that booted a fresh on-demand VM.
    pub cold_starts: u64,
    /// Stage placements served instantly from the warm pool.
    pub warm_reuses: u64,
    /// Warm VMs reaped after sitting idle past the configured bound.
    pub idle_reaped: u64,
    /// Spot VMs reclaimed by the market mid-stage.
    pub interruptions: u64,
    /// Stage attempts re-run after an interruption.
    pub retries: u64,
    /// Stages that exhausted their spot attempts and fell back to
    /// on-demand capacity.
    pub spot_fallbacks: u64,
    /// Jobs abandoned after a stage burned every allowed attempt
    /// (`FleetConfig::max_stage_attempts`) — the typed exhaustion
    /// outcome, so an interrupt-on-every-attempt job terminates instead
    /// of retrying forever.
    pub jobs_exhausted: u64,
}

/// The per-run report: counters, cost, latency statistics, and
/// histograms. Produced by `FleetSimulator::run`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Seed the run was driven by.
    pub seed: u64,
    /// Event counters.
    pub counters: FleetCounters,
    /// Fraction of completed jobs that met their deadline (0 when no
    /// job completed).
    pub deadline_hit_rate: f64,
    /// Everything the fleet was billed, USD: every VM from launch to
    /// termination (boots, warm idle, and reclaimed partial runs
    /// included), spot VMs at the discounted rate.
    pub total_cost_usd: f64,
    /// Mean per-job attributed cost, USD (busy time only).
    pub mean_job_cost_usd: f64,
    /// Mean completed-job latency (arrival to last stage done), seconds.
    pub mean_latency_secs: f64,
    /// Median completed-job latency, seconds.
    pub p50_latency_secs: f64,
    /// 95th-percentile completed-job latency, seconds.
    pub p95_latency_secs: f64,
    /// Time of the last job completion, seconds.
    pub makespan_secs: f64,
    /// Latency distribution of completed jobs.
    pub latency_hist: Histogram,
    /// Attributed-cost distribution of completed jobs.
    pub cost_hist: Histogram,
}

impl FleetReport {
    /// Render the report as a single JSON object with a fixed key order
    /// and fixed float formatting — byte-identical across same-seed
    /// runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let _ = write!(
            s,
            "\"counters\":{{\"jobs_submitted\":{},\"jobs_completed\":{},\"deadline_hits\":{},\
             \"vms_launched\":{},\"cold_starts\":{},\"warm_reuses\":{},\"idle_reaped\":{},\
             \"interruptions\":{},\"retries\":{},\"spot_fallbacks\":{},\"jobs_exhausted\":{}}},",
            c.jobs_submitted,
            c.jobs_completed,
            c.deadline_hits,
            c.vms_launched,
            c.cold_starts,
            c.warm_reuses,
            c.idle_reaped,
            c.interruptions,
            c.retries,
            c.spot_fallbacks,
            c.jobs_exhausted
        );
        let _ = write!(s, "\"deadline_hit_rate\":{},", fmt_f64(self.deadline_hit_rate));
        let _ = write!(s, "\"total_cost_usd\":{},", fmt_f64(self.total_cost_usd));
        let _ = write!(s, "\"mean_job_cost_usd\":{},", fmt_f64(self.mean_job_cost_usd));
        let _ = write!(s, "\"mean_latency_secs\":{},", fmt_f64(self.mean_latency_secs));
        let _ = write!(s, "\"p50_latency_secs\":{},", fmt_f64(self.p50_latency_secs));
        let _ = write!(s, "\"p95_latency_secs\":{},", fmt_f64(self.p95_latency_secs));
        let _ = write!(s, "\"makespan_secs\":{},", fmt_f64(self.makespan_secs));
        let _ = write!(s, "\"latency_hist\":{},", self.latency_hist.to_json());
        let _ = write!(s, "\"cost_hist\":{}", self.cost_hist.to_json());
        s.push('}');
        s
    }
}

/// Fixed-precision float rendering for the JSON report (6 decimal
/// places covers sub-cent costs and microsecond-rounded latencies).
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Running latency/cost samples; turned into mean/percentile scalars
/// for the report.
#[derive(Debug, Clone, Default)]
pub(crate) struct Samples {
    values: Vec<f64>,
}

impl Samples {
    pub(crate) fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    pub(crate) fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`); 0 when empty.
    pub(crate) fn percentile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![10.0, 100.0]);
        for v in [5.0, 10.0, 11.0, 250.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.to_json(), "{\"edges\":[10.000000,100.000000],\"counts\":[2,1,1]}");
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(vec![10.0, 5.0]);
    }

    #[test]
    fn samples_statistics() {
        let mut s = Samples::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.95), 0.0);
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record(v);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.5), 2.0);
        assert_eq!(s.percentile(0.95), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn report_json_is_stable_and_ordered() {
        let report = FleetReport {
            seed: 7,
            counters: FleetCounters { jobs_submitted: 2, jobs_completed: 2, ..Default::default() },
            deadline_hit_rate: 1.0,
            total_cost_usd: 1.25,
            mean_job_cost_usd: 0.625,
            mean_latency_secs: 100.0,
            p50_latency_secs: 90.0,
            p95_latency_secs: 110.0,
            makespan_secs: 500.0,
            latency_hist: Histogram::new(vec![60.0]),
            cost_hist: Histogram::new(vec![1.0]),
        };
        let a = report.to_json();
        assert_eq!(a, report.clone().to_json());
        assert!(a.starts_with("{\"seed\":7,\"counters\":{\"jobs_submitted\":2,"));
        assert!(a.contains("\"total_cost_usd\":1.250000"));
        assert!(a.ends_with("\"cost_hist\":{\"edges\":[1.000000],\"counts\":[0,0]}}"));
    }
}
