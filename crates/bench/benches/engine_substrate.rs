//! Criterion benches for the deterministic simulation substrate: the
//! raw event heap, and the sharded multi-region simulation at 1 vs 4
//! workers and 1 vs 3 shards.
//!
//! Before timing anything, the multi-region comparison asserts that
//! every fan-out produces the byte-identical report — the determinism
//! contract the conservative lookahead barrier guarantees. Run with
//! `BENCH_JSON=BENCH_engine.json cargo bench -p eda-cloud-bench
//! --bench engine_substrate` to emit the document the `benchgate`
//! binary diffs against `crates/bench/baselines/BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_engine::{EventHeap, RegionSim, RegionSimConfig};
use std::hint::black_box;

fn bench_event_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_heap");
    group.sample_size(10);
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut heap: EventHeap<u64> = EventHeap::new();
            for i in 0..10_000u64 {
                // A colliding timestamp every 8 events exercises the
                // seq tie-break path.
                heap.push(i / 8 * 1_000, i);
            }
            let mut sum = 0u64;
            while let Some((t, v)) = heap.pop() {
                sum = sum.wrapping_add(t ^ v);
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_region_sim(c: &mut Criterion) {
    let config = RegionSimConfig { jobs: 400, ..RegionSimConfig::default() };
    let baseline = RegionSim::run(&config, 1, 1).expect("runs").to_json();
    for (workers, shards) in [(4, 1), (1, 3), (4, 3)] {
        let json = RegionSim::run(&config, workers, shards).expect("runs").to_json();
        assert_eq!(baseline, json, "fan-out must not change the report bytes");
    }

    let mut group = c.benchmark_group("region_sim");
    group.sample_size(10);
    for (workers, shards) in [(1usize, 1usize), (4, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("w{workers}_s{shards}")),
            &(workers, shards),
            |b, &(w, s)| {
                b.iter(|| black_box(RegionSim::run(black_box(&config), w, s).unwrap()));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_event_heap, bench_region_sim
}
criterion_main!(benches);
