//! Criterion benches for the GCN stack: sparse aggregation (allocating
//! and allocation-free CSR kernels), dense matmul, forward/backward
//! passes, a full training step, and float vs int8-quantized
//! per-request inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_gcn::{GraphSample, Matrix, ModelConfig, QuantizedPredictor, RuntimePredictor};
use eda_cloud_netlist::{generators, DesignGraph};
use std::hint::black_box;

fn sample() -> GraphSample {
    let aig = generators::openpiton_design("aes").unwrap();
    GraphSample::new(&DesignGraph::from_aig(&aig), [100.0, 60.0, 35.0, 22.0])
}

fn bench_spmm(c: &mut Criterion) {
    let s = sample();
    let dense = Matrix::zeros(s.node_count(), 32);
    c.bench_function("spmm_aes_x32", |b| {
        b.iter(|| black_box(s.a_norm.matmul(black_box(&dense))));
    });
    // The allocation-free CSR kernel the model hot paths run on.
    let mut out = Matrix::zeros(0, 0);
    c.bench_function("spmm_into_aes_x32", |b| {
        b.iter(|| {
            s.a_norm
                .matmul_into(black_box(&dense), &mut out)
                .expect("valid operands");
            black_box(&out);
        });
    });
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_matmul");
    for n in [64usize, 128, 256] {
        let a = Matrix::zeros(n, n);
        let b_mat = Matrix::identity(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(black_box(&b_mat))));
        });
    }
    group.finish();
}

fn bench_model(c: &mut Criterion) {
    let s = sample();
    let mut group = c.benchmark_group("model");
    group.sample_size(10);
    for (label, config) in [
        ("fast", ModelConfig::fast()),
        ("paper", ModelConfig::paper()),
    ] {
        let model = RuntimePredictor::new(&config, 3);
        group.bench_function(format!("forward_{label}"), |b| {
            b.iter(|| black_box(model.predict_log(black_box(&s))));
        });
        group.bench_function(format!("train_step_{label}"), |b| {
            let mut m = RuntimePredictor::new(&config, 3);
            b.iter(|| black_box(m.train_step(black_box(&s), 1e-3)));
        });
    }
    group.finish();
}

fn bench_quantized(c: &mut Criterion) {
    // Float vs int8 per-request inference at the paper architecture —
    // the serving-path comparison the quantized snapshot exists for.
    let s = sample();
    let float = RuntimePredictor::new(&ModelConfig::paper(), 3);
    let quant = QuantizedPredictor::quantize(&float);
    let mut group = c.benchmark_group("infer_request");
    group.sample_size(10);
    group.bench_function("float_paper", |b| {
        b.iter(|| black_box(float.predict_log(black_box(&s))));
    });
    group.bench_function("int8_paper", |b| {
        b.iter(|| black_box(quant.predict_log(black_box(&s))));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_spmm, bench_dense_matmul, bench_model, bench_quantized
}
criterion_main!(benches);
