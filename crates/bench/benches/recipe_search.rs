//! Criterion bench for the deterministic MCTS recipe search: the same
//! seeded search over one design's pass sequences with the evaluation
//! batch chewed through by 1, 2, or 4 workers. Outcomes are
//! byte-identical at every width; only wall clock moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_netlist::generators;
use eda_cloud_recipe::{RecipeSearch, SearchConfig};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let aig = generators::build_family("comparator", 6).expect("known family");
    let mut group = c.benchmark_group("recipe_search");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let search = RecipeSearch::new(SearchConfig {
            iters: 24,
            seed: 7,
            workers,
            ..SearchConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |bench, _| {
                bench.iter(|| black_box(search.run("comparator_6", &aig).expect("searches")));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_search
}
criterion_main!(benches);
