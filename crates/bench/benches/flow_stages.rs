//! Criterion benches for the four EDA engines on a mid-size design,
//! plus the Fig. 2-d ablation of simulated runtime vs vCPU count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_flow::{ExecContext, Placer, Recipe, Router, StaEngine, Synthesizer};
use eda_cloud_netlist::generators;
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let design = generators::openpiton_design("dynamic_node").unwrap();
    let ctx = ExecContext::with_vcpus(2);
    let synthesizer = Synthesizer::new().with_verification(false);
    let (netlist, _) = synthesizer.run(&design, &Recipe::balanced(), &ctx).unwrap();
    let (placement, _) = Placer::new().run(&netlist, &ctx).unwrap();

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("synthesis", |b| {
        b.iter(|| {
            black_box(
                synthesizer
                    .run(black_box(&design), &Recipe::balanced(), &ctx)
                    .unwrap(),
            )
        });
    });
    group.bench_function("placement", |b| {
        b.iter(|| black_box(Placer::new().run(black_box(&netlist), &ctx).unwrap()));
    });
    group.bench_function("routing", |b| {
        b.iter(|| {
            black_box(
                Router::new()
                    .run(black_box(&netlist), &placement, &ctx)
                    .unwrap(),
            )
        });
    });
    group.bench_function("sta", |b| {
        b.iter(|| {
            black_box(
                StaEngine::new()
                    .run(black_box(&netlist), &placement, &ctx)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_routing_scaling(c: &mut Criterion) {
    // Real wall-clock of the threaded router across thread counts — the
    // measured companion to Fig. 3's simulated speedups.
    let design = generators::openpiton_design("aes").unwrap();
    let ctx1 = ExecContext::with_vcpus(1);
    let synthesizer = Synthesizer::new().with_verification(false);
    let (netlist, _) = synthesizer.run(&design, &Recipe::balanced(), &ctx1).unwrap();
    let (placement, _) = Placer::new().run(&netlist, &ctx1).unwrap();

    let mut group = c.benchmark_group("routing_threads");
    group.sample_size(10);
    for vcpus in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(vcpus), &vcpus, |b, &v| {
            let ctx = ExecContext::with_vcpus(v);
            b.iter(|| black_box(Router::new().run(&netlist, &placement, &ctx).unwrap()));
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_stages, bench_routing_scaling
}
criterion_main!(benches);
