//! Criterion bench for the router's batched parallel rounds: the same
//! placed design routed with the region buckets chewed through by 1, 2,
//! or 4 host threads (`ExecContext::route_workers`). Results are
//! bit-identical at every width; only wall clock moves — the multi-
//! worker speedup is the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_flow::{ExecContext, Placement, Placer, Recipe, Router, Synthesizer};
use eda_cloud_netlist::{generators, Netlist};
use std::hint::black_box;

fn placed_design() -> (Netlist, Placement) {
    let aig = generators::multiplier(14);
    let ctx = ExecContext::with_vcpus(4);
    let (nl, _) = Synthesizer::new()
        .with_verification(false)
        .run(&aig, &Recipe::balanced(), &ctx)
        .expect("synthesis");
    let (pl, _) = Placer::new().run(&nl, &ctx).expect("placement");
    (nl, pl)
}

fn bench_router(c: &mut Criterion) {
    let (nl, pl) = placed_design();
    let router = Router::new();
    let mut group = c.benchmark_group("router_batching");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let ctx = ExecContext::with_vcpus(4).with_route_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |bench, _| {
                bench.iter(|| black_box(router.run(&nl, &pl, &ctx).expect("routes")));
            },
        );
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_router
}
criterion_main!(benches);
