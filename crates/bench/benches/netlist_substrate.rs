//! Criterion benches for the design substrate: generator throughput,
//! structural hashing, graph conversion, and format round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_netlist::{formats, generators, DesignGraph};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for w in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::new("multiplier", w), &w, |b, &w| {
            b.iter(|| black_box(generators::multiplier(w)));
        });
    }
    group.bench_function("sparc_core_composite", |b| {
        b.iter(|| black_box(generators::openpiton_design("sparc_core").unwrap()));
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let aig = generators::multiplier(16);
    let inputs = vec![true; aig.input_count()];
    let words: Vec<u64> = (0..aig.input_count() as u64).map(|i| i * 0x9E37).collect();
    let mut group = c.benchmark_group("simulation");
    group.bench_function("scalar", |b| {
        b.iter(|| black_box(aig.simulate(black_box(&inputs)).unwrap()));
    });
    group.bench_function("word64", |b| {
        b.iter(|| black_box(aig.simulate_words(black_box(&words)).unwrap()));
    });
    group.finish();
}

fn bench_graph_conversion(c: &mut Criterion) {
    let aig = generators::openpiton_design("aes").unwrap();
    c.bench_function("design_graph_from_aig", |b| {
        b.iter(|| black_box(DesignGraph::from_aig(black_box(&aig))));
    });
}

fn bench_formats(c: &mut Criterion) {
    let aig = generators::multiplier(12);
    let text = formats::write_aag(&aig);
    let mut group = c.benchmark_group("formats");
    group.bench_function("write_aag", |b| {
        b.iter(|| black_box(formats::write_aag(black_box(&aig))));
    });
    group.bench_function("read_aag", |b| {
        b.iter(|| black_box(formats::read_aag(black_box(&text)).unwrap()));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_generators,
    bench_simulation,
    bench_graph_conversion,
    bench_formats

}
criterion_main!(benches);
