//! Criterion benches for the parallel sweep engine: dataset-corpus
//! generation and design characterization at 1 vs 4 workers, plus the
//! flow-result cache's effect in isolation.
//!
//! Before timing anything, each comparison asserts that the parallel
//! output is bit-identical to the serial output — the determinism
//! contract the sweep engine's canonical reduction guarantees. The
//! worker speedup scales with the host's core count (on a single-core
//! runner the 1- and 4-worker times coincide); the cache speedup is
//! architectural and shows up everywhere.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_core::dataset::{DatasetBuilder, DatasetConfig};
use eda_cloud_core::{
    design_fingerprint, CharacterizationConfig, FlowCache, FlowKey, Workflow,
};
use eda_cloud_flow::{ExecContext, Recipe, Synthesizer};
use eda_cloud_netlist::generators;
use std::hint::black_box;

fn bench_dataset_workers(c: &mut Criterion) {
    let workflow = Workflow::with_defaults();
    let builder = DatasetBuilder::new(&workflow);
    let serial = builder
        .build(&DatasetConfig::smoke().with_workers(1))
        .expect("serial corpus");
    let parallel = builder
        .build(&DatasetConfig::smoke().with_workers(4))
        .expect("parallel corpus");
    assert_eq!(serial, parallel, "parallel corpus must be bit-identical to serial");

    let mut group = c.benchmark_group("dataset_workers");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let config = DatasetConfig::smoke().with_workers(w);
            b.iter(|| black_box(builder.build(black_box(&config)).unwrap()));
        });
    }
    group.finish();
}

fn bench_characterize_workers(c: &mut Criterion) {
    let workflow = Workflow::with_defaults();
    let design = generators::openpiton_design("dynamic_node").unwrap();
    let serial = workflow
        .characterize_design(&design, &CharacterizationConfig::paper().with_workers(1))
        .expect("serial sweep");
    let parallel = workflow
        .characterize_design(&design, &CharacterizationConfig::paper().with_workers(4))
        .expect("parallel sweep");
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical to serial");

    let mut group = c.benchmark_group("characterize_workers");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let config = CharacterizationConfig::paper().with_workers(w);
            b.iter(|| {
                black_box(workflow.characterize_design(black_box(&design), &config).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_flow_cache(c: &mut Criterion) {
    // The record-once/replay-per-machine cache vs four fresh synthesis
    // runs — the per-sweep-point saving independent of worker count.
    let design = generators::openpiton_design("dynamic_node").unwrap();
    let recipe = Recipe::balanced();
    let synthesizer = Synthesizer::new().with_verification(false);
    let contexts: Vec<ExecContext> =
        [1u32, 2, 4, 8].iter().map(|&v| ExecContext::with_vcpus(v)).collect();

    let mut group = c.benchmark_group("synthesis_sweep");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            for ctx in &contexts {
                black_box(synthesizer.run(black_box(&design), &recipe, ctx).unwrap());
            }
        });
    });
    group.bench_function("cached", |b| {
        b.iter(|| {
            let cache = FlowCache::new();
            let key = FlowKey {
                design: design_fingerprint(&design),
                recipe: recipe.name().to_owned(),
                verify: false,
            };
            for ctx in &contexts {
                black_box(
                    cache
                        .synthesize(&synthesizer, black_box(&design), &key, &recipe, ctx)
                        .unwrap(),
                );
            }
        });
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_dataset_workers, bench_characterize_workers, bench_flow_cache
}
criterion_main!(benches);
