//! Criterion benches for the MCKP solver: DP cost vs budget and stage
//! count, against the greedy and exhaustive baselines — plus the
//! objective ablation (paper's max Σ1/p vs direct min-cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_mckp::{baselines, Choice, Objective, Problem, Solver, Stage};
use std::hint::black_box;

fn synth_problem(stages: usize, choices: usize) -> Problem {
    let mut s = 0xDECAFu64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        s >> 33
    };
    Problem::new(
        (0..stages)
            .map(|i| {
                Stage::new(
                    format!("s{i}"),
                    (0..choices)
                        .map(|j| {
                            Choice::new(
                                format!("c{j}"),
                                200 + next() % 5000,
                                0.01 + (next() % 100) as f64 / 50.0,
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    )
    .expect("valid")
}

fn bench_budget_scaling(c: &mut Criterion) {
    let problem = synth_problem(4, 4);
    let mut group = c.benchmark_group("dp_budget");
    for budget in [10_000u64, 40_000, 160_000] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &bud| {
            b.iter(|| black_box(Solver::new().solve_min_cost(black_box(&problem), bud)));
        });
    }
    group.finish();
}

fn bench_stage_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_stages");
    for stages in [4usize, 8, 16] {
        let problem = synth_problem(stages, 4);
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, _| {
            b.iter(|| black_box(Solver::new().solve_min_cost(black_box(&problem), 30_000)));
        });
    }
    group.finish();
}

fn bench_vs_baselines(c: &mut Criterion) {
    let problem = synth_problem(4, 4);
    let budget = 12_000;
    let mut group = c.benchmark_group("solvers");
    group.bench_function("dp_min_cost", |b| {
        b.iter(|| black_box(Solver::new().solve_min_cost(&problem, budget)));
    });
    group.bench_function("dp_paper_objective", |b| {
        b.iter(|| black_box(Solver::new().solve(&problem, budget, Objective::MaxInverseCost)));
    });
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(baselines::greedy(&problem, budget)));
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(baselines::exhaustive_min_cost(&problem, budget)));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_budget_scaling, bench_stage_scaling, bench_vs_baselines
}
criterion_main!(benches);
