//! Criterion benches for the serving tier's micro-batching: one padded
//! chunked GCN forward over N designs vs N per-request forwards, vs the
//! naive monolithic batch (one giant block-diagonal matrix), plus the
//! batch-packing overhead itself.
//!
//! The interesting comparison is the three-way one. A monolithic batch
//! streams a multi-hundred-KiB activation matrix through every layer,
//! evicting itself between operations, and lands well *behind* the
//! per-request loop. Chunked packing (cache-sized block-diagonal
//! slices, see `eda_cloud_gcn::CHUNK_TARGET_ROWS`) recovers that loss:
//! batched inference runs at per-request speed while keeping the
//! amortized dispatch, alloc-free steady state, and deterministic
//! worker fan-out the serving tier batches for. `EXPERIMENTS.md`
//! records the measured numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_cloud_gcn::{GraphBatch, GraphSample, ModelConfig, RuntimePredictor};
use eda_cloud_netlist::{generators, DesignGraph};
use std::hint::black_box;

/// A pool of distinct small designs, cycled to fill a batch.
fn pool() -> Vec<GraphSample> {
    let mut samples = Vec::new();
    for family in ["adder", "parity", "comparator", "max", "gray2bin", "hamming"] {
        for size in [4u32, 6, 8] {
            let aig = generators::build_family(family, size).expect("known family");
            samples.push(GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4]));
        }
    }
    samples
}

fn bench_batched_vs_sequential(c: &mut Criterion) {
    let samples = pool();
    let model = RuntimePredictor::new(&ModelConfig::fast(), 7);
    let mut group = c.benchmark_group("inference");
    for n in [1usize, 8, 32] {
        let picked: Vec<&GraphSample> =
            (0..n).map(|i| &samples[i % samples.len()]).collect();
        let chunked = GraphBatch::pack_padded(&picked, 8);
        let monolithic = GraphBatch::pack_chunked(&picked, 8, usize::MAX);
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| black_box(model.predict_secs_batch(black_box(&chunked))));
        });
        group.bench_with_input(BenchmarkId::new("monolithic", n), &n, |b, _| {
            b.iter(|| black_box(model.predict_secs_batch(black_box(&monolithic))));
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                for s in &picked {
                    black_box(model.predict_secs(black_box(s)));
                }
            });
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let samples = pool();
    let picked: Vec<&GraphSample> = samples.iter().collect();
    c.bench_function("pack_padded_18", |b| {
        b.iter(|| black_box(GraphBatch::pack_padded(black_box(&picked), 8)));
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_batched_vs_sequential, bench_packing
}
criterion_main!(benches);
