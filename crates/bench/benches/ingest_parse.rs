//! Criterion bench for the ingestion front door: raw parser throughput
//! per format (BLIF truth-table lowering, structural Verilog, stitched
//! Bookshelf) and the full pipeline — parse, validate, canonicalize,
//! featurize, OOD-score — on the largest checked-in fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use eda_cloud_ingest::blif::parse_blif;
use eda_cloud_ingest::bookshelf::parse_bookshelf;
use eda_cloud_ingest::verilog::parse_verilog;
use eda_cloud_ingest::{fixtures, FrontDoor, FrontDoorConfig};
use eda_cloud_serve::UploadDoc;
use eda_cloud_tech::Library;
use std::hint::black_box;

fn bench_parsers(c: &mut Criterion) {
    let lib = Library::synthetic_14nm();
    let shelf = fixtures::stitch_bookshelf(
        fixtures::TINY_NODES,
        fixtures::TINY_NETS,
        Some(fixtures::TINY_PL),
    );
    let mut group = c.benchmark_group("ingest_parse");
    group.bench_function("blif_c17", |b| {
        b.iter(|| black_box(parse_blif(black_box(fixtures::C17_BLIF), &lib).expect("parses")));
    });
    group.bench_function("blif_counter", |b| {
        b.iter(|| black_box(parse_blif(black_box(fixtures::COUNTER_BLIF), &lib).expect("parses")));
    });
    group.bench_function("verilog_full_adder", |b| {
        b.iter(|| {
            black_box(parse_verilog(black_box(fixtures::FULL_ADDER_V), &lib).expect("parses"))
        });
    });
    group.bench_function("bookshelf_tiny", |b| {
        b.iter(|| black_box(parse_bookshelf("tiny", black_box(&shelf)).expect("parses")));
    });
    group.finish();
}

fn bench_front_door(c: &mut Criterion) {
    let door = FrontDoor::with_pool_profile(FrontDoorConfig::default());
    let doc = UploadDoc::new("c17", "blif", fixtures::C17_BLIF);
    let mut group = c.benchmark_group("ingest_pipeline");
    group.sample_size(10);
    group.bench_function("front_door_c17", |b| {
        b.iter(|| black_box(door.ingest_doc(black_box(&doc)).expect("ingests")));
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_parsers, bench_front_door
}
criterion_main!(benches);
