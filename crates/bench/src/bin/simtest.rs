//! Drives the fault-injection harness: generate (or load) a fault
//! plan, run the fleet/serve/lifecycle loops under it, check every
//! global invariant, and — on failure — shrink the plan to a minimal
//! replayable reproducer.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin simtest --release -- --seed 7 --faults 6
//! cargo run -p eda-cloud-bench --bin simtest --release -- --seed 7 --faults 6 --json
//! cargo run -p eda-cloud-bench --bin simtest --release -- --seed 7 --runs 4 --workers 8
//! cargo run -p eda-cloud-bench --bin simtest --release -- --plan repro.json --shrink
//! ```
//!
//! The run is deterministic: the same `--seed/--faults` (or the same
//! `--plan` file) produce a byte-identical report at any `--workers`
//! count. `--runs N` sweeps seeds `seed..seed+N`, one line per run.
//! Exit status is non-zero when any run trips an invariant, making the
//! binary a drop-in CI smoke check.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::render_table;
use eda_cloud_core::{SimtestScenario, Workflow};
use eda_cloud_simtest::{shrink_plan, FaultPlan, SimtestReport};
use std::process::ExitCode;

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let seed: u64 = numeric(&args, "seed", 7);
    let runs: u64 = numeric(&args, "runs", 1);
    let faults: usize = numeric(&args, "faults", 6);
    let mut scenario = SimtestScenario::new(seed, faults);
    scenario.workers = args.workers();

    // --plan FILE replays a checked-in reproducer instead of a
    // seed-generated plan; --runs is ignored in that mode.
    let loaded_plan = match args.value("plan") {
        None => None,
        Some(path) => {
            let parsed = std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| FaultPlan::from_json(&text).map_err(|e| e.to_string()));
            match parsed {
                Ok(plan) => Some(plan),
                Err(e) => {
                    eprintln!("--plan {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());

    let mut failed = false;
    let run_seeds: Vec<u64> =
        if loaded_plan.is_some() { vec![seed] } else { (seed..seed + runs.max(1)).collect() };
    for run_seed in run_seeds {
        let scenario = SimtestScenario { seed: run_seed, ..scenario.clone() };
        let config = scenario.config();
        let (plan, report) = match &loaded_plan {
            // A loaded reproducer bypasses the seed-generated plan.
            Some(plan) => {
                let run =
                    eda_cloud_simtest::run_simtest(&config, plan).expect("simtest run");
                (plan.clone(), run.report)
            }
            None => (scenario.plan(), workflow.simtest(&scenario).expect("simtest run")),
        };
        if args.flag("json") {
            println!("{}", report.to_json());
        } else {
            print_report(run_seed, &report);
        }
        if !report.passed() {
            failed = true;
            if args.flag("shrink") {
                match shrink_plan(&config, &plan) {
                    Ok(minimal) => {
                        eprintln!(
                            "shrunk {} events to {}; minimal reproducer:",
                            plan.events.len(),
                            minimal.events.len()
                        );
                        eprintln!("{}", minimal.to_json());
                    }
                    Err(e) => eprintln!("shrink failed: {e}"),
                }
            }
        }
    }
    obs.export();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(seed: u64, report: &SimtestReport) {
    println!(
        "Simtest — seed {seed}, {} fault events, {} fault spans, {}",
        report.plan.events.len(),
        report.fault_spans,
        if report.passed() { "PASS" } else { "FAIL" },
    );
    let f = &report.fleet;
    let s = &report.serve;
    let l = &report.lifecycle;
    let rows = vec![
        vec![
            "fleet jobs done/exhausted".into(),
            format!("{} / {}", f.jobs_completed, f.jobs_exhausted),
        ],
        vec!["fleet interruptions/retries".into(), format!("{} / {}", f.interruptions, f.retries)],
        vec!["serve completed/shed".into(), format!("{} / {}", s.completed, s.shed)],
        vec![
            "lifecycle joins/dropped".into(),
            format!("{} / {}", l.feedback_joins, l.feedback_dropped),
        ],
        vec![
            "lifecycle promotions/rollbacks".into(),
            format!("{} / {}", l.promotions, l.rollbacks),
        ],
        vec![
            "snapshot corruptions rejected".into(),
            format!("{} / {}", report.corruption_rejected, report.corruption_injected),
        ],
        vec!["violations".into(), format!("{}", report.violations.len())],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    for v in &report.violations {
        println!("  VIOLATION [{}] {}", v.checker, v.detail);
    }
}
