//! Runs the model-lifecycle controller over a request stream with
//! injected ground-truth drift: serving from the registry-managed
//! snapshot, joining feedback, detecting the drift with per-design
//! Page-Hinkley tests, shadow-retraining a candidate on the replay
//! buffers, and canarying it to promotion or rollback.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin lifecycle --release -- --requests 320 --seed 7
//! cargo run -p eda-cloud-bench --bin lifecycle --release -- --requests 320 --seed 7 --json
//! cargo run -p eda-cloud-bench --bin lifecycle --release -- --drift 106 --drift-factor 2.2
//! cargo run -p eda-cloud-bench --bin lifecycle --release -- --canary 4 --workers 4
//! cargo run -p eda-cloud-bench --bin lifecycle --release -- --requests 320 --trace trace.json
//! ```
//!
//! The run is deterministic: the same `--requests/--seed/--rate/
//! --drift/--drift-factor/--canary` produce a byte-identical report
//! (and `--json` line, and `--trace` file) at any `--workers` count —
//! the only parallelism is the per-stage fan-out of batched forwards
//! and retrains, joined by stage index.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::render_table;
use eda_cloud_core::{LifecycleScenario, Workflow};
use eda_cloud_lifecycle::LifecycleReport;

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() {
    let args = Args::from_env();
    let mut scenario =
        LifecycleScenario::new(numeric(&args, "requests", 320), numeric(&args, "seed", 7));
    scenario.rate_per_sec = numeric(&args, "rate", scenario.rate_per_sec);
    scenario.drift_at = numeric(&args, "drift", scenario.drift_at);
    scenario.drift_factor = numeric(&args, "drift-factor", scenario.drift_factor);
    scenario.canary_every = numeric(&args, "canary", scenario.canary_every);
    scenario.workers = args.workers();

    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());
    let (report, _feedback) = workflow.lifecycle(&scenario).expect("lifecycle run");
    obs.export();

    if args.flag("json") {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "Lifecycle — {} requests at {}/s, seed {}, drift x{} at ordinal {}, canary 1/{}",
        scenario.requests,
        scenario.rate_per_sec,
        scenario.seed,
        scenario.drift_factor,
        scenario.drift_at,
        scenario.canary_every,
    );
    print_report(&report);
}

fn print_report(report: &LifecycleReport) {
    let c = report.counters;
    let rows = vec![
        vec!["requests / feedback joins".into(), format!("{} / {}", c.requests, c.feedback_joins)],
        vec!["cache hits / misses".into(), format!("{} / {}", c.cache_hits, c.cache_misses)],
        vec!["GCN forwards".into(), format!("{}", c.gcn_predictions)],
        vec!["drift detections".into(), format!("{}", c.drift_detections)],
        vec!["retrains".into(), format!("{}", c.retrains)],
        vec!["canaries started".into(), format!("{}", c.canaries_started)],
        vec!["promotions / rollbacks".into(), format!("{} / {}", c.promotions, c.rollbacks)],
        vec!["final primary version".into(), format!("v{}", report.final_primary_version)],
        vec!["mean / p95 latency (µs)".into(),
            format!("{} / {}", report.mean_latency_us, report.p95_latency_us)],
        vec!["makespan (µs)".into(), format!("{}", report.makespan_us)],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    let mut stage_rows = Vec::new();
    for (k, stage) in report.stages.iter().enumerate() {
        stage_rows.push(vec![
            eda_cloud_serve::STAGE_NAMES[k].into(),
            ape_pct(stage.pre_drift.mean_micros()),
            ape_pct(stage.post_drift_frozen.mean_micros()),
            ape_pct(stage.post_rollout_frozen.mean_micros()),
            ape_pct(stage.post_rollout_active.mean_micros()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["stage", "pre-drift", "post-drift frozen", "post-rollout frozen", "post-rollout active"],
            &stage_rows,
        )
    );
    for event in &report.timeline {
        println!(
            "  t={:>9}µs ordinal {:>4}: {} {} (v{})",
            event.time_us, event.ordinal, event.kind, event.stage, event.version
        );
    }
}

fn ape_pct(mean_micros: u64) -> String {
    format!("{}.{:02}%", mean_micros / 10_000, (mean_micros % 10_000) / 100)
}
