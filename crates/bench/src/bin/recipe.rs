//! Joint recipe × VM planning: per-design deterministic MCTS recipe
//! search, hybrid (design ⊕ recipe) runtime prediction, and a
//! `PlanRecipe` request per design through the serving tier.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin recipe --release -- --seed 7
//! cargo run -p eda-cloud-bench --bin recipe --release -- --seed 7 --json
//! cargo run -p eda-cloud-bench --bin recipe --release -- --designs adder,parity --iters 16
//! cargo run -p eda-cloud-bench --bin recipe --release -- --seed 7 --workers 4 --json
//! ```
//!
//! The run is deterministic: the same `--designs/--size/--seed/--iters/
//! --deadline` produce a byte-identical `--json` line at any
//! `--workers` count — workers only parallelize the pure synthesis
//! evaluations inside each search batch, joined by index.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::render_table;
use eda_cloud_core::{RecipeScenario, Workflow};
use eda_cloud_recipe::RecipeReport;

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() {
    let mut scenario = RecipeScenario::new(7);
    let args = Args::from_env();
    if let Some(designs) = args.value("designs") {
        scenario.designs = designs.split(',').map(str::to_owned).collect();
    }
    scenario.size = numeric(&args, "size", scenario.size);
    scenario.seed = numeric(&args, "seed", scenario.seed);
    scenario.iters = numeric(&args, "iters", scenario.iters);
    scenario.deadline_secs = numeric(&args, "deadline", scenario.deadline_secs);
    scenario.workers = args.workers();

    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());
    let report = workflow.recipe(&scenario).expect("recipe pipeline");
    obs.export();

    if args.flag("json") {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "Recipe — {} designs, seed {}, {} iterations, deadline {} s",
        scenario.designs.len(),
        scenario.seed,
        scenario.iters,
        scenario.deadline_secs,
    );
    print_report(&report);
}

fn print_report(report: &RecipeReport) {
    let rows: Vec<Vec<String>> = report
        .designs
        .iter()
        .map(|d| {
            vec![
                d.design.clone(),
                d.best_recipe.clone(),
                format!("{} / {}", d.best_score, d.baseline_score),
                format!("{} / {}", d.best_runtime_ms[2], d.baseline_runtime_ms[2]),
                format!("{} / {}", d.evaluations, d.cache_hits),
                d.plan.as_ref().map_or("NA".into(), |p| {
                    format!(
                        "{} on {:?} — {} s, ${:.4}",
                        p.recipe, p.vcpus, p.total_runtime_secs, p.total_cost_usd
                    )
                }),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "design",
                "best recipe",
                "score (best/base)",
                "4-vCPU ms (best/base)",
                "evals / hits",
                "joint plan",
            ],
            &rows,
        )
    );
    println!(
        "{} of {} designs improved on the default recipe",
        report.improved_designs(),
        report.designs.len()
    );
}
