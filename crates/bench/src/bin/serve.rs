//! Plays an open-loop stream of predict/plan requests through the
//! deterministic simulated-time serving tier: seeded Poisson arrivals
//! over the synthetic design pool, micro-batched GCN inference, EDF
//! admission control with load shedding, an LRU result cache, and
//! catalog-backed MCKP planning for the plan-kind requests.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin serve --release -- --requests 64 --seed 7
//! cargo run -p eda-cloud-bench --bin serve --release -- --requests 64 --seed 7 --json
//! cargo run -p eda-cloud-bench --bin serve --release -- --requests 256 --rate 800 --queue 16
//! cargo run -p eda-cloud-bench --bin serve --release -- --requests 64 --workers 4 --batch 16
//! cargo run -p eda-cloud-bench --bin serve --release -- --requests 64 --trace trace.json
//! ```
//!
//! The run is deterministic: the same `--requests/--seed/--rate/
//! --batch/--queue/--cache` produce a byte-identical report (and
//! `--json` line, and `--trace` file) at any `--workers` count — the
//! only parallelism is the per-stage fan-out of the batched forward,
//! joined by stage index.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::{pct, render_table};
use eda_cloud_core::{ServeScenario, Workflow, WorkflowPlanner};
use eda_cloud_gcn::ModelConfig;
use eda_cloud_serve::{ModelSnapshot, ServeConfig, ServeReport, Server};

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() {
    let args = Args::from_env();
    let mut scenario =
        ServeScenario::new(numeric(&args, "requests", 64), numeric(&args, "seed", 7));
    scenario.rate_per_sec = numeric(&args, "rate", 200.0);
    scenario.workers = args.workers();
    let config = ServeConfig {
        max_batch: numeric(&args, "batch", 8),
        queue_capacity: numeric(&args, "queue", 32),
        cache_capacity: numeric(&args, "cache", 32),
        workers: scenario.workers,
        ..ServeConfig::default()
    };

    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());
    let requests = workflow.serve_workload(&scenario);
    let snapshot = ModelSnapshot::seeded(&ModelConfig::fast(), scenario.seed);
    let server = Server::new(
        snapshot,
        Box::new(WorkflowPlanner::new(workflow.clone())),
        config,
    )
    .with_tracer(workflow.tracer().clone());
    let (report, _outcomes) = server.run(scenario.seed, &requests).expect("serving run");
    obs.export();

    if args.flag("json") {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "Serve — {} requests at {}/s, seed {}, batch {}, queue {}",
        scenario.requests,
        scenario.rate_per_sec,
        scenario.seed,
        server.config().max_batch,
        server.config().queue_capacity,
    );
    print_report(&report);
}

fn print_report(report: &ServeReport) {
    let c = report.counters;
    let rows = vec![
        vec!["requests completed".into(), format!("{} / {}", c.completed, c.requests)],
        vec!["requests shed".into(), format!("{}", c.shed)],
        vec!["deadline-hit rate".into(), pct(report.deadline_hit_rate)],
        vec!["mean latency (ms)".into(), format!("{:.1}", report.mean_latency_ms)],
        vec!["p50 / p95 latency (ms)".into(),
            format!("{:.1} / {:.1}", report.p50_latency_ms, report.p95_latency_ms)],
        vec!["makespan (ms)".into(), format!("{:.1}", report.makespan_ms)],
        vec!["cache hits / misses".into(), format!("{} / {}", c.cache_hits, c.cache_misses)],
        vec!["GCN forwards".into(), format!("{}", c.gcn_predictions)],
        vec!["micro-batches".into(), format!("{}", c.batches)],
        vec!["mean batch size".into(), format!("{:.2}", report.mean_batch_size)],
        vec!["max queue depth".into(), format!("{}", report.max_queue_depth)],
        vec!["plans solved / infeasible".into(), format!("{} / {}", c.plans, c.plans_infeasible)],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
}
