//! Runs the sharded multi-region simulation: N region shards exchange
//! job migrations, staged model-rollout waves, and replicated cache
//! invalidations under a conservative lookahead barrier, with
//! per-tenant weighted fair-share admission in front of every region's
//! run queue.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin regions --release -- --regions 3 --tenants 4 --jobs 200
//! cargo run -p eda-cloud-bench --bin regions --release -- --jobs 500 --seed 7 --json
//! cargo run -p eda-cloud-bench --bin regions --release -- --jobs 500 --workers 8 --shards 3
//! ```
//!
//! The run is deterministic: the same `--regions/--tenants/--jobs/
//! --seed` produce a byte-identical report (and `--json` line) at any
//! `--workers` and `--shards` count — the CI diff step pins exactly
//! that.

use eda_cloud_bench::Args;
use eda_cloud_core::report::render_table;
use eda_cloud_engine::{RegionReport, RegionSim, RegionSimConfig};

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() {
    let args = Args::from_env();
    let config = RegionSimConfig {
        seed: numeric(&args, "seed", 7),
        regions: numeric(&args, "regions", 3),
        tenants: numeric(&args, "tenants", 4),
        jobs: numeric(&args, "jobs", 200),
        ..RegionSimConfig::default()
    };
    let workers = args.workers().max(1);
    let shards = numeric(&args, "shards", config.regions as usize);

    let report = RegionSim::run(&config, workers, shards).expect("multi-region simulation");

    if args.flag("json") {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "Regions — {} jobs over {} regions x {} tenants, seed {}, {} workers, {} shards",
        config.jobs, config.regions, config.tenants, config.seed, workers, shards
    );
    print_report(&report);
}

fn print_report(report: &RegionReport) {
    let sum = |f: fn(&eda_cloud_engine::RegionCounters) -> u64| {
        report.regions.iter().map(f).sum::<u64>()
    };
    let rows = vec![
        vec!["jobs served".into(), format!("{} / {}", sum(|c| c.served), sum(|c| c.submitted))],
        vec!["quota rejected / shed".into(),
            format!("{} / {}", sum(|c| c.quota_rejected), sum(|c| c.shed))],
        vec!["jobs migrated".into(), format!("{}", sum(|c| c.migrated_out))],
        vec!["cache hits".into(), format!("{}", sum(|c| c.cache_hits))],
        vec!["invalidations applied".into(), format!("{}", sum(|c| c.invalidations_applied))],
        vec!["rollout waves applied".into(), format!("{}", sum(|c| c.waves_applied))],
        vec!["messages sent / delivered".into(),
            format!("{} / {}", report.messages.sent, report.messages.delivered)],
        vec!["barrier windows".into(), format!("{}", report.windows)],
        vec!["makespan (ms)".into(), format!("{}", report.makespan_us / 1_000)],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    let tenant_rows: Vec<Vec<String>> = report
        .tenants
        .iter()
        .enumerate()
        .map(|(t, u)| {
            vec![
                format!("{t}"),
                format!("{}", u.weight),
                format!("{}", u.submitted),
                format!("{}", u.admitted),
                format!("{}", u.served),
                format!("{}", u.quota_rejected + u.shed),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["tenant", "weight", "submitted", "admitted", "served", "rejected"],
            &tenant_rows)
    );
}
