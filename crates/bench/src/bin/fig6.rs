//! Regenerates the paper's **Figure 6**: cost savings of the
//! multi-choice knapsack deployment vs over-provisioning (8 vCPUs
//! everywhere) and under-provisioning (1 vCPU everywhere), swept across
//! deadline constraints. The paper reports an average saving of 35.29%.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin fig6 --release
//! cargo run -p eda-cloud-bench --bin fig6 --release -- --paper-runtimes
//! cargo run -p eda-cloud-bench --bin fig6 --release -- --workers 4
//! cargo run -p eda-cloud-bench --bin fig6 --release -- --spot
//! ```
//!
//! `--workers N` sets the characterization-sweep fan-out (default: one
//! worker per core); the report is bit-identical for any worker count.
//! `--spot` adds the expected-spot cost of each optimized deployment
//! (typical market: 70% discount, 5%/hour interruption).
//! `--trace <path>` / `--chrome-trace <path>` export the
//! characterization sweep's span trace; `--metrics <path>` snapshots
//! sweep-pool occupancy and queue waits.

use eda_cloud_bench::{experiment_design, Args, Observability};
use eda_cloud_cloud::SpotMarket;
use eda_cloud_core::report::{pct, render_table};
use eda_cloud_core::{CharacterizationConfig, StageRuntimes, Workflow};
use eda_cloud_flow::StageKind;
use eda_cloud_mckp::spot_savings_vs_baselines;

const PAPER_RUNTIMES: [(StageKind, [f64; 4]); 4] = [
    (StageKind::Synthesis, [6100.0, 4342.0, 3449.0, 3352.0]),
    (StageKind::Placement, [1206.0, 905.0, 644.0, 519.0]),
    (StageKind::Routing, [10461.0, 5514.0, 2894.0, 1692.0]),
    (StageKind::Sta, [183.0, 119.0, 90.0, 82.0]),
];

fn main() {
    let args = Args::from_env();
    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());

    let runtimes: Vec<StageRuntimes> = if args.flag("paper-runtimes") {
        println!("Figure 6 — savings with the paper's exact runtimes");
        PAPER_RUNTIMES
            .iter()
            .map(|&(kind, runtimes_secs)| StageRuntimes {
                kind,
                runtimes_secs,
            })
            .collect()
    } else {
        let design = experiment_design(&args);
        println!("Figure 6 — savings for measured `{}` runtimes", design.name());
        let report = workflow
            .characterize_design(
                &design,
                &CharacterizationConfig::paper().with_workers(args.workers()),
            )
            .expect("characterization");
        report
            .stages
            .iter()
            .map(|s| {
                let mut runtimes_secs = [0.0; 4];
                for (k, run) in s.runs.iter().take(4).enumerate() {
                    runtimes_secs[k] = run.report.runtime_secs;
                }
                StageRuntimes {
                    kind: s.kind,
                    runtimes_secs,
                }
            })
            .collect()
    };

    let problem = workflow.deployment_problem(&runtimes).expect("problem");
    let min_total = problem.min_total_runtime();
    let spot = args.flag("spot").then(SpotMarket::typical);
    let pricing = *workflow.catalog().pricing();

    // Sweep deadlines from the feasibility edge up to fully relaxed.
    let mut rows = Vec::new();
    let mut savings_acc = Vec::new();
    for rel in [1.0, 1.1, 1.25, 1.5, 1.77, 2.0, 2.5, 3.0] {
        let budget = (min_total as f64 * rel).round() as u64;
        let Some(plan) = workflow.plan_deployment(&runtimes, budget).expect("solves") else {
            continue;
        };
        let s = plan.savings;
        savings_acc.push(s.average_saving());
        let mut row = vec![
            format!("{budget}"),
            format!("{:.2}", s.optimized_usd),
            format!("{:.2}", s.over_provision_usd),
            format!("{:.2}", s.under_provision_usd),
            pct(s.saving_vs_over),
            pct(s.saving_vs_under),
            format!("{}", s.runtime_overhead_secs),
        ];
        if let Some(market) = &spot {
            let (_, cmp) = spot_savings_vs_baselines(&problem, budget, &pricing, market)
                .expect("feasible budget already solved");
            row.push(format!("{:.2}", cmp.expected_spot_usd));
            row.push(pct(cmp.saving_vs_on_demand));
        }
        rows.push(row);
    }
    let mut headers = vec![
        "deadline (s)",
        "optimized ($)",
        "over-prov ($)",
        "under-prov ($)",
        "saving vs over",
        "saving vs under",
        "runtime overhead (s)",
    ];
    if spot.is_some() {
        headers.push("E[spot] ($)");
        headers.push("spot saving");
    }
    println!("{}", render_table(&headers, &rows));
    let avg = savings_acc.iter().sum::<f64>() / savings_acc.len().max(1) as f64;
    println!(
        "average saving across constraints: {}   (paper: 35.29%)",
        pct(avg)
    );
    obs.export();
}
