//! Regenerates the paper's **Table I**: minimizing total cloud
//! deployment cost subject to a time constraint, for the `sparc_core`
//! design.
//!
//! By default the stage runtimes are measured with this repository's
//! simulated flow and the constraints are placed at the same *relative*
//! positions as the paper's (1.77x, 1.06x, 1.00x, 0.886x of the fastest
//! possible total). With `--paper-runtimes` the paper's exact runtime
//! table is used instead, reproducing Table I's rows verbatim.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin table1 --release
//! cargo run -p eda-cloud-bench --bin table1 --release -- --paper-runtimes
//! cargo run -p eda-cloud-bench --bin table1 --release -- --objective   # ablation
//! cargo run -p eda-cloud-bench --bin table1 --release -- --workers 4
//! ```
//!
//! `--workers N` sets the characterization-sweep fan-out (default: one
//! worker per core); the table is bit-identical for any worker count.
//! `--trace <path>` / `--chrome-trace <path>` export the
//! characterization sweep's span trace; `--metrics <path>` snapshots
//! sweep-pool occupancy and queue waits.

use eda_cloud_bench::{experiment_design, Args, Observability};
use eda_cloud_core::report::render_table;
use eda_cloud_core::{CharacterizationConfig, StageRuntimes, Workflow};
use eda_cloud_flow::StageKind;
use eda_cloud_mckp::{Objective, Solver};

/// The paper's measured sparc_core runtimes (seconds) on 1/2/4/8 vCPUs.
const PAPER_RUNTIMES: [(StageKind, [f64; 4]); 4] = [
    (StageKind::Synthesis, [6100.0, 4342.0, 3449.0, 3352.0]),
    (StageKind::Placement, [1206.0, 905.0, 644.0, 519.0]),
    (StageKind::Routing, [10461.0, 5514.0, 2894.0, 1692.0]),
    (StageKind::Sta, [183.0, 119.0, 90.0, 82.0]),
];

fn main() {
    let args = Args::from_env();
    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());

    let runtimes: Vec<StageRuntimes> = if args.flag("paper-runtimes") {
        println!("Table I — using the paper's exact runtime measurements");
        PAPER_RUNTIMES
            .iter()
            .map(|&(kind, runtimes_secs)| StageRuntimes {
                kind,
                runtimes_secs,
            })
            .collect()
    } else {
        let design = experiment_design(&args);
        println!("Table I — measured runtimes for `{}`", design.name());
        let report = workflow
            .characterize_design(
                &design,
                &CharacterizationConfig::paper().with_workers(args.workers()),
            )
            .expect("characterization");
        report
            .stages
            .iter()
            .map(|s| {
                let mut runtimes_secs = [0.0; 4];
                for (k, run) in s.runs.iter().take(4).enumerate() {
                    runtimes_secs[k] = run.report.runtime_secs;
                }
                StageRuntimes {
                    kind: s.kind,
                    runtimes_secs,
                }
            })
            .collect()
    };

    // Print the per-stage runtime/cost matrix (the top of Table I).
    let problem = workflow.deployment_problem(&runtimes).expect("problem");
    let mut rows = Vec::new();
    for (stage, sr) in problem.stages().iter().zip(&runtimes) {
        for (j, choice) in stage.choices.iter().enumerate() {
            rows.push(vec![
                if j == 0 { sr.kind.to_string() } else { String::new() },
                choice.label.clone(),
                format!("{}", choice.runtime_secs),
                format!("{:.4}", choice.cost_usd),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["task", "instance", "runtime (s)", "cost ($)"], &rows)
    );

    // Constraints at the paper's relative positions.
    let min_total = problem.min_total_runtime();
    let relative = [1.7715, 1.0629, 1.0, 0.8857];
    println!("fastest possible total: {min_total} s");

    let mut rows = Vec::new();
    for &rel in &relative {
        let budget = (min_total as f64 * rel).round() as u64;
        match workflow.plan_deployment(&runtimes, budget).expect("solves") {
            Some(plan) => {
                let picks: Vec<String> = plan
                    .stages
                    .iter()
                    .map(|s| format!("{}v", s.vcpus))
                    .collect();
                rows.push(vec![
                    format!("{budget}"),
                    picks.join(" / "),
                    format!("{}", plan.total_runtime_secs),
                    format!("{:.2}", plan.total_cost_usd),
                ]);
            }
            None => {
                rows.push(vec![
                    format!("{budget}"),
                    "NA".to_owned(),
                    "NA".to_owned(),
                    "NA".to_owned(),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["constraint (s)", "syn/place/route/sta vCPUs", "total runtime (s)", "min cost ($)"],
            &rows
        )
    );

    if args.flag("objective") {
        // Ablation: the paper's max Σ1/p objective vs direct min-cost.
        println!("ablation: objective comparison at each constraint");
        let mut rows = Vec::new();
        for &rel in &relative {
            let budget = (min_total as f64 * rel).round() as u64;
            let a = Solver::new().solve(&problem, budget, Objective::MaxInverseCost);
            let b = Solver::new().solve(&problem, budget, Objective::MinCost);
            let fmt = |s: &Option<eda_cloud_mckp::Selection>| {
                s.as_ref()
                    .map_or("NA".to_owned(), |sel| format!("{:.2}", sel.total_cost_usd))
            };
            rows.push(vec![format!("{budget}"), fmt(&a), fmt(&b)]);
        }
        println!(
            "{}",
            render_table(&["constraint (s)", "max Σ1/p cost ($)", "min Σp cost ($)"], &rows)
        );
    }
    obs.export();
}
