//! Perf regression gate over `BENCH_*.json` documents.
//!
//! Compares a freshly measured bench export (written by the criterion
//! stub when `BENCH_JSON` is set) against a checked-in baseline and
//! exits non-zero when any benchmark regressed beyond the tolerance.
//!
//! ```text
//! BENCH_JSON=BENCH_engine.json cargo bench -p eda-cloud-bench --bench engine_substrate
//! cargo run -p eda-cloud-bench --bin benchgate -- \
//!     --current BENCH_engine.json \
//!     --baseline crates/bench/baselines/BENCH_engine.json \
//!     --tolerance 15
//! ```
//!
//! The comparison uses each benchmark's **min** sample — the most
//! machine-noise-resistant statistic a wall-clock harness has — and a
//! generous default tolerance, because absolute times move with the
//! host. A benchmark present in the baseline but missing from the
//! current run fails the gate (a silently dropped bench would pass
//! vacuously); new benchmarks only in the current run are reported and
//! allowed. A baseline file that does not exist yet is not a failure —
//! the gate reports "no baseline yet" and passes, so a bench can land
//! one PR before its baseline. Malformed documents are typed errors
//! naming the offending path, never panics.

use eda_cloud_bench::Args;
use std::fmt;
use std::process::ExitCode;

/// One `{"id":...,"min_ns":...,"mean_ns":...,"max_ns":...}` record.
struct Bench {
    id: String,
    min_ns: u64,
}

/// A malformed or unreadable bench document, with the path it came
/// from.
#[derive(Debug)]
struct GateError {
    path: String,
    message: String,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for GateError {}

/// Parse the stub's canonical export. Strict about the shape it
/// wrote — anything else is a corrupt file, not data.
fn parse(text: &str, path: &str) -> Result<Vec<Bench>, GateError> {
    let err = |message: String| GateError {
        path: path.to_owned(),
        message,
    };
    let mut out = Vec::new();
    for chunk in text.split("{\"id\":\"").skip(1) {
        let id_end = chunk
            .find('"')
            .ok_or_else(|| err("unterminated bench id".into()))?;
        let id = &chunk[..id_end];
        let field = |name: &str| -> Result<u64, GateError> {
            let key = format!("\"{name}\":");
            let at = chunk
                .find(&key)
                .ok_or_else(|| err(format!("bench `{id}` is missing {name}")))?;
            chunk[at + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .map_err(|_| err(format!("bench `{id}` has a malformed {name}")))
        };
        let min_ns = field("min_ns")?;
        out.push(Bench {
            id: id.to_owned(),
            min_ns,
        });
    }
    if out.is_empty() {
        return Err(err("no benchmarks in the document".into()));
    }
    Ok(out)
}

/// Load a bench export. `Ok(None)` means the file does not exist;
/// anything else unreadable or malformed is a [`GateError`].
fn load(path: &str) -> Result<Option<Vec<Bench>>, GateError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(GateError {
                path: path.to_owned(),
                message: format!("cannot read: {e}"),
            })
        }
    };
    parse(&text, path).map(Some)
}

fn run() -> Result<ExitCode, GateError> {
    let args = Args::from_env();
    let current_path = args
        .value("current")
        .expect("--current <BENCH_*.json> is required");
    let baseline_path = args
        .value("baseline")
        .expect("--baseline <BENCH_*.json> is required");
    let tolerance_pct: u64 = args.value("tolerance").map_or(15, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--tolerance expects a percentage, got `{v}`"))
    });

    let current = load(current_path)?.ok_or_else(|| GateError {
        path: current_path.to_owned(),
        message: "current bench export not found (did the bench run?)".into(),
    })?;
    let Some(baseline) = load(baseline_path)? else {
        println!("benchgate: no baseline yet at {baseline_path}, skipping");
        return Ok(ExitCode::SUCCESS);
    };

    let mut failures = 0u32;
    for base in &baseline {
        match current.iter().find(|b| b.id == base.id) {
            None => {
                println!("FAIL {:<40} missing from the current run", base.id);
                failures += 1;
            }
            Some(cur) => {
                let limit = base.min_ns.saturating_mul(100 + tolerance_pct) / 100;
                let delta =
                    100.0 * (cur.min_ns as f64 - base.min_ns as f64) / base.min_ns.max(1) as f64;
                if cur.min_ns > limit {
                    println!(
                        "FAIL {:<40} {} ns vs baseline {} ns ({delta:+.1}%, limit +{tolerance_pct}%)",
                        cur.id, cur.min_ns, base.min_ns
                    );
                    failures += 1;
                } else {
                    println!(
                        "ok   {:<40} {} ns vs baseline {} ns ({delta:+.1}%)",
                        cur.id, cur.min_ns, base.min_ns
                    );
                }
            }
        }
    }
    for cur in &current {
        if !baseline.iter().any(|b| b.id == cur.id) {
            println!("new  {:<40} {} ns (not in baseline)", cur.id, cur.min_ns);
        }
    }

    if failures > 0 {
        println!("benchgate: {failures} regression(s) beyond +{tolerance_pct}%");
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "benchgate: all {} baseline benchmarks within +{tolerance_pct}%",
        baseline.len()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            println!("benchgate: error: {e}");
            ExitCode::FAILURE
        }
    }
}
