//! Perf regression gate over `BENCH_*.json` documents.
//!
//! Compares a freshly measured bench export (written by the criterion
//! stub when `BENCH_JSON` is set) against a checked-in baseline and
//! exits non-zero when any benchmark regressed beyond the tolerance.
//!
//! ```text
//! BENCH_JSON=BENCH_engine.json cargo bench -p eda-cloud-bench --bench engine_substrate
//! cargo run -p eda-cloud-bench --bin benchgate -- \
//!     --current BENCH_engine.json \
//!     --baseline crates/bench/baselines/BENCH_engine.json \
//!     --tolerance 15
//! ```
//!
//! The comparison uses each benchmark's **min** sample — the most
//! machine-noise-resistant statistic a wall-clock harness has — and a
//! generous default tolerance, because absolute times move with the
//! host. A benchmark present in the baseline but missing from the
//! current run fails the gate (a silently dropped bench would pass
//! vacuously); new benchmarks only in the current run are reported and
//! allowed.

use eda_cloud_bench::Args;
use std::process::ExitCode;

/// One `{"id":...,"min_ns":...,"mean_ns":...,"max_ns":...}` record.
struct Bench {
    id: String,
    min_ns: u64,
}

/// Parse the stub's canonical export. Strict about the shape it
/// wrote — anything else is a corrupt file, not data.
fn parse(text: &str, what: &str) -> Vec<Bench> {
    let mut out = Vec::new();
    for chunk in text.split("{\"id\":\"").skip(1) {
        let id_end = chunk.find('"').unwrap_or_else(|| panic!("{what}: unterminated id"));
        let id = chunk[..id_end].to_owned();
        let field = |name: &str| -> u64 {
            let key = format!("\"{name}\":");
            let at = chunk
                .find(&key)
                .unwrap_or_else(|| panic!("{what}: bench `{id}` is missing {name}"));
            chunk[at + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or_else(|_| panic!("{what}: bench `{id}` has a malformed {name}"))
        };
        let min_ns = field("min_ns");
        out.push(Bench { id, min_ns });
    }
    assert!(!out.is_empty(), "{what}: no benchmarks in the document");
    out
}

fn load(path: &str) -> Vec<Bench> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench JSON {path}: {e}"));
    parse(&text, path)
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let current_path = args.value("current").expect("--current <BENCH_*.json> is required");
    let baseline_path = args.value("baseline").expect("--baseline <BENCH_*.json> is required");
    let tolerance_pct: u64 = args.value("tolerance").map_or(15, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--tolerance expects a percentage, got `{v}`"))
    });

    let current = load(current_path);
    let baseline = load(baseline_path);

    let mut failures = 0u32;
    for base in &baseline {
        match current.iter().find(|b| b.id == base.id) {
            None => {
                println!("FAIL {:<40} missing from the current run", base.id);
                failures += 1;
            }
            Some(cur) => {
                let limit = base.min_ns.saturating_mul(100 + tolerance_pct) / 100;
                let delta = 100.0 * (cur.min_ns as f64 - base.min_ns as f64)
                    / base.min_ns.max(1) as f64;
                if cur.min_ns > limit {
                    println!(
                        "FAIL {:<40} {} ns vs baseline {} ns ({delta:+.1}%, limit +{tolerance_pct}%)",
                        cur.id, cur.min_ns, base.min_ns
                    );
                    failures += 1;
                } else {
                    println!(
                        "ok   {:<40} {} ns vs baseline {} ns ({delta:+.1}%)",
                        cur.id, cur.min_ns, base.min_ns
                    );
                }
            }
        }
    }
    for cur in &current {
        if !baseline.iter().any(|b| b.id == cur.id) {
            println!("new  {:<40} {} ns (not in baseline)", cur.id, cur.min_ns);
        }
    }

    if failures > 0 {
        println!("benchgate: {failures} regression(s) beyond +{tolerance_pct}%");
        return ExitCode::FAILURE;
    }
    println!("benchgate: all {} baseline benchmarks within +{tolerance_pct}%", baseline.len());
    ExitCode::SUCCESS
}
