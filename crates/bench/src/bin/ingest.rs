//! Pushes external netlists through the validating ingestion front
//! door and serves an upload-bearing request stream: BLIF, structural
//! Verilog, and Bookshelf parsers, combinational-loop and arity
//! validation, deterministic canonical fingerprinting, quota
//! enforcement, OOD gating against the training-corpus profile, and
//! quarantine of malformed uploads.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin ingest --release -- --requests 64 --seed 7
//! cargo run -p eda-cloud-bench --bin ingest --release -- --requests 64 --seed 7 --json
//! cargo run -p eda-cloud-bench --bin ingest --release -- --dir my_designs --requests 128
//! cargo run -p eda-cloud-bench --bin ingest --release -- --requests 64 --workers 4 --every 2
//! ```
//!
//! Without `--dir` the run ingests the checked-in fixture corpus.
//! With `--dir` every `*.blif`, `*.v`, and Bookshelf triple
//! (`*.nodes`/`*.nets`/`*.pl`, grouped by file stem) in the directory
//! is ingested instead. The run is deterministic: the same
//! `--requests/--seed/--rate/--every` and upload set produce a
//! byte-identical `--json` line at any `--workers` count.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::{pct, render_table};
use eda_cloud_core::{IngestRunReport, Workflow, WorkflowPlanner};
use eda_cloud_gcn::ModelConfig;
use eda_cloud_ingest::{fixtures, FrontDoor, FrontDoorConfig};
use eda_cloud_serve::{
    design_pool, synthetic_requests_with_uploads, ModelSnapshot, ServeConfig, Server, UploadDoc,
    WorkloadConfig,
};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

/// Load every ingestible file under `dir`: `*.blif` and `*.v` become
/// single uploads; `*.nodes`/`*.nets`/`*.pl` triples are grouped by
/// stem and stitched into one Bookshelf upload. Deterministic order
/// (sorted by name), unknown extensions skipped with a note.
fn load_dir(dir: &Path) -> Vec<Arc<UploadDoc>> {
    let read = |p: &Path| {
        std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
    };
    let mut docs: BTreeMap<String, (String, String)> = BTreeMap::new();
    let mut shelves: BTreeMap<String, [Option<String>; 3]> = BTreeMap::new();
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read --dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    paths.sort();
    for path in paths {
        let (Some(stem), Some(ext)) = (
            path.file_stem().and_then(|s| s.to_str()),
            path.extension().and_then(|s| s.to_str()),
        ) else {
            continue;
        };
        match ext {
            "blif" => {
                docs.insert(stem.to_owned(), ("blif".to_owned(), read(&path)));
            }
            "v" | "verilog" => {
                docs.insert(stem.to_owned(), ("verilog".to_owned(), read(&path)));
            }
            "nodes" => shelves.entry(stem.to_owned()).or_default()[0] = Some(read(&path)),
            "nets" => shelves.entry(stem.to_owned()).or_default()[1] = Some(read(&path)),
            "pl" => shelves.entry(stem.to_owned()).or_default()[2] = Some(read(&path)),
            _ => eprintln!("skipping {} (unknown extension)", path.display()),
        }
    }
    for (stem, [nodes, nets, pl]) in shelves {
        match (nodes, nets) {
            (Some(nodes), Some(nets)) => {
                let text = fixtures::stitch_bookshelf(&nodes, &nets, pl.as_deref());
                docs.insert(stem, ("bookshelf".to_owned(), text));
            }
            _ => eprintln!("skipping bookshelf group `{stem}` (need both .nodes and .nets)"),
        }
    }
    docs.into_iter()
        .map(|(name, (format, text))| Arc::new(UploadDoc::new(name, format, text)))
        .collect()
}

fn main() {
    let args = Args::from_env();
    let seed = numeric(&args, "seed", 7u64);
    let requests = numeric(&args, "requests", 64usize);
    let rate = numeric(&args, "rate", 200.0f64);
    let every = numeric(&args, "every", 3u64);
    let workers = args.workers();
    let uploads = args
        .value("dir")
        .map_or_else(fixtures::uploads, |d| load_dir(Path::new(d)));
    assert!(!uploads.is_empty(), "no ingestible files found");

    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());
    let door = FrontDoor::with_pool_profile(FrontDoorConfig::default());
    let mut reports = Vec::new();
    for doc in &uploads {
        match door.ingest_doc(doc) {
            Ok((report, _design)) => reports.push(report),
            Err(e) => eprintln!("{} ({}): rejected: {e}", doc.name, doc.format),
        }
    }

    let config = WorkloadConfig {
        requests,
        rate_per_sec: rate,
        seed,
        ingest_every: every,
        ..WorkloadConfig::default()
    };
    let stream = synthetic_requests_with_uploads(&design_pool(), &uploads, &config);
    let snapshot = ModelSnapshot::seeded(&ModelConfig::fast(), seed);
    let server = Server::new(
        snapshot,
        Box::new(WorkflowPlanner::new(workflow.clone())),
        ServeConfig { workers, ..ServeConfig::default() },
    )
    .with_ingestor(Box::new(door))
    .with_tracer(workflow.tracer().clone());
    let (serve, _outcomes) = server.run(seed, &stream).expect("serving run");
    obs.export();
    let run = IngestRunReport { seed, fixtures: reports, serve };

    if args.flag("json") {
        println!("{}", run.to_json());
        return;
    }

    println!(
        "Ingest — {} uploads, {} requests at {rate}/s, seed {seed}, 1-in-{every} upload mix",
        uploads.len(),
        requests,
    );
    let rows: Vec<Vec<String>> = run
        .fixtures
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.format.clone(),
                format!("{}", r.nodes),
                format!("{}", r.edges),
                format!("{}", r.depth),
                format!("{:016x}", r.fingerprint),
                if r.ood { format!("OOD ({})", r.ood_distance_micros) } else { "in".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["design", "format", "nodes", "edges", "depth", "fingerprint", "distribution"],
            &rows,
        )
    );
    let c = run.serve.counters;
    let rows = vec![
        vec!["requests completed".into(), format!("{} / {}", c.completed, c.requests)],
        vec!["uploads accepted / rejected".into(),
            format!("{} / {}", c.ingest_accepted, c.ingest_rejected)],
        vec!["uploads OOD-flagged".into(), format!("{}", c.ood_flagged)],
        vec!["deadline-hit rate".into(), pct(run.serve.deadline_hit_rate)],
        vec!["cache hits / misses".into(), format!("{} / {}", c.cache_hits, c.cache_misses)],
        vec!["GCN forwards".into(), format!("{}", c.gcn_predictions)],
        vec!["plans solved / infeasible".into(), format!("{} / {}", c.plans, c.plans_infeasible)],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
}
