//! Serves a seeded stream of flow jobs on the simulated cloud: the
//! fleet-scale extension of the paper's single-flow deployment
//! analysis. Each job is a scaled copy of the Table-I `sparc_core`
//! flow, planned by the knapsack against its own deadline and executed
//! through the provisioner with warm pools, optional spot purchasing,
//! interruption retries, and stage-boundary checkpointing.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin fleet --release -- --jobs 50 --seed 7
//! cargo run -p eda-cloud-bench --bin fleet --release -- --jobs 50 --seed 7 --spot
//! cargo run -p eda-cloud-bench --bin fleet --release -- --jobs 50 --seed 7 --json
//! cargo run -p eda-cloud-bench --bin fleet --release -- --jobs 200 --rate 120 --workers 4
//! cargo run -p eda-cloud-bench --bin fleet --release -- --jobs 50 --trace trace.json
//! ```
//!
//! The run is deterministic: the same `--jobs/--seed/--rate/--slack/
//! --spot` produce a byte-identical report (and `--json` line, and
//! `--trace` file) at any `--workers` count. `--chrome-trace <path>`
//! exports the same spans for `chrome://tracing`; `--metrics <path>`
//! snapshots pool occupancy and queue waits (scheduling-dependent).

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::report::{pct, render_table};
use eda_cloud_core::{FleetScenario, Workflow};
use eda_cloud_fleet::{FleetReport, SpotPolicy};

fn numeric<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> T {
    args.value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
    })
}

fn main() {
    let args = Args::from_env();
    let mut scenario = FleetScenario::new(numeric(&args, "jobs", 50), numeric(&args, "seed", 7));
    scenario.rate_per_hour = numeric(&args, "rate", 60.0);
    scenario.deadline_slack = numeric(&args, "slack", 1.6);
    scenario.workers = args.workers();
    if args.flag("spot") {
        scenario.spot = Some(SpotPolicy::typical());
    }

    let obs = Observability::from_args(&args);
    let report = obs
        .instrument(Workflow::with_defaults())
        .simulate_fleet(&scenario)
        .expect("fleet simulation");
    obs.export();

    if args.flag("json") {
        println!("{}", report.to_json());
        return;
    }

    println!(
        "Fleet — {} jobs at {}/h, seed {}, slack {:.2}x, {}",
        scenario.jobs,
        scenario.rate_per_hour,
        scenario.seed,
        scenario.deadline_slack,
        if scenario.spot.is_some() {
            "spot (typical market)"
        } else {
            "on-demand"
        }
    );
    print_report(&report);
}

fn print_report(report: &FleetReport) {
    let c = report.counters;
    let rows = vec![
        vec!["jobs completed".into(), format!("{} / {}", c.jobs_completed, c.jobs_submitted)],
        vec!["deadline-hit rate".into(), pct(report.deadline_hit_rate)],
        vec!["total cost ($)".into(), format!("{:.2}", report.total_cost_usd)],
        vec!["mean job cost ($)".into(), format!("{:.2}", report.mean_job_cost_usd)],
        vec!["mean latency (s)".into(), format!("{:.0}", report.mean_latency_secs)],
        vec!["p50 / p95 latency (s)".into(),
            format!("{:.0} / {:.0}", report.p50_latency_secs, report.p95_latency_secs)],
        vec!["makespan (s)".into(), format!("{:.0}", report.makespan_secs)],
        vec!["VMs launched".into(), format!("{}", c.vms_launched)],
        vec!["cold starts / warm reuses".into(), format!("{} / {}", c.cold_starts, c.warm_reuses)],
        vec!["idle VMs reaped".into(), format!("{}", c.idle_reaped)],
        vec!["spot interruptions".into(), format!("{}", c.interruptions)],
        vec!["stage retries".into(), format!("{}", c.retries)],
        vec!["on-demand fallbacks".into(), format!("{}", c.spot_fallbacks)],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
}
