//! Regenerates the paper's **Figure 2**: performance characterization of
//! the four EDA jobs — (a) branch misses, (b) cache misses, (c) AVX
//! floating-point share, (d) runtime speedup vs #vCPUs.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin fig2 --release            # sparc_core
//! cargo run -p eda-cloud-bench --bin fig2 --release -- --smoke # small design
//! cargo run -p eda-cloud-bench --bin fig2 --release -- --design aes
//! ```

use eda_cloud_bench::{experiment_design, Args};
use eda_cloud_core::report::{bar_chart, pct, render_table, secs};
use eda_cloud_core::{CharacterizationConfig, Workflow};

fn main() {
    let args = Args::from_env();
    if args.flag("cache-model") {
        cache_model_ablation();
        return;
    }
    let design = experiment_design(&args);
    println!("Figure 2 — characterization of `{}` ({})", design.name(), design);

    let workflow = Workflow::with_defaults();
    let report = workflow
        .characterize_design(&design, &CharacterizationConfig::paper())
        .expect("characterization must run on a generated design");
    println!("netlist: {} cells\n", report.cells);

    // (a) Branch misses at 1 and 8 vCPUs.
    let at = |stage: &eda_cloud_core::StageCharacterization, vcpus: u32| {
        stage
            .at_vcpus(vcpus)
            .expect("swept vcpu count")
            .report
            .clone()
    };
    let mut rows = Vec::new();
    for stage in &report.stages {
        let (r1, r8) = (at(stage, 1), at(stage, 8));
        rows.push(vec![
            stage.kind.to_string(),
            pct(r1.counters.branch_miss_rate()),
            pct(r8.counters.branch_miss_rate()),
        ]);
    }
    println!("(a) branch misses");
    println!("{}", render_table(&["task", "1 vCPU", "8 vCPUs"], &rows));

    // (b) Cache misses (perf-style: LLC misses / LLC references).
    let mut rows = Vec::new();
    for stage in &report.stages {
        let (r1, r8) = (at(stage, 1), at(stage, 8));
        rows.push(vec![
            stage.kind.to_string(),
            pct(r1.counters.perf_cache_miss_rate()),
            pct(r8.counters.perf_cache_miss_rate()),
        ]);
    }
    println!("(b) cache misses");
    println!("{}", render_table(&["task", "1 vCPU", "8 vCPUs"], &rows));

    // (c) AVX share of floating-point work.
    let entries: Vec<(String, f64)> = report
        .stages
        .iter()
        .map(|s| {
            let r = at(s, 1);
            (s.kind.to_string(), 100.0 * r.counters.avx_share()
                * r.counters.fp_instruction_share())
        })
        .collect();
    println!("(c) AVX floating-point share of instructions (%)");
    println!("{}", bar_chart("", &entries, 40));

    // (d) Runtimes and speedups across the sweep.
    let mut rows = Vec::new();
    for stage in &report.stages {
        let speedups = stage.speedups();
        let mut row = vec![stage.kind.to_string(), stage.family.clone()];
        for run in &stage.runs {
            row.push(secs(run.report.runtime_secs));
        }
        row.push(format!("{:.2}x", speedups.last().copied().unwrap_or(1.0)));
        row.push(format!(
            "{:.2}",
            stage.runs.last().map_or(0.0, |r| r.report.parallel_fraction)
        ));
        rows.push(row);
    }
    println!("(d) runtime vs #vCPUs");
    println!(
        "{}",
        render_table(
            &["task", "family", "1 vCPU", "2 vCPUs", "4 vCPUs", "8 vCPUs", "speedup@8", "p"],
            &rows
        )
    );
}

/// Ablation for the Fig. 2-b cache model: the default hierarchy grows
/// the LLC slice with the vCPU count (hypervisor partitioning); the
/// alternative gives every VM size the full host LLC (pure sharing).
/// Placement's miss-rate drop from 1 to 8 vCPUs only appears under
/// partitioning — evidence for the paper's "more cache available with
/// more vCPUs" explanation.
fn cache_model_ablation() {
    use eda_cloud_flow::{ExecContext, Placer, Recipe, Synthesizer};
    use eda_cloud_netlist::generators;
    use eda_cloud_perf::{Cache, CacheSim, CounterSet, PerfProbe};

    println!("Figure 2-b ablation — partitioned vs shared LLC (placement)");
    let design = generators::openpiton_design("l2_bank").expect("design");
    let ctx1 = ExecContext::with_vcpus(1);
    let (netlist, _) = Synthesizer::new()
        .with_verification(false)
        .run(&design, &Recipe::balanced(), &ctx1)
        .expect("synthesis");

    let mut rows = Vec::new();
    for vcpus in [1u32, 8] {
        let ctx = ExecContext::with_vcpus(vcpus);
        // Partitioned (default machine-sized probe).
        let (_, report) = Placer::new().run(&netlist, &ctx).expect("placement");
        let partitioned = report.counters.perf_cache_miss_rate();
        // Shared: fixed 10 MiB LLC regardless of size. Exercise the
        // cache sim directly with the same footprint placement touches.
        let mut probe = PerfProbe::with_cache(
            CacheSim::new(
                Cache::new(32 * 1024, 64, 8),
                Cache::new_random_replacement(10 * 1024 * 1024, 64, 16),
            ),
            true,
        );
        let mut shared_counters = CounterSet::default();
        for pass in 0..4u64 {
            for cell in 0..netlist.cell_count() as u64 {
                probe.read(0x1000_0000 + cell * 192);
                probe.read(0x5000_0000 + cell * 192);
                let _ = pass;
            }
        }
        shared_counters += probe.counters();
        let shared = shared_counters.perf_cache_miss_rate();
        rows.push(vec![
            format!("{vcpus}"),
            pct(partitioned),
            pct(shared),
        ]);
    }
    println!(
        "{}",
        render_table(&["vCPUs", "partitioned LLC", "shared LLC"], &rows)
    );
}
