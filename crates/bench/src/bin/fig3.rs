//! Regenerates the paper's **Figure 3**: routing speedup across designs
//! of increasing size (`dynamic_node` smallest … `sparc_core` largest).
//! Small designs plateau at 4-8 vCPUs; large designs keep scaling.
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin fig3 --release
//! cargo run -p eda-cloud-bench --bin fig3 --release -- --smoke      # 3 designs
//! cargo run -p eda-cloud-bench --bin fig3 --release -- --measured   # also wall-clock
//! ```

use eda_cloud_bench::Args;
use eda_cloud_core::report::render_table;
use eda_cloud_core::Workflow;
use eda_cloud_flow::{Placer, Recipe, Router, StageKind, Synthesizer};
use eda_cloud_netlist::generators;

fn main() {
    let args = Args::from_env();
    let names: Vec<&str> = if args.flag("smoke") {
        vec!["dynamic_node", "aes", "fpu"]
    } else {
        generators::OPENPITON_NAMES.to_vec()
    };
    let vcpu_sweep = [1u32, 2, 4, 8];
    let workflow = Workflow::with_defaults();

    println!("Figure 3 — routing speedup for designs of increasing size");
    let mut rows = Vec::new();
    for name in names {
        let design = generators::openpiton_design(name).expect("known design");
        let synthesizer = Synthesizer::new().with_verification(false);
        let mut runtimes = Vec::new();
        let mut walls = Vec::new();
        let mut cells = 0;
        for &vcpus in &vcpu_sweep {
            let syn_ctx = workflow.exec_context(StageKind::Synthesis, vcpus);
            let (netlist, _) = synthesizer
                .run(&design, &Recipe::balanced(), &syn_ctx)
                .expect("synthesis");
            cells = netlist.cell_count();
            let place_ctx = workflow.exec_context(StageKind::Placement, vcpus);
            let (placement, _) = Placer::new().run(&netlist, &place_ctx).expect("placement");
            let route_ctx = workflow.exec_context(StageKind::Routing, vcpus);
            let (result, report) = Router::new()
                .run(&netlist, &placement, &route_ctx)
                .expect("routing");
            runtimes.push(report.runtime_secs);
            walls.push(result.measured_wall_secs);
        }
        let base = runtimes[0];
        let mut row = vec![name.to_owned(), format!("{cells}")];
        for t in &runtimes {
            row.push(format!("{:.2}x", base / t));
        }
        if args.flag("measured") {
            let wall_base = walls[0].max(1e-9);
            row.push(format!("{:.2}x", wall_base / walls[3].max(1e-9)));
        }
        rows.push(row);
    }
    let mut headers = vec!["design", "#cells", "1 vCPU", "2 vCPUs", "4 vCPUs", "8 vCPUs"];
    if args.flag("measured") {
        headers.push("wall@8 (measured)");
    }
    println!("{}", render_table(&headers, &rows));
    println!(
        "Expected shape: speedup grows monotonically with design size; the\n\
         smallest designs show nearly equal speedups at 4 and 8 vCPUs\n\
         (the paper's plateau), the largest keep scaling to 8 vCPUs."
    );
}
