//! Regenerates the paper's **Figure 5**: runtime-prediction error
//! histogram plus the headline accuracy numbers (≈13% average error on
//! netlist stages, ≈5% on AIG/synthesis, i.e. ~87% accuracy).
//!
//! ```text
//! cargo run -p eda-cloud-bench --bin fig5 --release              # 324 netlists
//! cargo run -p eda-cloud-bench --bin fig5 --release -- --smoke   # tiny corpus
//! cargo run -p eda-cloud-bench --bin fig5 --release -- --sweep   # width ablation
//! cargo run -p eda-cloud-bench --bin fig5 --release -- --workers 4
//! ```
//!
//! `--workers N` sets the corpus-generation fan-out (default: one
//! worker per core); the corpus is bit-identical for any worker count.
//! `--trace <path>` / `--chrome-trace <path>` export the corpus
//! build's span trace; `--metrics <path>` snapshots sweep-pool
//! occupancy and queue waits.

use eda_cloud_bench::{Args, Observability};
use eda_cloud_core::dataset::{DatasetBuilder, DatasetConfig};
use eda_cloud_core::predict::StagePredictors;
use eda_cloud_core::report::{pct, render_table};
use eda_cloud_core::Workflow;
use eda_cloud_flow::StageKind;
use eda_cloud_gcn::{DatasetSplit, ModelConfig, Trainer};

fn main() {
    let args = Args::from_env();
    let obs = Observability::from_args(&args);
    let workflow = obs.instrument(Workflow::with_defaults());
    let config = if args.flag("smoke") {
        DatasetConfig::smoke()
    } else {
        DatasetConfig::paper_scaled()
    }
    .with_workers(args.workers());
    println!(
        "Figure 5 — runtime prediction errors ({} netlists, {} runtime labels)",
        config.netlist_count(),
        config.netlist_count() * 16
    );
    eprintln!("building corpus ...");
    let datasets = DatasetBuilder::new(&workflow)
        .build(&config)
        .expect("corpus generation");
    // Spans and pool metrics all come from the corpus build; export
    // here so the `--sweep` early return below still writes them.
    obs.export();

    let trainer = if args.flag("smoke") {
        Trainer::fast()
    } else {
        // The paper's 200-epoch Adam recipe with a mid-size model:
        // full 256/128 dims train in pure Rust too, but the bench keeps
        // wall-clock moderate; use --paper-dims for the exact sizes.
        let mut t = Trainer::fast();
        t.epochs = 200;
        t.lr = 1e-3;
        if args.flag("paper-dims") {
            t.config = ModelConfig::paper();
            t.lr = 1e-4;
        }
        t
    };

    if args.flag("sweep") {
        // Ablation: GCN depth/width vs accuracy on the routing corpus.
        println!("\nablation: architecture vs routing-stage accuracy");
        let mut rows = Vec::new();
        for (label, config) in [
            ("1 layer, 16", ModelConfig::shallow(16)),
            ("1 layer, 64", ModelConfig::shallow(64)),
            ("2 layers, 32/16", ModelConfig::fast()),
            (
                "2 layers, 64/32",
                ModelConfig {
                    gcn_dims: vec![64, 32],
                    fc_dim: 32,
                },
            ),
        ] {
            let mut t = trainer.clone();
            t.config = config;
            let split = DatasetSplit::by_design(&datasets.routing, 0.2, t.seed);
            let outcome = t.fit(&datasets.routing, &split);
            rows.push(vec![
                label.to_owned(),
                pct(outcome.report.mean_error),
                pct(outcome.report.accuracy()),
            ]);
        }
        println!(
            "{}",
            render_table(&["architecture", "mean error", "accuracy"], &rows)
        );
        return;
    }

    eprintln!("training per-stage predictors ...");
    let predictors = StagePredictors::train(&datasets, &trainer).expect("training");

    let mut rows = Vec::new();
    for kind in StageKind::ALL {
        let report = &predictors.stage(kind).report;
        rows.push(vec![
            kind.to_string(),
            format!("{}", datasets.for_stage(kind).len()),
            pct(report.mean_error),
            pct(report.accuracy()),
        ]);
    }
    println!(
        "{}",
        render_table(&["stage", "netlists", "mean error", "accuracy"], &rows)
    );

    // The histogram the paper plots (placement + routing errors).
    let mut errors: Vec<f64> = predictors.placement.report.test_errors.clone();
    errors.extend(&predictors.routing.report.test_errors);
    let combined = eda_cloud_gcn::TrainReport {
        epoch_losses: vec![],
        mean_error: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
        test_errors: errors,
    };
    let (bounds, counts) = combined.error_histogram(10);
    println!("histogram of placement+routing prediction errors:");
    for (b, c) in bounds.iter().zip(&counts) {
        println!("  <= {:>5.1}% | {}", b * 100.0, "#".repeat(*c));
    }
    println!(
        "\npaper: 13% average error on netlist stages, 5% on AIGs (87% accuracy)\n\
         ours : {} average error placement+routing, {} synthesis",
        pct(combined.mean_error),
        pct(predictors.synthesis.report.mean_error)
    );
}
