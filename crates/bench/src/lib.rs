//! Shared plumbing for the reproduction binaries (`fig2`, `fig3`,
//! `fig5`, `fig6`, `table1`) and the Criterion benches.
//!
//! Each binary regenerates one table or figure of the paper; see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eda_cloud_core::Workflow;
use eda_cloud_netlist::{generators, Aig};
use eda_cloud_trace::{Metrics, Tracer};
use std::path::PathBuf;

/// Minimal flag parser for the reproduction binaries: `--flag` booleans
/// and `--key value` strings.
///
/// # Examples
///
/// ```
/// use eda_cloud_bench::Args;
///
/// let args = Args::parse(["--smoke", "--design", "aes"].iter().map(|s| s.to_string()));
/// assert!(args.flag("smoke"));
/// assert_eq!(args.value("design"), Some("aes"));
/// assert!(!args.flag("full"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    tokens: Vec<String>,
}

impl Args {
    /// Parse from an iterator of tokens (usually `std::env::args`).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        Self {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// Parse from the process arguments (skipping `argv[0]`).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether `--name` was passed.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.tokens.iter().any(|t| t == &format!("--{name}"))
    }

    /// The token following `--name`, if any.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.tokens
            .windows(2)
            .find(|w| w[0] == key)
            .map(|w| w[1].as_str())
    }

    /// Sweep worker count from `--workers N`; `0` (the default) lets
    /// the sweep engine pick one worker per available core.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the value is not a number.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.value("workers").map_or(0, |v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--workers expects a number, got `{v}`"))
        })
    }
}

/// Observability sinks requested on the command line:
///
/// * `--trace <path>` — canonical span trace (deterministic JSON,
///   byte-identical across runs and `--workers` counts),
/// * `--chrome-trace <path>` — the same spans on a synthetic timeline
///   in Chrome trace format (load in `chrome://tracing` or Perfetto),
/// * `--metrics <path>` — counter/gauge/histogram snapshot (stable
///   rendering; values such as queue waits are scheduling-dependent).
///
/// When none of the flags are passed, both the tracer and the metrics
/// registry stay disabled and instrumented code paths are near-no-ops.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    trace_path: Option<PathBuf>,
    chrome_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    tracer: Tracer,
    metrics: Metrics,
}

impl Observability {
    /// Read the observability flags from parsed arguments.
    #[must_use]
    pub fn from_args(args: &Args) -> Self {
        let trace_path = args.value("trace").map(PathBuf::from);
        let chrome_path = args.value("chrome-trace").map(PathBuf::from);
        let metrics_path = args.value("metrics").map(PathBuf::from);
        let tracer = if trace_path.is_some() || chrome_path.is_some() {
            Tracer::new()
        } else {
            Tracer::disabled()
        };
        let metrics = if metrics_path.is_some() {
            Metrics::new()
        } else {
            Metrics::disabled()
        };
        Self {
            trace_path,
            chrome_path,
            metrics_path,
            tracer,
            metrics,
        }
    }

    /// Attach the requested sinks to a workflow.
    #[must_use]
    pub fn instrument(&self, workflow: Workflow) -> Workflow {
        workflow
            .with_tracer(self.tracer.clone())
            .with_metrics(self.metrics.clone())
    }

    /// Write every requested file. Call once, after the run; spans
    /// recorded after this are lost.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when a file cannot be written (the
    /// binaries treat an unwritable sink path as a usage error).
    pub fn export(&self) {
        let write = |path: &PathBuf, what: &str, contents: &str| {
            std::fs::write(path, contents)
                .unwrap_or_else(|e| panic!("cannot write {what} to {}: {e}", path.display()));
            eprintln!("{what} written to {}", path.display());
        };
        if self.trace_path.is_some() || self.chrome_path.is_some() {
            let trace = self.tracer.drain();
            if let Some(path) = &self.trace_path {
                write(path, "trace", &trace.to_json());
            }
            if let Some(path) = &self.chrome_path {
                write(path, "chrome trace", &trace.to_chrome_json());
            }
        }
        if let Some(path) = &self.metrics_path {
            write(path, "metrics", &self.metrics.to_json());
        }
    }
}

/// Resolve the design used by the single-design experiments: the
/// OpenPiton-like composite named by `--design` (default `sparc_core`,
/// or `dynamic_node` under `--smoke`).
///
/// # Panics
///
/// Panics with a clear message when the name is unknown.
#[must_use]
pub fn experiment_design(args: &Args) -> Aig {
    let name = args
        .value("design")
        .unwrap_or(if args.flag("smoke") { "dynamic_node" } else { "sparc_core" });
    generators::openpiton_design(name).unwrap_or_else(|| {
        panic!(
            "unknown design `{name}`; available: {}",
            generators::OPENPITON_NAMES.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::parse(["--x", "--k", "v", "--y"].iter().map(|s| (*s).to_owned()));
        assert!(a.flag("x"));
        assert!(a.flag("y"));
        assert!(!a.flag("k2"));
        assert_eq!(a.value("k"), Some("v"));
        assert_eq!(a.value("missing"), None);
    }

    #[test]
    fn workers_flag_parses_with_auto_default() {
        let a = Args::parse(["--workers", "4"].iter().map(|s| (*s).to_owned()));
        assert_eq!(a.workers(), 4);
        assert_eq!(Args::default().workers(), 0);
    }

    #[test]
    #[should_panic(expected = "--workers expects a number")]
    fn bad_workers_value_panics() {
        let a = Args::parse(["--workers".to_owned(), "lots".to_owned()]);
        let _ = a.workers();
    }

    #[test]
    fn default_design_is_sparc_core() {
        let a = Args::default();
        let d = experiment_design(&a);
        assert_eq!(d.name(), "sparc_core");
    }

    #[test]
    fn smoke_uses_smallest_design() {
        let a = Args::parse(["--smoke".to_owned()]);
        assert_eq!(experiment_design(&a).name(), "dynamic_node");
    }

    #[test]
    #[should_panic(expected = "unknown design")]
    fn unknown_design_panics() {
        let a = Args::parse(["--design".to_owned(), "nope".to_owned()]);
        let _ = experiment_design(&a);
    }
}
