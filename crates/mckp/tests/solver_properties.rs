//! Property-based tests for the MCKP solver.

use eda_cloud_mckp::{baselines, Choice, Objective, Problem, Solver, Stage};
use proptest::prelude::*;

prop_compose! {
    fn arbitrary_problem()(
        seed in 0u64..10_000,
        stages in 1usize..5,
        choices in 1usize..5,
    ) -> Problem {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        Problem::new(
            (0..stages)
                .map(|i| Stage::new(
                    format!("s{i}"),
                    (0..choices)
                        .map(|j| Choice::new(
                            format!("c{j}"),
                            1 + next() % 200,
                            (next() % 1000) as f64 / 250.0,
                        ))
                        .collect(),
                ))
                .collect(),
        )
        .expect("generated problems are valid")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP always respects the budget and matches exhaustive search.
    #[test]
    fn dp_is_exact(problem in arbitrary_problem(), budget in 1u64..800) {
        let dp = Solver::new().solve_min_cost(&problem, budget);
        let brute = baselines::exhaustive_min_cost(&problem, budget);
        prop_assert_eq!(dp.is_some(), brute.is_some());
        if let (Some(dp), Some(brute)) = (dp, brute) {
            prop_assert!(dp.total_runtime_secs <= budget);
            prop_assert!((dp.total_cost_usd - brute.total_cost_usd).abs() < 1e-9);
        }
    }

    /// Feasibility is exactly `budget >= min_total_runtime`.
    #[test]
    fn feasibility_boundary(problem in arbitrary_problem()) {
        let edge = problem.min_total_runtime();
        let solver = Solver::new();
        prop_assert!(solver.solve_min_cost(&problem, edge).is_some());
        if edge > 0 {
            prop_assert!(solver.solve_min_cost(&problem, edge - 1).is_none());
        }
    }

    /// The paper's objective agrees on feasibility and is never cheaper
    /// than the min-cost objective.
    #[test]
    fn objectives_agree_on_feasibility(problem in arbitrary_problem(), budget in 1u64..800) {
        let solver = Solver::new();
        let a = solver.solve(&problem, budget, Objective::MaxInverseCost);
        let b = solver.solve(&problem, budget, Objective::MinCost);
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert!(b.total_cost_usd <= a.total_cost_usd + 1e-9);
        }
    }

    /// Greedy, when feasible, is within budget but never beats the DP.
    #[test]
    fn greedy_is_sound_but_not_better(problem in arbitrary_problem(), budget in 1u64..800) {
        if let Some(g) = baselines::greedy(&problem, budget) {
            prop_assert!(g.total_runtime_secs <= budget);
            let dp = Solver::new()
                .solve_min_cost(&problem, budget)
                .expect("greedy feasible implies dp feasible");
            prop_assert!(dp.total_cost_usd <= g.total_cost_usd + 1e-9);
        }
    }

    /// Solving the same instance twice yields byte-identical picks,
    /// even when many costs tie: every float comparison in the solver
    /// is a `total_cmp` with a deterministic index tie-break, so there
    /// is no scheduling- or NaN-dependent ordering to drift.
    #[test]
    fn solver_is_deterministic_under_ties(
        seed in 0u64..10_000,
        stages in 1usize..4,
        choices in 2usize..5,
        budget in 1u64..800,
    ) {
        // Quantize costs to just three values so ties are the common
        // case, not the corner case.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let stages: Vec<Stage> = (0..stages)
            .map(|i| Stage::new(
                format!("s{i}"),
                (0..choices)
                    .map(|j| Choice::new(
                        format!("c{j}"),
                        1 + next() % 50,
                        (next() % 3) as f64 * 0.25,
                    ))
                    .collect(),
            ))
            .collect();
        let solver = Solver::new();
        for objective in [Objective::MinCost, Objective::MaxInverseCost] {
            let a = solver.solve_stages(&stages, budget, objective).expect("valid");
            let b = solver.solve_stages(&stages, budget, objective).expect("valid");
            prop_assert_eq!(a.clone().map(|s| s.picks), b.map(|s| s.picks));
            // The raw-stage entry agrees with the validated-Problem one.
            let via_problem = solver.solve(
                &Problem::new(stages.clone()).expect("valid"),
                budget,
                objective,
            );
            prop_assert_eq!(a.map(|s| s.picks), via_problem.map(|s| s.picks));
        }
    }

    /// Greedy never panics and is deterministic on tied ratios.
    #[test]
    fn greedy_is_deterministic_under_ties(problem in arbitrary_problem(), budget in 1u64..800) {
        let a = baselines::greedy(&problem, budget);
        let b = baselines::greedy(&problem, budget);
        prop_assert_eq!(a.map(|s| s.picks), b.map(|s| s.picks));
    }

    /// Baseline selections bracket every feasible optimum in runtime.
    #[test]
    fn baselines_bracket_runtime(problem in arbitrary_problem(), budget in 1u64..800) {
        // over_provision picks the last choice per stage which is only
        // the fastest under the sorted-by-size convention; here we only
        // check the under-provisioning bound which holds structurally.
        let under = baselines::under_provision(&problem);
        if let Some(opt) = Solver::new().solve_min_cost(&problem, budget) {
            let fastest = problem.min_total_runtime();
            prop_assert!(opt.total_runtime_secs >= fastest);
            prop_assert!(
                opt.total_runtime_secs
                    <= under.total_runtime_secs.max(budget)
            );
        }
    }
}
