//! Multi-choice knapsack (MCKP) deployment optimizer.
//!
//! The paper's Problem 3: given each flow stage's predicted runtime and
//! cost on every candidate VM configuration, pick exactly one
//! configuration per stage so the total runtime meets a deadline and
//! the deployment is as cheap as possible. The paper maps this to the
//! multi-choice knapsack problem and solves it exactly with the
//! Dudzinski–Walukiewicz pseudo-polynomial dynamic program, exploiting
//! per-second billing to round runtimes to whole seconds.
//!
//! Two objectives are provided:
//!
//! * [`Solver::solve_max_inverse_cost`] — the paper's formulation,
//!   maximizing `Σ 1/pᵢⱼ` subject to `Σ tᵢⱼ ≤ C`.
//! * [`Solver::solve_min_cost`] — the direct formulation, minimizing
//!   `Σ pᵢⱼ` under the same constraint. The ablation bench compares the
//!   two (they agree on which deadlines are feasible but can pick
//!   different configurations; minimizing cost is never worse in USD).
//!
//! Callers assembling stages on the fly can use
//! [`Solver::solve_stages`], which validates raw stages and reports
//! malformed input as a typed [`MckpError`] instead of panicking.
//!
//! Baselines for Figure 6 live in [`baselines`]: over-provisioning
//! (largest machine everywhere), under-provisioning (smallest machine
//! everywhere), a greedy ratio heuristic, and an exhaustive enumerator
//! used to verify optimality in tests.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_mckp::{Choice, Problem, Solver, Stage};
//!
//! let problem = Problem::new(vec![Stage::new(
//!     "routing",
//!     vec![
//!         Choice::new("1 vCPU", 100, 0.10),
//!         Choice::new("8 vCPU", 20, 0.25),
//!     ],
//! )])?;
//! let pick = Solver::new().solve_min_cost(&problem, 50).expect("feasible");
//! assert_eq!(problem.describe(&pick)[0], "8 vCPU");
//! # Ok::<(), eda_cloud_mckp::MckpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod dp;
mod error;
mod problem;
mod savings;

pub use dp::{Objective, Selection, Solver};
pub use error::MckpError;
pub use problem::{Choice, Problem, Stage};
pub use savings::{
    savings_of, savings_vs_baselines, spot_comparison, spot_savings_vs_baselines, CostSavings,
    SpotComparison,
};
