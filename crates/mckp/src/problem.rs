//! MCKP problem definition.

use crate::MckpError;
use serde::{Deserialize, Serialize};

/// One VM-configuration option for a stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Choice {
    /// Human-readable label (e.g. `"r5.xlarge (4 vCPU)"`).
    pub label: String,
    /// Predicted runtime in whole seconds (the paper rounds to seconds
    /// because cloud machines bill per second).
    pub runtime_secs: u64,
    /// Cost in USD of running the stage on this configuration.
    pub cost_usd: f64,
}

impl Choice {
    /// Build a choice.
    #[must_use]
    pub fn new(label: impl Into<String>, runtime_secs: u64, cost_usd: f64) -> Self {
        Self {
            label: label.into(),
            runtime_secs,
            cost_usd,
        }
    }
}

/// One flow stage with its configuration choices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage name (e.g. `"placement"`).
    pub name: String,
    /// Candidate configurations.
    pub choices: Vec<Choice>,
}

impl Stage {
    /// Build a stage.
    #[must_use]
    pub fn new(name: impl Into<String>, choices: Vec<Choice>) -> Self {
        Self {
            name: name.into(),
            choices,
        }
    }

    /// The fastest choice (used for feasibility checks).
    #[must_use]
    pub fn fastest(&self) -> Option<&Choice> {
        self.choices.iter().min_by_key(|c| c.runtime_secs)
    }

    /// The cheapest choice.
    #[must_use]
    pub fn cheapest(&self) -> Option<&Choice> {
        self.choices
            .iter()
            .min_by(|a, b| a.cost_usd.total_cmp(&b.cost_usd))
    }
}

/// A validated MCKP instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    stages: Vec<Stage>,
}

impl Problem {
    /// Validate and build a problem.
    ///
    /// # Errors
    ///
    /// Returns [`MckpError::NoStages`], [`MckpError::EmptyStage`], or
    /// [`MckpError::InvalidCost`] when the instance is malformed.
    pub fn new(stages: Vec<Stage>) -> Result<Self, MckpError> {
        if stages.is_empty() {
            return Err(MckpError::NoStages);
        }
        for stage in &stages {
            if stage.choices.is_empty() {
                return Err(MckpError::EmptyStage(stage.name.clone()));
            }
            for choice in &stage.choices {
                if !choice.cost_usd.is_finite() || choice.cost_usd < 0.0 {
                    return Err(MckpError::InvalidCost {
                        stage: stage.name.clone(),
                        choice: choice.label.clone(),
                    });
                }
            }
        }
        Ok(Self { stages })
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Minimum achievable total runtime (fastest choice everywhere).
    #[must_use]
    pub fn min_total_runtime(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.fastest().map_or(0, |c| c.runtime_secs))
            .sum()
    }

    /// Labels of the choices picked by a selection, stage by stage.
    ///
    /// # Panics
    ///
    /// Panics if the selection does not match this problem's shape.
    #[must_use]
    pub fn describe(&self, selection: &crate::Selection) -> Vec<&str> {
        assert_eq!(selection.picks.len(), self.stages.len());
        selection
            .picks
            .iter()
            .zip(&self.stages)
            .map(|(&j, s)| s.choices[j].label.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_instances() {
        assert_eq!(Problem::new(vec![]).unwrap_err(), MckpError::NoStages);
        assert_eq!(
            Problem::new(vec![Stage::new("syn", vec![])]).unwrap_err(),
            MckpError::EmptyStage("syn".to_owned())
        );
        let bad = Problem::new(vec![Stage::new(
            "syn",
            vec![Choice::new("x", 10, f64::NAN)],
        )]);
        assert!(matches!(bad.unwrap_err(), MckpError::InvalidCost { .. }));
    }

    #[test]
    fn fastest_and_cheapest() {
        let stage = Stage::new(
            "route",
            vec![
                Choice::new("slow-cheap", 100, 0.10),
                Choice::new("fast-dear", 10, 0.90),
            ],
        );
        assert_eq!(stage.fastest().unwrap().label, "fast-dear");
        assert_eq!(stage.cheapest().unwrap().label, "slow-cheap");
    }

    #[test]
    fn min_total_runtime_sums_fastest() {
        let p = Problem::new(vec![
            Stage::new("a", vec![Choice::new("x", 10, 0.1), Choice::new("y", 4, 0.5)]),
            Stage::new("b", vec![Choice::new("x", 7, 0.1)]),
        ])
        .unwrap();
        assert_eq!(p.min_total_runtime(), 11);
    }
}
