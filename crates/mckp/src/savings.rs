//! Cost-savings accounting for Figure 6.

use crate::{baselines, Problem, Selection, Solver};
use eda_cloud_cloud::{Pricing, SpotMarket};
use serde::{Deserialize, Serialize};

/// Savings of an optimized deployment relative to the naive baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSavings {
    /// Optimized deployment cost in USD.
    pub optimized_usd: f64,
    /// Cost of running every stage on the largest machine.
    pub over_provision_usd: f64,
    /// Cost of running every stage on the smallest machine.
    pub under_provision_usd: f64,
    /// Fractional saving vs over-provisioning (0.35 = 35%).
    pub saving_vs_over: f64,
    /// Fractional saving vs under-provisioning.
    pub saving_vs_under: f64,
    /// Runtime overhead vs the all-largest deployment, in seconds.
    pub runtime_overhead_secs: i64,
}

impl CostSavings {
    /// Mean of the two savings figures (the paper reports the average
    /// saving across baselines and constraints: 35.29%).
    #[must_use]
    pub fn average_saving(&self) -> f64 {
        0.5 * (self.saving_vs_over + self.saving_vs_under)
    }
}

/// Solve the problem at `budget_secs` and compare against the
/// over/under-provisioning baselines. Returns `None` when the deadline
/// is infeasible.
#[must_use]
pub fn savings_vs_baselines(problem: &Problem, budget_secs: u64) -> Option<CostSavings> {
    let optimized = Solver::new().solve_min_cost(problem, budget_secs)?;
    Some(savings_of(problem, &optimized))
}

/// Compare an existing selection against the baselines.
#[must_use]
pub fn savings_of(problem: &Problem, optimized: &Selection) -> CostSavings {
    let over = baselines::over_provision(problem);
    let under = baselines::under_provision(problem);
    let frac = |base: f64| {
        if base > 0.0 {
            (base - optimized.total_cost_usd) / base
        } else {
            0.0
        }
    };
    CostSavings {
        optimized_usd: optimized.total_cost_usd,
        over_provision_usd: over.total_cost_usd,
        under_provision_usd: under.total_cost_usd,
        saving_vs_over: frac(over.total_cost_usd),
        saving_vs_under: frac(under.total_cost_usd),
        runtime_overhead_secs: optimized.total_runtime_secs as i64
            - over.total_runtime_secs as i64,
    }
}

/// On-demand vs expected-spot cost of one selection: what the same
/// MCKP-optimized deployment would cost on spot capacity, accounting for
/// interruption re-runs (see
/// [`Pricing::expected_spot_multiplier`](eda_cloud_cloud::Pricing::expected_spot_multiplier)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotComparison {
    /// The selection's on-demand cost in USD (what the DP optimized).
    pub on_demand_usd: f64,
    /// Expected cost of the same selection on spot capacity, USD.
    pub expected_spot_usd: f64,
    /// Fractional saving of spot vs on-demand (negative when
    /// interruption re-runs make spot a net loss).
    pub saving_vs_on_demand: f64,
}

/// Price an existing selection on the spot market: each chosen stage's
/// on-demand cost is scaled by the length-dependent expected-spot
/// multiplier (longer stages are likelier to be reclaimed and re-run, so
/// they keep less of the discount).
///
/// # Panics
///
/// Panics if the selection does not match the problem's shape.
#[must_use]
pub fn spot_comparison(
    problem: &Problem,
    selection: &Selection,
    pricing: &Pricing,
    market: &SpotMarket,
) -> SpotComparison {
    assert_eq!(selection.picks.len(), problem.stages().len());
    let expected_spot_usd: f64 = selection
        .picks
        .iter()
        .zip(problem.stages())
        .map(|(&j, stage)| {
            let choice = &stage.choices[j];
            choice.cost_usd * pricing.expected_spot_multiplier(choice.runtime_secs as f64, market)
        })
        .sum();
    let on_demand_usd = selection.total_cost_usd;
    let saving_vs_on_demand = if on_demand_usd > 0.0 {
        (on_demand_usd - expected_spot_usd) / on_demand_usd
    } else {
        0.0
    };
    SpotComparison {
        on_demand_usd,
        expected_spot_usd,
        saving_vs_on_demand,
    }
}

/// Solve at `budget_secs` and report both the on-demand savings vs the
/// naive baselines *and* the spot comparison for the optimized
/// selection — the Figure 6 extension. Returns `None` when the deadline
/// is infeasible.
#[must_use]
pub fn spot_savings_vs_baselines(
    problem: &Problem,
    budget_secs: u64,
    pricing: &Pricing,
    market: &SpotMarket,
) -> Option<(CostSavings, SpotComparison)> {
    let optimized = Solver::new().solve_min_cost(problem, budget_secs)?;
    let savings = savings_of(problem, &optimized);
    let spot = spot_comparison(problem, &optimized, pricing, market);
    Some((savings, spot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Stage};

    fn problem() -> Problem {
        // Shaped like the paper's Table I costs: mid-size machines are
        // the sweet spot, so optimization saves against both extremes.
        Problem::new(vec![
            Stage::new(
                "syn",
                vec![
                    Choice::new("1v", 6100, 0.16),
                    Choice::new("2v", 4342, 0.15),
                    Choice::new("4v", 3449, 0.19),
                    Choice::new("8v", 3352, 0.37),
                ],
            ),
            Stage::new(
                "route",
                vec![
                    Choice::new("1v", 10461, 0.32),
                    Choice::new("2v", 5514, 0.25),
                    Choice::new("4v", 2894, 0.21),
                    Choice::new("8v", 1692, 0.25),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn savings_positive_at_moderate_deadline() {
        let s = savings_vs_baselines(&problem(), 10_000).expect("feasible");
        assert!(s.saving_vs_over > 0.0, "{s:?}");
        assert!(s.saving_vs_under > 0.0, "{s:?}");
        assert!(s.average_saving() > 0.1);
        assert!(s.runtime_overhead_secs >= 0);
    }

    #[test]
    fn infeasible_deadline_gives_none() {
        assert!(savings_vs_baselines(&problem(), 100).is_none());
        let pricing = Pricing::per_second();
        let market = SpotMarket::typical();
        assert!(spot_savings_vs_baselines(&problem(), 100, &pricing, &market).is_none());
    }

    #[test]
    fn typical_spot_market_beats_on_demand_for_these_stages() {
        let p = problem();
        let pricing = Pricing::per_second();
        let market = SpotMarket::typical();
        let (_, spot) =
            spot_savings_vs_baselines(&p, 10_000, &pricing, &market).expect("feasible");
        assert!(spot.expected_spot_usd > 0.0);
        assert!(
            spot.expected_spot_usd < spot.on_demand_usd,
            "hour-scale stages at 5%/h interruption keep most of the discount: {spot:?}"
        );
        assert!(spot.saving_vs_on_demand > 0.5, "{spot:?}");
    }

    #[test]
    fn hostile_spot_market_flips_the_sign() {
        let p = problem();
        let optimized = Solver::new().solve_min_cost(&p, 10_000).expect("feasible");
        let pricing = Pricing::per_second();
        let hostile = SpotMarket {
            price_fraction: 0.9,
            interruption_per_hour: 0.95,
        };
        let spot = spot_comparison(&p, &optimized, &pricing, &hostile);
        assert!(
            spot.expected_spot_usd > spot.on_demand_usd,
            "tiny discount + constant reclaims must cost more: {spot:?}"
        );
        assert!(spot.saving_vs_on_demand < 0.0);
    }

    #[test]
    fn spot_scaling_is_per_stage_length() {
        // Two stages with equal on-demand cost but different lengths: the
        // longer one must contribute a larger expected-spot share.
        let p = Problem::new(vec![
            Stage::new("short", vec![Choice::new("x", 600, 1.0)]),
            Stage::new("long", vec![Choice::new("x", 36_000, 1.0)]),
        ])
        .unwrap();
        let sel = Solver::new().solve_min_cost(&p, 100_000).expect("feasible");
        let pricing = Pricing::per_second();
        let market = SpotMarket::typical();
        let spot = spot_comparison(&p, &sel, &pricing, &market);
        let short_mult = pricing.expected_spot_multiplier(600.0, &market);
        let long_mult = pricing.expected_spot_multiplier(36_000.0, &market);
        assert!(long_mult > short_mult);
        assert!((spot.expected_spot_usd - (short_mult + long_mult)).abs() < 1e-9);
    }

    #[test]
    fn at_the_feasibility_edge_optimized_equals_over_provisioning() {
        let p = problem();
        let edge = p.min_total_runtime();
        let s = savings_vs_baselines(&p, edge).expect("feasible");
        assert!(
            (s.optimized_usd - s.over_provision_usd).abs() < 1e-9,
            "at the edge only the all-fastest deployment fits"
        );
        assert_eq!(s.runtime_overhead_secs, 0);
    }
}
