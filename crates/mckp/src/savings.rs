//! Cost-savings accounting for Figure 6.

use crate::{baselines, Problem, Selection, Solver};
use serde::{Deserialize, Serialize};

/// Savings of an optimized deployment relative to the naive baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSavings {
    /// Optimized deployment cost in USD.
    pub optimized_usd: f64,
    /// Cost of running every stage on the largest machine.
    pub over_provision_usd: f64,
    /// Cost of running every stage on the smallest machine.
    pub under_provision_usd: f64,
    /// Fractional saving vs over-provisioning (0.35 = 35%).
    pub saving_vs_over: f64,
    /// Fractional saving vs under-provisioning.
    pub saving_vs_under: f64,
    /// Runtime overhead vs the all-largest deployment, in seconds.
    pub runtime_overhead_secs: i64,
}

impl CostSavings {
    /// Mean of the two savings figures (the paper reports the average
    /// saving across baselines and constraints: 35.29%).
    #[must_use]
    pub fn average_saving(&self) -> f64 {
        0.5 * (self.saving_vs_over + self.saving_vs_under)
    }
}

/// Solve the problem at `budget_secs` and compare against the
/// over/under-provisioning baselines. Returns `None` when the deadline
/// is infeasible.
#[must_use]
pub fn savings_vs_baselines(problem: &Problem, budget_secs: u64) -> Option<CostSavings> {
    let optimized = Solver::new().solve_min_cost(problem, budget_secs)?;
    Some(savings_of(problem, &optimized))
}

/// Compare an existing selection against the baselines.
#[must_use]
pub fn savings_of(problem: &Problem, optimized: &Selection) -> CostSavings {
    let over = baselines::over_provision(problem);
    let under = baselines::under_provision(problem);
    let frac = |base: f64| {
        if base > 0.0 {
            (base - optimized.total_cost_usd) / base
        } else {
            0.0
        }
    };
    CostSavings {
        optimized_usd: optimized.total_cost_usd,
        over_provision_usd: over.total_cost_usd,
        under_provision_usd: under.total_cost_usd,
        saving_vs_over: frac(over.total_cost_usd),
        saving_vs_under: frac(under.total_cost_usd),
        runtime_overhead_secs: optimized.total_runtime_secs as i64
            - over.total_runtime_secs as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Stage};

    fn problem() -> Problem {
        // Shaped like the paper's Table I costs: mid-size machines are
        // the sweet spot, so optimization saves against both extremes.
        Problem::new(vec![
            Stage::new(
                "syn",
                vec![
                    Choice::new("1v", 6100, 0.16),
                    Choice::new("2v", 4342, 0.15),
                    Choice::new("4v", 3449, 0.19),
                    Choice::new("8v", 3352, 0.37),
                ],
            ),
            Stage::new(
                "route",
                vec![
                    Choice::new("1v", 10461, 0.32),
                    Choice::new("2v", 5514, 0.25),
                    Choice::new("4v", 2894, 0.21),
                    Choice::new("8v", 1692, 0.25),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn savings_positive_at_moderate_deadline() {
        let s = savings_vs_baselines(&problem(), 10_000).expect("feasible");
        assert!(s.saving_vs_over > 0.0, "{s:?}");
        assert!(s.saving_vs_under > 0.0, "{s:?}");
        assert!(s.average_saving() > 0.1);
        assert!(s.runtime_overhead_secs >= 0);
    }

    #[test]
    fn infeasible_deadline_gives_none() {
        assert!(savings_vs_baselines(&problem(), 100).is_none());
    }

    #[test]
    fn at_the_feasibility_edge_optimized_equals_over_provisioning() {
        let p = problem();
        let edge = p.min_total_runtime();
        let s = savings_vs_baselines(&p, edge).expect("feasible");
        assert!(
            (s.optimized_usd - s.over_provision_usd).abs() < 1e-9,
            "at the edge only the all-fastest deployment fits"
        );
        assert_eq!(s.runtime_overhead_secs, 0);
    }
}
