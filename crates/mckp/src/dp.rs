//! The pseudo-polynomial dynamic program.

use crate::{MckpError, Problem, Stage};
use serde::{Deserialize, Serialize};

/// Which objective the DP optimizes under the runtime budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// The paper's Equation (2): maximize `Σ 1/pᵢⱼ`.
    MaxInverseCost,
    /// Direct cost minimization: minimize `Σ pᵢⱼ`.
    MinCost,
}

/// An optimal selection: one choice index per stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Choice index per stage (parallel to `Problem::stages`).
    pub picks: Vec<usize>,
    /// Total runtime of the selection in seconds.
    pub total_runtime_secs: u64,
    /// Total cost of the selection in USD.
    pub total_cost_usd: f64,
    /// Objective used to produce this selection.
    pub objective: Objective,
}

/// Exact MCKP solver (Dudzinski–Walukiewicz dynamic programming).
///
/// State: `z_l(C)` = best objective over the first `l` stages with total
/// runtime at most `C`; the recurrence tries every choice of stage `l`,
/// exactly as in the paper's Equation (3). Runtime values are integer
/// seconds, so the table is `stages x (C+1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Solver;

impl Solver {
    /// Create a solver.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Solve with the paper's `max Σ 1/p` objective.
    ///
    /// Returns `None` when no selection meets the budget (the paper's
    /// `z_l(C) = -∞`, printed as "NA" in Table I).
    #[must_use]
    pub fn solve_max_inverse_cost(&self, problem: &Problem, budget_secs: u64) -> Option<Selection> {
        self.solve(problem, budget_secs, Objective::MaxInverseCost)
    }

    /// Solve with the direct `min Σ p` objective.
    #[must_use]
    pub fn solve_min_cost(&self, problem: &Problem, budget_secs: u64) -> Option<Selection> {
        self.solve(problem, budget_secs, Objective::MinCost)
    }

    /// Solve under the given objective.
    #[must_use]
    pub fn solve(
        &self,
        problem: &Problem,
        budget_secs: u64,
        objective: Objective,
    ) -> Option<Selection> {
        // `Problem` is validated at construction, so the DP core's
        // preconditions hold by type.
        Self::solve_core(problem.stages(), budget_secs, objective)
    }

    /// Solve over raw stages, without requiring a pre-validated
    /// [`Problem`].
    ///
    /// This is the entry point for callers assembling stages on the fly
    /// (e.g. from streamed predictions): malformed input surfaces as a
    /// typed [`MckpError`] instead of a panic deep inside the DP.
    /// `Ok(None)` still means "valid but infeasible under the budget".
    ///
    /// # Errors
    ///
    /// Returns [`MckpError::NoStages`], [`MckpError::EmptyStage`], or
    /// [`MckpError::InvalidCost`] when the stages are malformed.
    pub fn solve_stages(
        &self,
        stages: &[Stage],
        budget_secs: u64,
        objective: Objective,
    ) -> Result<Option<Selection>, MckpError> {
        if stages.is_empty() {
            return Err(MckpError::NoStages);
        }
        for stage in stages {
            if stage.choices.is_empty() {
                return Err(MckpError::EmptyStage(stage.name.clone()));
            }
            for choice in &stage.choices {
                if !choice.cost_usd.is_finite() || choice.cost_usd < 0.0 {
                    return Err(MckpError::InvalidCost {
                        stage: stage.name.clone(),
                        choice: choice.label.clone(),
                    });
                }
            }
        }
        Ok(Self::solve_core(stages, budget_secs, objective))
    }

    fn solve_core(stages: &[Stage], budget_secs: u64, objective: Objective) -> Option<Selection> {
        // Any budget beyond the slowest possible schedule is equivalent
        // to it; clamp so the DP table stays proportional to the
        // problem, not to the caller's (possibly huge) deadline. The
        // sum saturates so absurd per-stage runtimes cannot overflow
        // the clamp itself.
        let max_useful: u64 = stages
            .iter()
            .map(|s| s.choices.iter().map(|c| c.runtime_secs).max().unwrap_or(0))
            .fold(0u64, u64::saturating_add);
        let budget = usize::try_from(budget_secs.min(max_useful)).ok()?;
        // score(choice): larger is better for the DP max.
        let score = |cost: f64| -> f64 {
            match objective {
                Objective::MaxInverseCost => {
                    if cost > 0.0 {
                        1.0 / cost
                    } else {
                        f64::INFINITY
                    }
                }
                Objective::MinCost => -cost,
            }
        };

        // dp[t] = best score achievable using runtime exactly <= t,
        // with parent pointers per stage for reconstruction.
        let mut dp: Vec<Option<f64>> = vec![None; budget + 1];
        dp[0] = Some(0.0);
        // Allow any slack at stage 0 by prefix-maxing later; instead we
        // keep "at most t" semantics by carrying forward the best value.
        let mut parents: Vec<Vec<Option<(usize, usize)>>> = Vec::with_capacity(stages.len());

        for stage in stages {
            let mut next: Vec<Option<f64>> = vec![None; budget + 1];
            let mut parent: Vec<Option<(usize, usize)>> = vec![None; budget + 1];
            for (j, choice) in stage.choices.iter().enumerate() {
                let t = usize::try_from(choice.runtime_secs).unwrap_or(usize::MAX);
                if t > budget {
                    continue;
                }
                let s = score(choice.cost_usd);
                for (prev_t, &slot_score) in dp.iter().enumerate().take(budget - t + 1) {
                    let Some(prev) = slot_score else { continue };
                    let cand = prev + s;
                    let slot = prev_t + t;
                    if next[slot].is_none_or(|best| cand > best) {
                        next[slot] = Some(cand);
                        parent[slot] = Some((j, prev_t));
                    }
                }
            }
            dp = next;
            parents.push(parent);
        }

        // Best cell within budget.
        let (best_t, _) = dp
            .iter()
            .enumerate()
            .filter_map(|(t, v)| v.map(|v| (t, v)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))?;

        // Reconstruct. Every reachable cell was written together with
        // its parent pointer, so the chain is complete by construction;
        // `?` keeps the solver panic-free even if that invariant were
        // ever broken.
        let mut picks = vec![0usize; stages.len()];
        let mut t = best_t;
        for (l, parent) in parents.iter().enumerate().rev() {
            let (j, prev_t) = parent[t]?;
            picks[l] = j;
            t = prev_t;
        }
        let total_runtime_secs: u64 = picks
            .iter()
            .zip(stages)
            .map(|(&j, s)| s.choices[j].runtime_secs)
            .sum();
        let total_cost_usd: f64 = picks
            .iter()
            .zip(stages)
            .map(|(&j, s)| s.choices[j].cost_usd)
            .sum();
        Some(Selection {
            picks,
            total_runtime_secs,
            total_cost_usd,
            objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baselines, Choice, Stage};

    fn toy_problem() -> Problem {
        // Mirrors the structure of the paper's Table I: four stages,
        // four sizes each; bigger machines are faster but (mostly)
        // dearer.
        let stage = |name: &str, rows: &[(u64, f64)]| {
            Stage::new(
                name,
                rows.iter()
                    .enumerate()
                    .map(|(k, &(t, p))| Choice::new(format!("{}v", 1 << k), t, p))
                    .collect(),
            )
        };
        Problem::new(vec![
            stage(
                "synthesis",
                &[(6100, 0.16), (4342, 0.15), (3449, 0.19), (3352, 0.37)],
            ),
            stage(
                "placement",
                &[(1206, 0.04), (905, 0.04), (644, 0.05), (519, 0.08)],
            ),
            stage(
                "routing",
                &[(10461, 0.32), (5514, 0.25), (2894, 0.21), (1692, 0.25)],
            ),
            stage("sta", &[(183, 0.02), (119, 0.01), (90, 0.02), (82, 0.05)]),
        ])
        .expect("valid problem")
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let p = toy_problem();
        // Fastest possible total = 3352 + 519 + 1692 + 82 = 5645.
        assert_eq!(p.min_total_runtime(), 5645);
        assert!(Solver::new().solve_min_cost(&p, 5644).is_none());
        assert!(Solver::new().solve_max_inverse_cost(&p, 5000).is_none());
    }

    #[test]
    fn exact_boundary_budget_selects_fastest_everywhere() {
        let p = toy_problem();
        let sel = Solver::new().solve_min_cost(&p, 5645).expect("feasible");
        assert_eq!(sel.total_runtime_secs, 5645);
        assert_eq!(p.describe(&sel), vec!["8v", "8v", "8v", "8v"]);
    }

    #[test]
    fn loose_budget_prefers_cheap_machines() {
        let p = toy_problem();
        let sel = Solver::new()
            .solve_min_cost(&p, 1_000_000)
            .expect("feasible");
        // With unlimited time, the min-cost solver picks each stage's
        // cheapest configuration.
        let cheapest: f64 = p
            .stages()
            .iter()
            .filter_map(|s| s.cheapest())
            .map(|c| c.cost_usd)
            .sum();
        assert!((sel.total_cost_usd - cheapest).abs() < 1e-9);
    }

    #[test]
    fn tightening_budget_never_reduces_cost() {
        let p = toy_problem();
        let solver = Solver::new();
        let mut last_cost = 0.0;
        for budget in [20_000u64, 10_000, 8_000, 6_000, 5_645] {
            let sel = solver.solve_min_cost(&p, budget).expect("feasible");
            assert!(sel.total_runtime_secs <= budget);
            assert!(
                sel.total_cost_usd >= last_cost - 1e-9,
                "cost must not drop when the deadline tightens"
            );
            last_cost = sel.total_cost_usd;
        }
    }

    #[test]
    fn min_cost_matches_exhaustive() {
        let p = toy_problem();
        let solver = Solver::new();
        for budget in [5_645u64, 6_000, 7_500, 10_000, 18_000] {
            let dp = solver.solve_min_cost(&p, budget).expect("feasible");
            let brute = baselines::exhaustive_min_cost(&p, budget).expect("feasible");
            assert!(
                (dp.total_cost_usd - brute.total_cost_usd).abs() < 1e-9,
                "budget {budget}: dp {} vs brute {}",
                dp.total_cost_usd,
                brute.total_cost_usd
            );
        }
    }

    #[test]
    fn paper_objective_is_feasible_whenever_min_cost_is() {
        let p = toy_problem();
        let solver = Solver::new();
        for budget in [5_645u64, 6_000, 10_000] {
            let a = solver.solve_max_inverse_cost(&p, budget);
            let b = solver.solve_min_cost(&p, budget);
            assert_eq!(a.is_some(), b.is_some(), "budget {budget}");
            let (a, b) = (a.unwrap(), b.unwrap());
            assert!(a.total_runtime_secs <= budget);
            // Min-cost is by definition no more expensive.
            assert!(b.total_cost_usd <= a.total_cost_usd + 1e-9);
        }
    }

    #[test]
    fn zero_cost_choice_handled() {
        let p = Problem::new(vec![Stage::new(
            "free",
            vec![Choice::new("gratis", 10, 0.0), Choice::new("paid", 5, 1.0)],
        )])
        .unwrap();
        let sel = Solver::new()
            .solve_max_inverse_cost(&p, 100)
            .expect("feasible");
        assert_eq!(p.describe(&sel), vec!["gratis"]);
    }

    #[test]
    fn single_stage_single_choice() {
        let p = Problem::new(vec![Stage::new("only", vec![Choice::new("x", 42, 0.5)])]).unwrap();
        let sel = Solver::new().solve_min_cost(&p, 42).expect("feasible");
        assert_eq!(sel.total_runtime_secs, 42);
        assert!(Solver::new().solve_min_cost(&p, 41).is_none());
    }

    #[test]
    fn empty_stage_is_a_typed_error_not_a_panic() {
        use crate::MckpError;
        let solver = Solver::new();
        assert_eq!(
            solver.solve_stages(&[], 100, Objective::MinCost).unwrap_err(),
            MckpError::NoStages
        );
        let stages = vec![
            Stage::new("syn", vec![Choice::new("1v", 10, 0.1)]),
            Stage::new("route", vec![]),
        ];
        assert_eq!(
            solver
                .solve_stages(&stages, 100, Objective::MinCost)
                .unwrap_err(),
            MckpError::EmptyStage("route".to_owned())
        );
        let stages = vec![Stage::new("syn", vec![Choice::new("1v", 10, f64::NAN)])];
        assert!(matches!(
            solver
                .solve_stages(&stages, 100, Objective::MinCost)
                .unwrap_err(),
            MckpError::InvalidCost { .. }
        ));
    }

    #[test]
    fn single_choice_stages_solve_through_the_raw_entry() {
        // One choice per stage: the DP has nothing to trade off but
        // must still reconstruct a complete parent chain.
        let stages = vec![
            Stage::new("syn", vec![Choice::new("only", 10, 0.10)]),
            Stage::new("route", vec![Choice::new("only", 7, 0.05)]),
        ];
        let sel = Solver::new()
            .solve_stages(&stages, 17, Objective::MinCost)
            .expect("valid stages")
            .expect("feasible");
        assert_eq!(sel.picks, vec![0, 0]);
        assert_eq!(sel.total_runtime_secs, 17);
        let infeasible = Solver::new()
            .solve_stages(&stages, 16, Objective::MinCost)
            .expect("valid stages");
        assert!(infeasible.is_none());
    }

    #[test]
    fn absurd_runtimes_saturate_the_budget_clamp() {
        // Two near-u64::MAX runtimes used to overflow the max-useful
        // sum (a debug-build panic); the clamp now saturates and the
        // solve stays a clean "infeasible".
        let stages = vec![
            Stage::new("a", vec![Choice::new("x", u64::MAX - 1, 0.1)]),
            Stage::new("b", vec![Choice::new("x", u64::MAX - 1, 0.1)]),
        ];
        let sel = Solver::new()
            .solve_stages(&stages, 1_000, Objective::MinCost)
            .expect("valid stages");
        assert!(sel.is_none());
    }
}
