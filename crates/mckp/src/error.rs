//! MCKP errors.

use std::error::Error;
use std::fmt;

/// Errors raised when building an MCKP instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MckpError {
    /// A stage has no configuration choices.
    EmptyStage(String),
    /// The problem has no stages.
    NoStages,
    /// A choice has a non-finite or negative cost.
    InvalidCost {
        /// Stage name.
        stage: String,
        /// Choice label.
        choice: String,
    },
}

impl fmt::Display for MckpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MckpError::EmptyStage(s) => write!(f, "stage `{s}` has no configuration choices"),
            MckpError::NoStages => write!(f, "problem has no stages"),
            MckpError::InvalidCost { stage, choice } => {
                write!(f, "choice `{choice}` of stage `{stage}` has an invalid cost")
            }
        }
    }
}

impl Error for MckpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(MckpError::EmptyStage("sta".into()).to_string().contains("sta"));
        assert_eq!(MckpError::NoStages.to_string(), "problem has no stages");
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<MckpError>();
    }
}
