//! Provisioning baselines and the exhaustive verifier.
//!
//! Figure 6 compares the knapsack deployment against two naive
//! strategies an EDA team might use: *over-provisioning* (run every
//! stage on the largest machine) and *under-provisioning* (run every
//! stage on the smallest machine).

use crate::{Objective, Problem, Selection};

/// Select the last (largest / fastest-configured) choice of every stage
/// — the paper's "8 vCPUs in all jobs" baseline.
///
/// The caller is responsible for ordering each stage's choices from
/// smallest to largest machine, which is how
/// [`Problem`] instances are built throughout this workspace.
#[must_use]
pub fn over_provision(problem: &Problem) -> Selection {
    selection_from(
        problem,
        problem
            .stages()
            .iter()
            // saturating: a Problem never has empty stages, but this
            // keeps the baseline underflow-proof regardless.
            .map(|s| s.choices.len().saturating_sub(1))
            .collect(),
    )
}

/// Select the first (smallest) choice of every stage — the paper's
/// "1 vCPU in all jobs" baseline.
#[must_use]
pub fn under_provision(problem: &Problem) -> Selection {
    selection_from(problem, vec![0; problem.stages().len()])
}

/// Greedy heuristic: start from the cheapest configuration per stage,
/// then repeatedly upgrade the stage-choice swap with the best
/// time-saved-per-extra-dollar ratio until the deadline is met.
/// Not optimal — used as a comparison point in the ablation bench.
#[must_use]
pub fn greedy(problem: &Problem, budget_secs: u64) -> Option<Selection> {
    let stages = problem.stages();
    let mut picks: Vec<usize> = stages
        .iter()
        .map(|s| {
            s.choices
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cost_usd.total_cmp(&b.1.cost_usd))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();
    let total = |picks: &[usize]| -> u64 {
        picks
            .iter()
            .zip(stages)
            .map(|(&j, s)| s.choices[j].runtime_secs)
            .sum()
    };
    while total(&picks) > budget_secs {
        // Best upgrade across all stages.
        let mut best: Option<(usize, usize, f64)> = None; // (stage, choice, ratio)
        for (i, stage) in stages.iter().enumerate() {
            let cur = &stage.choices[picks[i]];
            for (j, cand) in stage.choices.iter().enumerate() {
                if cand.runtime_secs >= cur.runtime_secs {
                    continue;
                }
                let saved = (cur.runtime_secs - cand.runtime_secs) as f64;
                let extra = (cand.cost_usd - cur.cost_usd).max(1e-9);
                let ratio = saved / extra;
                if best.is_none_or(|(_, _, r)| ratio > r) {
                    best = Some((i, j, ratio));
                }
            }
        }
        let (i, j, _) = best?;
        picks[i] = j;
    }
    Some(selection_from(problem, picks))
}

/// Exhaustive enumeration of all selections; exact but exponential.
/// Used by tests to certify the DP's optimality on small instances.
#[must_use]
pub fn exhaustive_min_cost(problem: &Problem, budget_secs: u64) -> Option<Selection> {
    let stages = problem.stages();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut picks = vec![0usize; stages.len()];
    loop {
        let runtime: u64 = picks
            .iter()
            .zip(stages)
            .map(|(&j, s)| s.choices[j].runtime_secs)
            .sum();
        if runtime <= budget_secs {
            let cost: f64 = picks
                .iter()
                .zip(stages)
                .map(|(&j, s)| s.choices[j].cost_usd)
                .sum();
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, picks.clone()));
            }
        }
        // Odometer increment.
        let mut l = 0;
        loop {
            if l == stages.len() {
                let (_, picks) = best?;
                return Some(selection_from(problem, picks));
            }
            picks[l] += 1;
            if picks[l] < stages[l].choices.len() {
                break;
            }
            picks[l] = 0;
            l += 1;
        }
    }
}

fn selection_from(problem: &Problem, picks: Vec<usize>) -> Selection {
    let stages = problem.stages();
    let total_runtime_secs = picks
        .iter()
        .zip(stages)
        .map(|(&j, s)| s.choices[j].runtime_secs)
        .sum();
    let total_cost_usd = picks
        .iter()
        .zip(stages)
        .map(|(&j, s)| s.choices[j].cost_usd)
        .sum();
    Selection {
        picks,
        total_runtime_secs,
        total_cost_usd,
        objective: Objective::MinCost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Choice, Stage};

    fn problem() -> Problem {
        Problem::new(vec![
            Stage::new(
                "a",
                vec![
                    Choice::new("1v", 100, 0.10),
                    Choice::new("2v", 60, 0.12),
                    Choice::new("4v", 40, 0.20),
                ],
            ),
            Stage::new(
                "b",
                vec![
                    Choice::new("1v", 50, 0.05),
                    Choice::new("2v", 30, 0.06),
                    Choice::new("4v", 20, 0.10),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn over_provision_is_fastest() {
        let p = problem();
        let sel = over_provision(&p);
        assert_eq!(sel.total_runtime_secs, 60);
        assert_eq!(p.describe(&sel), vec!["4v", "4v"]);
    }

    #[test]
    fn under_provision_is_smallest() {
        let p = problem();
        let sel = under_provision(&p);
        assert_eq!(sel.total_runtime_secs, 150);
        assert_eq!(p.describe(&sel), vec!["1v", "1v"]);
    }

    #[test]
    fn greedy_meets_deadline_when_feasible() {
        let p = problem();
        let sel = greedy(&p, 100).expect("feasible");
        assert!(sel.total_runtime_secs <= 100);
        assert!(greedy(&p, 10).is_none(), "infeasible deadline");
    }

    #[test]
    fn greedy_never_beats_exhaustive() {
        let p = problem();
        for budget in [60u64, 80, 100, 150] {
            let g = greedy(&p, budget).expect("feasible");
            let e = exhaustive_min_cost(&p, budget).expect("feasible");
            assert!(e.total_cost_usd <= g.total_cost_usd + 1e-9, "budget {budget}");
        }
    }

    #[test]
    fn exhaustive_handles_infeasible() {
        let p = problem();
        assert!(exhaustive_min_cost(&p, 59).is_none());
    }
}
