//! Recipe-subsystem errors.

use eda_cloud_flow::FlowError;
use std::error::Error;
use std::fmt;

/// Errors raised by recipe search, the hybrid predictor, and joint
/// planning.
#[derive(Debug, Clone, PartialEq)]
pub enum RecipeError {
    /// A candidate evaluation failed inside the synthesis engine.
    Flow(FlowError),
    /// A pass outside the search alphabet reached the sequence encoder.
    UnknownPass {
        /// Canonical rendering of the offending pass.
        pass: String,
    },
    /// A recipe longer than the encoder's positional window.
    RecipeTooLong {
        /// Number of passes in the rejected recipe.
        len: usize,
        /// Maximum encodable length.
        max: usize,
    },
    /// A predictor snapshot failed to parse or failed its checksum.
    Snapshot {
        /// What was wrong with the snapshot text.
        message: String,
    },
    /// Joint planning was asked to rank an empty candidate set.
    NoCandidates,
    /// A search scenario named a design family the generators don't
    /// know.
    UnknownDesign {
        /// The unrecognized family name.
        name: String,
    },
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipeError::Flow(e) => write!(f, "candidate evaluation failed: {e}"),
            RecipeError::UnknownPass { pass } => {
                write!(f, "pass `{pass}` is outside the search alphabet")
            }
            RecipeError::RecipeTooLong { len, max } => {
                write!(f, "recipe has {len} passes but the encoder window is {max}")
            }
            RecipeError::Snapshot { message } => {
                write!(f, "hybrid-predictor snapshot rejected: {message}")
            }
            RecipeError::NoCandidates => write!(f, "no candidate recipes to plan over"),
            RecipeError::UnknownDesign { name } => {
                write!(f, "unknown design family `{name}`")
            }
        }
    }
}

impl Error for RecipeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecipeError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlowError> for RecipeError {
    fn from(e: FlowError) -> Self {
        RecipeError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: RecipeError = FlowError::EmptyDesign.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("evaluation failed"));
        let e = RecipeError::RecipeTooLong { len: 9, max: 6 };
        assert!(e.to_string().contains('9'));
        assert!(e.source().is_none());
        let e = RecipeError::Snapshot { message: "bad header".into() };
        assert!(e.to_string().contains("bad header"));
        let e = RecipeError::UnknownDesign { name: "mystery".into() };
        assert!(e.to_string().contains("mystery"));
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<RecipeError>();
    }
}
