//! Deterministic seeded MCTS over synthesis-pass sequences.
//!
//! # Determinism argument
//!
//! Every source of nondeterminism is closed off by construction:
//!
//! * **Selection and expansion are strictly sequential.** Iterations
//!   are grouped into fixed-size batches (a property of the
//!   [`SearchConfig`], not of the machine); within a batch, leaves are
//!   selected one after another with the visit increment applied
//!   immediately (a virtual loss), so the K-th selection of a batch is
//!   a pure function of the tree state and never of thread timing.
//! * **UCB is integer-only.** Exploitation is reward-ppm over visits;
//!   exploration is a fixed-point `C·√(ln N / n)` built from an
//!   `ilog2`-based `ln` approximation and a Newton integer square
//!   root. No float accumulates across iterations, so there is no
//!   reassociation hazard anywhere in tree policy.
//! * **Ties break canonically** toward the lowest action index.
//! * **Rollout randomness is one ChaCha8 stream** advanced only during
//!   the sequential selection phase, in iteration order.
//! * **Evaluations are pure** functions of `(design, pass sequence)`.
//!   Worker threads evaluate the distinct uncached sequences of a
//!   batch in parallel and results are joined by index; the cache is
//!   filled in first-appearance order. A worker count can therefore
//!   change wall-clock time and nothing else — the tree, the report,
//!   and the cache contents are byte-identical at any worker count,
//!   and a pre-warmed cache short-circuits evaluations without
//!   perturbing a single visit count.

use crate::encode::{recipe_from_passes, recipe_key, ALPHABET, MAX_RECIPE_LEN};
use crate::{NoRecipeFaults, RecipeError, RecipeFaults};
use eda_cloud_flow::{ExecContext, Pass, Synthesizer};
use eda_cloud_netlist::Aig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Parts per million — the fixed-point unit of rewards and UCB.
pub const PPM: u64 = 1_000_000;

/// `ln(2)` in ppm; `ln(n) ≈ ilog2(n) · LN2_PPM`.
const LN2_PPM: u64 = 693_147;

/// Exploration constant in ppm (C ≈ 0.9).
const EXPLORE_C_PPM: u64 = 900_000;

/// Rewards are clamped to this many ppm (3x the baseline quality).
const REWARD_CAP_PPM: u64 = 3 * PPM;

/// Simulated cost of one synthesis evaluation (cache miss).
const EVAL_MISS_US: u64 = 1_000;

/// Simulated cost of an evaluation served from the cache.
const EVAL_HIT_US: u64 = 50;

/// Search-agent configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Total MCTS iterations (leaf selections).
    pub iters: u64,
    /// Leaf selections grouped per evaluation batch. Part of the
    /// search definition — the tree depends on it, so it must not be
    /// derived from the machine.
    pub batch: usize,
    /// Maximum recipe length the tree may reach (clamped to
    /// [`MAX_RECIPE_LEN`]).
    pub max_len: usize,
    /// Rollout seed.
    pub seed: u64,
    /// Threads used to evaluate a batch's distinct uncached
    /// candidates. Affects wall-clock only.
    pub workers: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            iters: 64,
            batch: 4,
            max_len: 4,
            seed: 7,
            workers: 1,
        }
    }
}

impl SearchConfig {
    /// Effective maximum recipe length.
    #[must_use]
    pub fn effective_max_len(&self) -> usize {
        self.max_len.clamp(1, MAX_RECIPE_LEN)
    }

    /// Effective worker count (at least one).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        self.workers.clamp(1, 8)
    }
}

/// The QoR/runtime outcome of synthesizing one pass sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOutcome {
    /// Mapped standard cells (the QoR area proxy).
    pub cells: u64,
    /// Mapped logic depth.
    pub depth: u64,
    /// Modeled synthesis runtime in milliseconds at 1/2/4/8 vCPUs.
    pub runtime_ms: [u64; 4],
}

impl EvalOutcome {
    /// The integer score the search minimizes: area-dominated QoR with
    /// depth and 4-vCPU runtime as fixed-weight tiebreakers.
    #[must_use]
    pub fn score(&self) -> u64 {
        self.cells * 10_000 + self.depth * 100 + self.runtime_ms[2]
    }
}

/// Keyed evaluation cache: canonical recipe key → outcome.
///
/// Sharing one cache across searches (or pre-warming it) never changes
/// a search result — only how many synthesis runs back it.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    map: BTreeMap<String, EvalOutcome>,
}

impl EvalCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached outcome for a canonical recipe key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&EvalOutcome> {
        self.map.get(key)
    }

    /// Insert an outcome under its canonical key.
    pub fn insert(&mut self, key: String, outcome: EvalOutcome) {
        self.map.insert(key, outcome);
    }

    /// Number of cached evaluations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Per-node statistics exported for reporting and invariant checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStat {
    /// Depth in the tree (= recipe prefix length).
    pub depth: u32,
    /// Times the node was on a selected path (including creation).
    pub visits: u64,
    /// Times the node itself was the selected leaf.
    pub own_selections: u64,
    /// Sum of the node's children's visits.
    pub child_visits: u64,
}

/// Search-tree statistics: one entry per node, in creation order
/// (index 0 is the root).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreeStats {
    /// Per-node stats.
    pub nodes: Vec<NodeStat>,
    /// Iterations the search ran (= leaf selections performed).
    pub total_iterations: u64,
}

impl TreeStats {
    /// Number of nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest node.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Root visit count (must equal `total_iterations`).
    #[must_use]
    pub fn root_visits(&self) -> u64 {
        self.nodes.first().map_or(0, |n| n.visits)
    }
}

/// One point of the QoR trajectory: the best score after `iter`
/// iterations (recorded whenever the incumbent improves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Iterations completed when the improvement landed.
    pub iter: u64,
    /// Canonical key of the new incumbent.
    pub key: String,
    /// Its score.
    pub score: u64,
}

/// Everything a finished search knows.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Design name.
    pub design: String,
    /// Canonical key of the best recipe found.
    pub best_key: String,
    /// Its pass sequence.
    pub best_passes: Vec<Pass>,
    /// Its evaluation.
    pub best: EvalOutcome,
    /// Canonical key of the default production recipe.
    pub baseline_key: String,
    /// The default recipe's evaluation.
    pub baseline: EvalOutcome,
    /// Iterations performed.
    pub iterations: u64,
    /// Synthesis evaluations actually run (cache misses).
    pub evaluations: u64,
    /// Evaluations served from the cache.
    pub cache_hits: u64,
    /// Total simulated evaluation time (worker-independent sum,
    /// including injected stalls).
    pub total_eval_us: u64,
    /// Tree statistics.
    pub tree: TreeStats,
    /// Incumbent-improvement trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// `ln(n)` in ppm via `ilog2`.
fn ln_ppm(n: u64) -> u64 {
    if n < 2 {
        0
    } else {
        u64::from(n.ilog2()) * LN2_PPM
    }
}

/// Newton integer square root.
fn isqrt(x: u128) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut guess = 1u128 << (x.ilog2() / 2 + 1);
    loop {
        let next = (guess + x / guess) / 2;
        if next >= guess {
            // Converged (allow u64 truncation: √u128 fits in u64).
            #[allow(clippy::cast_possible_truncation)]
            return guess as u64;
        }
        guess = next;
    }
}

/// Integer UCB in ppm: `reward/visits + C·√(ln(parent)/visits)`.
fn ucb_ppm(reward_ppm: u64, visits: u64, parent_visits: u64) -> u64 {
    let exploit = reward_ppm / visits;
    let explore_sq = u128::from(ln_ppm(parent_visits)) * u128::from(PPM) / u128::from(visits);
    let explore = EXPLORE_C_PPM * u128::from(isqrt(explore_sq)) as u64 / PPM;
    exploit.saturating_add(explore)
}

/// One MCTS tree node.
#[derive(Debug, Clone)]
struct Node {
    passes: Vec<Pass>,
    children: [Option<usize>; ALPHABET.len()],
    visits: u64,
    own_selections: u64,
    reward_ppm: u64,
}

impl Node {
    fn new(passes: Vec<Pass>) -> Self {
        Self {
            passes,
            children: [None; ALPHABET.len()],
            visits: 0,
            own_selections: 0,
            reward_ppm: 0,
        }
    }
}

/// One batched leaf selection: the path of node indices from the root
/// and the rollout-completed pass sequence to evaluate.
struct Selection {
    path: Vec<usize>,
    rollout: Vec<Pass>,
    key: String,
    iter: u64,
}

/// The deterministic recipe-search agent.
#[derive(Debug, Clone)]
pub struct RecipeSearch {
    config: SearchConfig,
    synthesizer: Synthesizer,
}

impl RecipeSearch {
    /// Agent with the given configuration. Candidate synthesis runs
    /// skip verification — the search compares structures, and every
    /// pass is function-preserving by construction.
    #[must_use]
    pub fn new(config: SearchConfig) -> Self {
        Self {
            config,
            synthesizer: Synthesizer::new().with_verification(false),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Run the search with no faults and a fresh cache.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures as [`RecipeError::Flow`].
    pub fn run(&self, design: &str, aig: &Aig) -> Result<SearchOutcome, RecipeError> {
        self.run_with(design, aig, &NoRecipeFaults, &mut EvalCache::new())
    }

    /// Run the search against explicit fault hooks and a shared
    /// evaluation cache.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures as [`RecipeError::Flow`].
    pub fn run_with(
        &self,
        design: &str,
        aig: &Aig,
        faults: &dyn RecipeFaults,
        cache: &mut EvalCache,
    ) -> Result<SearchOutcome, RecipeError> {
        let max_len = self.config.effective_max_len();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x5EC1_FE00);
        let mut nodes = vec![Node::new(Vec::new())];
        let mut evaluations = 0u64;
        let mut cache_hits = 0u64;
        let mut total_eval_us = 0u64;
        let mut trajectory = Vec::new();

        // Judge everything against the default production recipe.
        let baseline_key = recipe_key(&crate::encode::DEFAULT_PASSES);
        let baseline = self.eval_one(
            aig,
            &crate::encode::DEFAULT_PASSES,
            cache,
            &mut evaluations,
            &mut cache_hits,
        )?;
        let baseline_score = baseline.score().max(1);

        let mut best_key = baseline_key.clone();
        let mut best_passes = crate::encode::DEFAULT_PASSES.to_vec();
        let mut best = baseline;

        let mut iter = 0u64;
        while iter < self.config.iters {
            let remaining = self.config.iters - iter;
            let batch_len = (self.config.batch.max(1) as u64).min(remaining);

            // Sequential selection phase: virtual visits + rollouts.
            let mut selections = Vec::with_capacity(batch_len as usize);
            for _ in 0..batch_len {
                let path = select_path(&mut nodes, max_len);
                let leaf_passes = nodes[*path.last().expect("path never empty")].passes.clone();
                let rollout = complete_rollout(leaf_passes, max_len, &mut rng);
                let key = recipe_key(&rollout);
                selections.push(Selection {
                    path,
                    rollout,
                    key,
                    iter,
                });
                iter += 1;
            }

            // Distinct uncached candidates, in first-appearance order.
            let mut pending: Vec<(String, Vec<Pass>)> = Vec::new();
            let mut hit_flags = Vec::with_capacity(selections.len());
            for sel in &selections {
                let hit = cache.get(&sel.key).is_some()
                    || pending.iter().any(|(k, _)| k == &sel.key);
                if hit {
                    cache_hits += 1;
                } else {
                    pending.push((sel.key.clone(), sel.rollout.clone()));
                }
                hit_flags.push(hit);
            }

            // Parallel evaluation, joined by index.
            let outcomes = self.eval_batch(aig, &pending)?;
            for ((key, _), outcome) in pending.into_iter().zip(outcomes) {
                cache.insert(key, outcome);
                evaluations += 1;
            }

            // Canonical-order backup + accounting.
            for (sel, &hit) in selections.iter().zip(&hit_flags) {
                let outcome = *cache.get(&sel.key).expect("batch filled the cache");
                let score = outcome.score().max(1);
                let reward = (baseline_score.saturating_mul(PPM) / score).min(REWARD_CAP_PPM);
                for &idx in &sel.path {
                    nodes[idx].reward_ppm = nodes[idx].reward_ppm.saturating_add(reward);
                }
                total_eval_us += if hit { EVAL_HIT_US } else { EVAL_MISS_US };
                total_eval_us = total_eval_us.saturating_add(faults.eval_extra_us(sel.iter));
                let better = score < best.score()
                    || (score == best.score() && sel.key.as_str() < best_key.as_str());
                if better {
                    best = outcome;
                    best_key = sel.key.clone();
                    best_passes = sel.rollout.clone();
                    trajectory.push(TrajectoryPoint {
                        iter: sel.iter + 1,
                        key: best_key.clone(),
                        score: best.score(),
                    });
                }
            }
        }

        let tree = TreeStats {
            nodes: nodes
                .iter()
                .map(|n| NodeStat {
                    depth: n.passes.len() as u32,
                    visits: n.visits,
                    own_selections: n.own_selections,
                    child_visits: n
                        .children
                        .iter()
                        .flatten()
                        .map(|&c| nodes[c].visits)
                        .sum(),
                })
                .collect(),
            total_iterations: self.config.iters,
        };

        Ok(SearchOutcome {
            design: design.to_owned(),
            best_key,
            best_passes,
            best,
            baseline_key,
            baseline,
            iterations: self.config.iters,
            evaluations,
            cache_hits,
            total_eval_us,
            tree,
            trajectory,
        })
    }

    /// Evaluate one pass sequence, using the cache.
    fn eval_one(
        &self,
        aig: &Aig,
        passes: &[Pass],
        cache: &mut EvalCache,
        evaluations: &mut u64,
        cache_hits: &mut u64,
    ) -> Result<EvalOutcome, RecipeError> {
        let key = recipe_key(passes);
        if let Some(&hit) = cache.get(&key) {
            *cache_hits += 1;
            return Ok(hit);
        }
        let outcome = evaluate(&self.synthesizer, aig, passes)?;
        cache.insert(key, outcome);
        *evaluations += 1;
        Ok(outcome)
    }

    /// Evaluate a batch of distinct pass sequences across the
    /// configured workers, preserving order.
    fn eval_batch(
        &self,
        aig: &Aig,
        pending: &[(String, Vec<Pass>)],
    ) -> Result<Vec<EvalOutcome>, RecipeError> {
        let workers = self.config.effective_workers().min(pending.len().max(1));
        if workers <= 1 || pending.len() <= 1 {
            return pending
                .iter()
                .map(|(_, passes)| evaluate(&self.synthesizer, aig, passes))
                .collect();
        }
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = pending
                .chunks(pending.len().div_ceil(workers))
                .map(|chunk| {
                    let syn = &self.synthesizer;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(_, passes)| evaluate(syn, aig, passes))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("evaluation worker panicked"))
                .collect::<Vec<_>>()
        });
        results.into_iter().collect()
    }
}

/// Select a leaf: descend by integer UCB, expand the lowest-index
/// unvisited action, applying the visit increment (virtual loss)
/// immediately. Returns the root-to-leaf path.
fn select_path(nodes: &mut Vec<Node>, max_len: usize) -> Vec<usize> {
    let mut path = vec![0usize];
    let mut current = 0usize;
    loop {
        nodes[current].visits += 1;
        if nodes[current].passes.len() >= max_len {
            nodes[current].own_selections += 1;
            return path;
        }
        // Expand the first untried action.
        if let Some(slot) = nodes[current].children.iter().position(Option::is_none) {
            let mut passes = nodes[current].passes.clone();
            passes.push(ALPHABET[slot]);
            let child = nodes.len();
            nodes.push(Node::new(passes));
            nodes[current].children[slot] = Some(child);
            nodes[child].visits = 1;
            nodes[child].own_selections = 1;
            path.push(child);
            return path;
        }
        // Fully expanded: descend by UCB, ties to the lowest index.
        let parent_visits = nodes[current].visits;
        let mut best_slot = 0usize;
        let mut best_ucb = 0u64;
        for (slot, child) in nodes[current].children.iter().enumerate() {
            let child = child.expect("fully expanded");
            let u = ucb_ppm(nodes[child].reward_ppm, nodes[child].visits, parent_visits);
            if slot == 0 || u > best_ucb {
                best_ucb = u;
                best_slot = slot;
            }
        }
        current = nodes[current].children[best_slot].expect("fully expanded");
        path.push(current);
    }
}

/// Complete a leaf's prefix to a full rollout sequence with seeded
/// random suffix passes.
fn complete_rollout(mut passes: Vec<Pass>, max_len: usize, rng: &mut ChaCha8Rng) -> Vec<Pass> {
    let remaining = max_len - passes.len().min(max_len);
    if remaining > 0 {
        let extra = rng.gen_range(0..=remaining);
        for _ in 0..extra {
            passes.push(ALPHABET[rng.gen_range(0..ALPHABET.len())]);
        }
    }
    passes
}

/// Synthesize one pass sequence and replay its trace at 1/2/4/8 vCPUs.
fn evaluate(syn: &Synthesizer, aig: &Aig, passes: &[Pass]) -> Result<EvalOutcome, RecipeError> {
    let recipe = recipe_from_passes(passes)?;
    let (netlist, _, trace) = syn.run_traced(aig, &recipe, &ExecContext::with_vcpus(1))?;
    let mut runtime_ms = [0u64; 4];
    for (i, vcpus) in [1u32, 2, 4, 8].into_iter().enumerate() {
        let report = Synthesizer::report_from_trace(&trace, &ExecContext::with_vcpus(vcpus));
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            runtime_ms[i] = (report.runtime_secs * 1_000.0).round().max(0.0) as u64;
        }
    }
    Ok(EvalOutcome {
        cells: netlist.cell_count() as u64,
        depth: netlist.depth() as u64,
        runtime_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::generators;

    fn aig() -> Aig {
        generators::build_family("adder", 4).expect("known family")
    }

    #[test]
    fn integer_sqrt_is_exact_on_squares() {
        for v in [0u64, 1, 2, 3, 9, 10, 144, 1_000_000, u32::MAX as u64] {
            let s = isqrt(u128::from(v) * u128::from(v));
            assert_eq!(s, v);
        }
        assert_eq!(isqrt(8), 2);
        assert_eq!(isqrt(99), 9);
    }

    #[test]
    fn ucb_prefers_unvisited_like_scores_and_breaks_ties_low() {
        // Higher reward with equal visits wins.
        assert!(ucb_ppm(2 * PPM, 2, 10) > ucb_ppm(PPM, 2, 10));
        // More visits shrink exploration.
        assert!(ucb_ppm(PPM, 1, 10) > ucb_ppm(PPM, 5, 10));
    }

    #[test]
    fn same_seed_same_outcome() {
        let search = RecipeSearch::new(SearchConfig {
            iters: 24,
            ..SearchConfig::default()
        });
        let a = search.run("adder_4", &aig()).expect("search");
        let b = search.run("adder_4", &aig()).expect("search");
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_cannot_change_the_outcome() {
        let mut config = SearchConfig {
            iters: 24,
            ..SearchConfig::default()
        };
        let serial = RecipeSearch::new(config.clone()).run("adder_4", &aig()).expect("search");
        for workers in [2usize, 8] {
            config.workers = workers;
            let parallel = RecipeSearch::new(config.clone()).run("adder_4", &aig()).expect("search");
            assert_eq!(serial, parallel, "workers must only change wall-clock");
        }
    }

    #[test]
    fn visit_counts_are_conserved() {
        let search = RecipeSearch::new(SearchConfig {
            iters: 40,
            ..SearchConfig::default()
        });
        let out = search.run("adder_4", &aig()).expect("search");
        assert_eq!(out.tree.root_visits(), out.iterations);
        for (i, n) in out.tree.nodes.iter().enumerate() {
            assert_eq!(
                n.visits,
                n.own_selections + n.child_visits,
                "node {i} leaks visits"
            );
        }
    }

    #[test]
    fn warm_cache_changes_only_the_hit_counters() {
        let search = RecipeSearch::new(SearchConfig {
            iters: 24,
            ..SearchConfig::default()
        });
        let cold = search.run("adder_4", &aig()).expect("cold");
        let mut warm_cache = EvalCache::new();
        let first = search
            .run_with("adder_4", &aig(), &NoRecipeFaults, &mut warm_cache)
            .expect("warm-up");
        assert_eq!(cold, first, "explicit cache is the same as the implicit one");
        let warm = search
            .run_with("adder_4", &aig(), &NoRecipeFaults, &mut warm_cache)
            .expect("warm");
        assert_eq!(cold.tree, warm.tree, "cache must be transparent to the tree");
        assert_eq!(cold.best_key, warm.best_key);
        assert_eq!(cold.best, warm.best);
        assert_eq!(cold.trajectory, warm.trajectory);
        assert_eq!(warm.evaluations, 0, "everything is cached the second time");
    }

    #[test]
    fn stall_faults_change_accounting_but_not_the_tree() {
        struct StallAll;
        impl RecipeFaults for StallAll {
            fn eval_extra_us(&self, _iter: u64) -> u64 {
                10_000
            }
        }
        let search = RecipeSearch::new(SearchConfig {
            iters: 24,
            ..SearchConfig::default()
        });
        let nominal = search.run("adder_4", &aig()).expect("nominal");
        let stalled = search
            .run_with("adder_4", &aig(), &StallAll, &mut EvalCache::new())
            .expect("stalled");
        assert_eq!(nominal.tree, stalled.tree);
        assert_eq!(nominal.best_key, stalled.best_key);
        assert!(stalled.total_eval_us > nominal.total_eval_us);
    }
}
