//! Fault hooks for the recipe-search loop.
//!
//! The search consults the hook once per iteration when charging
//! simulated evaluation time. Faults stretch the *accounting* of an
//! evaluation — they never touch selection, expansion, or backup, so
//! the tree (and its visit-count conservation invariant) is identical
//! with or without an injected stall.

/// Fault injection points exposed by the recipe search.
///
/// Every answer must be a pure function of the queried iteration so
/// injection stays deterministic at any worker count.
pub trait RecipeFaults {
    /// Extra simulated microseconds charged to the evaluation performed
    /// at `iter` (0-based global iteration index). Return 0 for nominal
    /// behavior.
    fn eval_extra_us(&self, iter: u64) -> u64;
}

/// The null hook: no faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecipeFaults;

impl RecipeFaults for NoRecipeFaults {
    fn eval_extra_us(&self, _iter: u64) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hook_is_inert() {
        assert_eq!(NoRecipeFaults.eval_extra_us(0), 0);
        assert_eq!(NoRecipeFaults.eval_extra_us(u64::MAX), 0);
    }
}
