//! The byte-stable recipe-search report.
//!
//! Built from [`SearchOutcome`]s plus (optionally) the joint recipe ×
//! VM plans the serving tier produced for the searched designs. All
//! report state is integers or fixed-precision floats rendered in a
//! fixed key order, so the JSON is byte-identical for a given seed at
//! any worker count.

use crate::search::{SearchOutcome, TrajectoryPoint};
use std::fmt::Write as _;

/// The joint answer for one design: which recipe to synthesize with
/// and which VM shape to run each flow stage on.
#[derive(Debug, Clone, PartialEq)]
pub struct JointPlan {
    /// Canonical key of the chosen recipe.
    pub recipe: String,
    /// vCPUs per stage (synthesis, placement, routing, STA).
    pub vcpus: [u32; 4],
    /// Planned end-to-end runtime.
    pub total_runtime_secs: u64,
    /// Planned total cost.
    pub total_cost_usd: f64,
    /// The hybrid predictor's synthesis-runtime forecast (ms at
    /// 1/2/4/8 vCPUs) for the chosen recipe.
    pub predicted_synth_ms: [u64; 4],
}

/// Per-design section of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Design name.
    pub design: String,
    /// Best recipe found by the search.
    pub best_recipe: String,
    /// Its score (lower is better).
    pub best_score: u64,
    /// Its mapped cell count.
    pub best_cells: u64,
    /// Its mapped depth.
    pub best_depth: u64,
    /// Its synthesis runtime (ms at 1/2/4/8 vCPUs).
    pub best_runtime_ms: [u64; 4],
    /// The default production recipe it was judged against.
    pub baseline_recipe: String,
    /// The default recipe's score.
    pub baseline_score: u64,
    /// The default recipe's synthesis runtime (ms at 1/2/4/8 vCPUs).
    pub baseline_runtime_ms: [u64; 4],
    /// Synthesis evaluations actually run.
    pub evaluations: u64,
    /// Evaluations served from the cache.
    pub cache_hits: u64,
    /// Search-tree node count.
    pub tree_nodes: u64,
    /// Deepest tree node.
    pub tree_max_depth: u64,
    /// Root visit count (= iterations).
    pub tree_visits: u64,
    /// Total simulated evaluation time.
    pub total_eval_us: u64,
    /// Incumbent-improvement trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// The joint recipe × VM plan, when the serving tier produced one.
    pub plan: Option<JointPlan>,
}

impl DesignReport {
    /// Lift a search outcome into its report section (no plan yet).
    #[must_use]
    pub fn from_outcome(outcome: &SearchOutcome) -> Self {
        Self {
            design: outcome.design.clone(),
            best_recipe: outcome.best_key.clone(),
            best_score: outcome.best.score(),
            best_cells: outcome.best.cells,
            best_depth: outcome.best.depth,
            best_runtime_ms: outcome.best.runtime_ms,
            baseline_recipe: outcome.baseline_key.clone(),
            baseline_score: outcome.baseline.score(),
            baseline_runtime_ms: outcome.baseline.runtime_ms,
            evaluations: outcome.evaluations,
            cache_hits: outcome.cache_hits,
            tree_nodes: outcome.tree.node_count() as u64,
            tree_max_depth: u64::from(outcome.tree.max_depth()),
            tree_visits: outcome.tree.root_visits(),
            total_eval_us: outcome.total_eval_us,
            trajectory: outcome.trajectory.clone(),
            plan: None,
        }
    }

    /// Attach the joint plan.
    #[must_use]
    pub fn with_plan(mut self, plan: JointPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Whether the searched recipe beats the default on QoR score or
    /// on 4-vCPU runtime.
    #[must_use]
    pub fn beats_baseline(&self) -> bool {
        self.best_score < self.baseline_score
            || self.best_runtime_ms[2] < self.baseline_runtime_ms[2]
    }
}

/// The full recipe-search report.
#[derive(Debug, Clone, PartialEq)]
pub struct RecipeReport {
    /// Search seed.
    pub seed: u64,
    /// MCTS iterations per design.
    pub iters: u64,
    /// Per-design sections, in scenario order.
    pub designs: Vec<DesignReport>,
}

impl RecipeReport {
    /// How many designs' searched recipes beat the default recipe.
    #[must_use]
    pub fn improved_designs(&self) -> usize {
        self.designs.iter().filter(|d| d.beats_baseline()).count()
    }

    /// Canonical single-line JSON with a fixed key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let _ = write!(s, "\"iters\":{},", self.iters);
        let _ = write!(s, "\"improved_designs\":{},", self.improved_designs());
        s.push_str("\"designs\":[");
        for (i, d) in self.designs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            let _ = write!(s, "\"design\":\"{}\",", d.design);
            let _ = write!(s, "\"best_recipe\":\"{}\",", d.best_recipe);
            let _ = write!(s, "\"best_score\":{},", d.best_score);
            let _ = write!(s, "\"best_cells\":{},", d.best_cells);
            let _ = write!(s, "\"best_depth\":{},", d.best_depth);
            let _ = write!(s, "\"best_runtime_ms\":{},", fmt_u64s(&d.best_runtime_ms));
            let _ = write!(s, "\"baseline_recipe\":\"{}\",", d.baseline_recipe);
            let _ = write!(s, "\"baseline_score\":{},", d.baseline_score);
            let _ = write!(
                s,
                "\"baseline_runtime_ms\":{},",
                fmt_u64s(&d.baseline_runtime_ms)
            );
            let _ = write!(s, "\"evaluations\":{},", d.evaluations);
            let _ = write!(s, "\"cache_hits\":{},", d.cache_hits);
            let _ = write!(s, "\"tree_nodes\":{},", d.tree_nodes);
            let _ = write!(s, "\"tree_max_depth\":{},", d.tree_max_depth);
            let _ = write!(s, "\"tree_visits\":{},", d.tree_visits);
            let _ = write!(s, "\"total_eval_us\":{},", d.total_eval_us);
            s.push_str("\"trajectory\":[");
            for (j, p) in d.trajectory.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"iter\":{},\"recipe\":\"{}\",\"score\":{}}}",
                    p.iter, p.key, p.score
                );
            }
            s.push_str("],");
            match &d.plan {
                Some(p) => {
                    let _ = write!(
                        s,
                        "\"plan\":{{\"recipe\":\"{}\",\"vcpus\":{},\"total_runtime_secs\":{},\
                         \"total_cost_usd\":{},\"predicted_synth_ms\":{}}}",
                        p.recipe,
                        fmt_u32s(&p.vcpus),
                        p.total_runtime_secs,
                        fmt_f64(p.total_cost_usd),
                        fmt_u64s(&p.predicted_synth_ms)
                    );
                }
                None => s.push_str("\"plan\":null"),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Fixed-precision float rendering, matching the serve report.
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

fn fmt_u64s(vs: &[u64]) -> String {
    let parts: Vec<String> = vs.iter().map(ToString::to_string).collect();
    format!("[{}]", parts.join(","))
}

fn fmt_u32s(vs: &[u32]) -> String {
    let parts: Vec<String> = vs.iter().map(ToString::to_string).collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RecipeReport {
        RecipeReport {
            seed: 7,
            iters: 64,
            designs: vec![DesignReport {
                design: "adder_6".into(),
                best_recipe: "rewrite".into(),
                best_score: 900,
                best_cells: 80,
                best_depth: 9,
                best_runtime_ms: [40, 30, 20, 18],
                baseline_recipe: "balance;rewrite;refactor(2)".into(),
                baseline_score: 1_000,
                baseline_runtime_ms: [50, 36, 25, 22],
                evaluations: 12,
                cache_hits: 52,
                tree_nodes: 31,
                tree_max_depth: 4,
                tree_visits: 64,
                total_eval_us: 14_600,
                trajectory: vec![TrajectoryPoint {
                    iter: 3,
                    key: "rewrite".into(),
                    score: 900,
                }],
                plan: Some(JointPlan {
                    recipe: "rewrite".into(),
                    vcpus: [4, 8, 2, 1],
                    total_runtime_secs: 120,
                    total_cost_usd: 0.125,
                    predicted_synth_ms: [41, 29, 21, 19],
                }),
            }],
        }
    }

    #[test]
    fn json_is_canonical_and_stable() {
        let r = sample_report();
        let json = r.to_json();
        assert_eq!(json, r.clone().to_json());
        assert!(json.starts_with("{\"seed\":7,\"iters\":64,\"improved_designs\":1,"));
        assert!(json.contains("\"plan\":{\"recipe\":\"rewrite\",\"vcpus\":[4,8,2,1]"));
        assert!(json.contains("\"total_cost_usd\":0.125000"));
        assert!(json.ends_with("}]}"));
    }

    #[test]
    fn missing_plan_serializes_as_null() {
        let mut r = sample_report();
        r.designs[0].plan = None;
        assert!(r.to_json().contains("\"plan\":null"));
        assert_eq!(r.improved_designs(), 1);
    }

    #[test]
    fn beats_baseline_on_score_or_runtime() {
        let mut d = sample_report().designs.remove(0);
        assert!(d.beats_baseline());
        d.best_score = d.baseline_score;
        d.best_runtime_ms = d.baseline_runtime_ms;
        assert!(!d.beats_baseline());
        d.best_runtime_ms[2] = d.baseline_runtime_ms[2] - 1;
        assert!(d.beats_baseline());
    }
}
