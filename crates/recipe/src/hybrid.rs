//! The LOSTIN-style hybrid (design, recipe) → runtime predictor.
//!
//! A frozen, seeded two-layer GCN embeds the design graph (mean-pooled
//! node activations); the embedding is concatenated with the
//! deterministic positional recipe encoding ([`crate::encode`]) and
//! pushed through a small trainable dense head that regresses the
//! log-runtime of the synthesis stage at 1/2/4/8 vCPUs. Training
//! reuses the existing [`Trainer`] hyperparameters (epochs, Adam
//! learning rate, seed) and mirrors its seeded-shuffle semantics, so a
//! fit is bit-identical across runs and worker counts. Snapshots use a
//! versioned text format (`recipe-hybrid-predictor v1`) with an FNV-1a
//! checksum footer, so serving tiers can canary it like any other
//! model and any single-bit corruption is rejected at load.

use crate::encode::{encode_recipe, ENCODING_DIM};
use crate::RecipeError;
use eda_cloud_flow::Pass;
use eda_cloud_gcn::{saturating_exp, Adam, DenseLayer, GcnLayer, GraphSample, Matrix, Trainer};
use eda_cloud_netlist::FEATURE_DIM;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Width of the pooled design embedding.
pub const EMBED_DIM: usize = 12;

/// Hidden width of the trainable dense head.
pub const HIDDEN_DIM: usize = 16;

/// Snapshot format header.
const SNAPSHOT_HEADER: &str = "recipe-hybrid-predictor v1";

/// One training sample: a design embedding, a recipe, and the
/// ground-truth log-runtimes of the synthesis stage.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSample {
    /// Design name (bookkeeping only).
    pub design: String,
    /// Pooled design embedding ([`HybridPredictor::embed`]).
    pub embedding: Vec<f64>,
    /// The recipe's pass sequence.
    pub passes: Vec<Pass>,
    /// `ln(runtime_secs)` at 1/2/4/8 vCPUs.
    pub log_targets: [f64; 4],
}

/// The hybrid predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridPredictor {
    seed: u64,
    gcn1: GcnLayer,
    gcn2: GcnLayer,
    head1: DenseLayer,
    head2: DenseLayer,
}

impl HybridPredictor {
    /// Xavier-initialize all layers from one ChaCha8 stream. The two
    /// GCN layers are frozen after this — they act as a fixed, seeded
    /// graph projection shared by every recipe — so two predictors
    /// seeded alike embed designs bit-identically forever.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4C05_71A1);
        Self {
            seed,
            gcn1: GcnLayer::new(FEATURE_DIM, EMBED_DIM, &mut rng),
            gcn2: GcnLayer::new(EMBED_DIM, EMBED_DIM, &mut rng),
            head1: DenseLayer::new(EMBED_DIM + ENCODING_DIM, HIDDEN_DIM, &mut rng),
            head2: DenseLayer::new(HIDDEN_DIM, 4, &mut rng),
        }
    }

    /// The initialization seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mean-pooled design embedding from the frozen GCN stack.
    #[must_use]
    pub fn embed(&self, sample: &GraphSample) -> Vec<f64> {
        let h1 = self.gcn1.infer(&sample.a_norm, &sample.features);
        let h2 = self.gcn2.infer(&sample.a_norm, &h1);
        let n = h2.rows().max(1) as f64;
        let sums = h2.sum_rows();
        (0..EMBED_DIM).map(|c| sums.get(0, c) / n).collect()
    }

    /// Predicted `ln(runtime_secs)` at 1/2/4/8 vCPUs for a (design
    /// embedding, recipe) pair.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures ([`RecipeError::UnknownPass`],
    /// [`RecipeError::RecipeTooLong`]).
    pub fn predict_log(&self, embedding: &[f64], passes: &[Pass]) -> Result<[f64; 4], RecipeError> {
        let x = self.input_row(embedding, passes)?;
        let h = self.head1.infer(&x).relu();
        let y = self.head2.infer(&h);
        Ok([y.get(0, 0), y.get(0, 1), y.get(0, 2), y.get(0, 3)])
    }

    /// Predicted runtimes in seconds (overflow-saturated exp of
    /// [`HybridPredictor::predict_log`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HybridPredictor::predict_log`].
    pub fn predict_secs(&self, embedding: &[f64], passes: &[Pass]) -> Result<[f64; 4], RecipeError> {
        Ok(self.predict_log(embedding, passes)?.map(saturating_exp))
    }

    /// Fit the dense head on `samples` using the trainer's epochs,
    /// Adam learning rate, and seed (the GCN stack stays frozen).
    /// Returns the final epoch's mean squared error.
    ///
    /// Deterministic: sample order is shuffled with the trainer's
    /// seeded ChaCha8 stream (the same `seed ^ 0xE70C` derivation the
    /// GCN trainer uses) and updates are applied one sample at a time
    /// in that order.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures from malformed samples.
    pub fn fit(&mut self, samples: &[HybridSample], trainer: &Trainer) -> Result<f64, RecipeError> {
        if samples.is_empty() {
            return Ok(0.0);
        }
        let rows: Vec<Matrix> = samples
            .iter()
            .map(|s| self.input_row(&s.embedding, &s.passes))
            .collect::<Result<_, _>>()?;
        let mut rng = ChaCha8Rng::seed_from_u64(trainer.seed ^ 0xE70C);
        let mut adam_w1 = Adam::new(self.head1.w.rows(), self.head1.w.cols());
        let mut adam_b1 = Adam::new(1, HIDDEN_DIM);
        let mut adam_w2 = Adam::new(self.head2.w.rows(), self.head2.w.cols());
        let mut adam_b2 = Adam::new(1, 4);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_mse = 0.0;
        for _ in 0..trainer.epochs {
            shuffle(&mut order, &mut rng);
            let mut epoch_se = 0.0;
            for &i in &order {
                let x = &rows[i];
                let (h_pre, cache1) = self.head1.forward(x);
                let h = h_pre.relu();
                let (y, cache2) = self.head2.forward(&h);
                let mut grad_y = Matrix::zeros(1, 4);
                for c in 0..4 {
                    let err = y.get(0, c) - samples[i].log_targets[c];
                    epoch_se += err * err;
                    grad_y.set(0, c, 2.0 * err / 4.0);
                }
                let (g2, dh) = self.head2.backward(&cache2, &grad_y);
                let dh_pre = dh.relu_backward(&h_pre);
                let (g1, _) = self.head1.backward(&cache1, &dh_pre);
                adam_w2.step(&mut self.head2.w, &g2.dw, trainer.lr);
                adam_b2.step(&mut self.head2.bias, &g2.dbias, trainer.lr);
                adam_w1.step(&mut self.head1.w, &g1.dw, trainer.lr);
                adam_b1.step(&mut self.head1.bias, &g1.dbias, trainer.lr);
            }
            last_mse = epoch_se / (samples.len() * 4) as f64;
        }
        Ok(last_mse)
    }

    /// Canonical snapshot text: versioned header, dimensions, every
    /// tensor row-major in round-trippable `{v:e}` notation, and an
    /// FNV-1a checksum footer over everything above it.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!(
            "dims {} {} {} {} 4\n",
            FEATURE_DIM, EMBED_DIM, ENCODING_DIM, HIDDEN_DIM
        ));
        for (name, tensor) in self.tensors() {
            out.push_str(&format!("tensor {name} {} {}\n", tensor.rows(), tensor.cols()));
            for r in 0..tensor.rows() {
                let row: Vec<String> = (0..tensor.cols())
                    .map(|c| format!("{:e}", tensor.get(r, c)))
                    .collect();
                out.push_str(&row.join(" "));
                out.push('\n');
            }
        }
        let checksum = fnv1a(out.as_bytes());
        out.push_str(&format!("checksum {checksum:016x}\n"));
        out
    }

    /// Parse a snapshot produced by [`HybridPredictor::to_text`],
    /// verifying the checksum before anything else.
    ///
    /// # Errors
    ///
    /// [`RecipeError::Snapshot`] on a missing/mismatched checksum, a
    /// wrong header, unexpected dimensions, or malformed tensor data —
    /// any single-bit corruption lands in one of these.
    pub fn from_text(text: &str) -> Result<Self, RecipeError> {
        let snapshot_err = |message: &str| RecipeError::Snapshot {
            message: message.to_owned(),
        };
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| snapshot_err("missing checksum footer"))?;
        let (body, footer) = text.split_at(body_end);
        let stated = footer
            .trim_end()
            .strip_prefix("checksum ")
            .ok_or_else(|| snapshot_err("malformed checksum footer"))?;
        let stated = u64::from_str_radix(stated, 16)
            .map_err(|_| snapshot_err("checksum is not 16 hex digits"))?;
        if fnv1a(body.as_bytes()) != stated {
            return Err(snapshot_err("checksum mismatch — snapshot is corrupt"));
        }
        let mut lines = body.lines();
        if lines.next() != Some(SNAPSHOT_HEADER) {
            return Err(snapshot_err("unknown header (expected recipe-hybrid-predictor v1)"));
        }
        let seed_line = lines.next().ok_or_else(|| snapshot_err("missing seed"))?;
        let seed: u64 = seed_line
            .strip_prefix("seed ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| snapshot_err("malformed seed line"))?;
        let dims_line = lines.next().ok_or_else(|| snapshot_err("missing dims"))?;
        let expected_dims = format!(
            "dims {} {} {} {} 4",
            FEATURE_DIM, EMBED_DIM, ENCODING_DIM, HIDDEN_DIM
        );
        if dims_line != expected_dims {
            return Err(snapshot_err("dimension mismatch with this build"));
        }
        let mut predictor = Self::seeded(seed);
        let shapes: Vec<(String, usize, usize)> = predictor
            .tensors()
            .iter()
            .map(|(n, t)| ((*n).to_owned(), t.rows(), t.cols()))
            .collect();
        let mut parsed: Vec<Matrix> = Vec::with_capacity(shapes.len());
        for (name, rows, cols) in &shapes {
            let header = lines
                .next()
                .ok_or_else(|| snapshot_err("truncated snapshot"))?;
            if header != format!("tensor {name} {rows} {cols}") {
                return Err(snapshot_err(&format!("unexpected tensor header `{header}`")));
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..*rows {
                let line = lines
                    .next()
                    .ok_or_else(|| snapshot_err("truncated tensor data"))?;
                let values: Vec<f64> = line
                    .split(' ')
                    .map(str::parse)
                    .collect::<Result<_, _>>()
                    .map_err(|_| snapshot_err(&format!("malformed value in tensor {name}")))?;
                if values.len() != *cols {
                    return Err(snapshot_err(&format!("wrong column count in tensor {name}")));
                }
                data.extend(values);
            }
            parsed.push(Matrix::from_vec(*rows, *cols, data));
        }
        if lines.next().is_some() {
            return Err(snapshot_err("trailing data after tensors"));
        }
        let mut parsed = parsed.into_iter();
        predictor.gcn1.w = parsed.next().expect("shape list");
        predictor.gcn1.b = parsed.next().expect("shape list");
        predictor.gcn2.w = parsed.next().expect("shape list");
        predictor.gcn2.b = parsed.next().expect("shape list");
        predictor.head1.w = parsed.next().expect("shape list");
        predictor.head1.bias = parsed.next().expect("shape list");
        predictor.head2.w = parsed.next().expect("shape list");
        predictor.head2.bias = parsed.next().expect("shape list");
        Ok(predictor)
    }

    /// Concatenate embedding and recipe encoding into a 1-row input.
    fn input_row(&self, embedding: &[f64], passes: &[Pass]) -> Result<Matrix, RecipeError> {
        let encoding = encode_recipe(passes)?;
        let mut data = Vec::with_capacity(EMBED_DIM + ENCODING_DIM);
        data.extend_from_slice(embedding);
        data.resize(EMBED_DIM, 0.0);
        data.extend_from_slice(&encoding);
        Ok(Matrix::from_vec(1, EMBED_DIM + ENCODING_DIM, data))
    }

    /// Tensors in canonical snapshot order.
    fn tensors(&self) -> [(&'static str, &Matrix); 8] {
        [
            ("gcn1.w", &self.gcn1.w),
            ("gcn1.b", &self.gcn1.b),
            ("gcn2.w", &self.gcn2.w),
            ("gcn2.b", &self.gcn2.b),
            ("head1.w", &self.head1.w),
            ("head1.bias", &self.head1.bias),
            ("head2.w", &self.head2.w),
            ("head2.bias", &self.head2.bias),
        ]
    }
}

/// Fisher–Yates with the caller's stream (matches the GCN trainer's
/// shuffle semantics).
fn shuffle(order: &mut [usize], rng: &mut ChaCha8Rng) {
    use rand::Rng;
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::DEFAULT_PASSES;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample() -> GraphSample {
        let aig = generators::build_family("adder", 4).expect("family");
        GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4])
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = HybridPredictor::seeded(7);
        let b = HybridPredictor::seeded(7);
        assert_eq!(a, b);
        assert_ne!(a, HybridPredictor::seeded(8));
        let s = sample();
        assert_eq!(a.embed(&s), b.embed(&s));
    }

    #[test]
    fn fit_learns_a_constant_target() {
        let mut p = HybridPredictor::seeded(7);
        let s = sample();
        let emb = p.embed(&s);
        let samples = vec![HybridSample {
            design: "adder_4".into(),
            embedding: emb.clone(),
            passes: DEFAULT_PASSES.to_vec(),
            log_targets: [1.0, 0.5, 0.2, 0.1],
        }];
        let trainer = Trainer {
            epochs: 400,
            lr: 1e-2,
            ..Trainer::fast()
        };
        let mse = p.fit(&samples, &trainer).expect("fit");
        assert!(mse < 1e-3, "single sample should be memorized, mse={mse}");
        let pred = p.predict_log(&emb, &DEFAULT_PASSES).expect("predict");
        assert!((pred[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn fit_is_deterministic() {
        let s = sample();
        let trainer = Trainer {
            epochs: 20,
            ..Trainer::fast()
        };
        let run = || {
            let mut p = HybridPredictor::seeded(7);
            let emb = p.embed(&s);
            let samples: Vec<HybridSample> = crate::encode::candidate_recipes()
                .into_iter()
                .enumerate()
                .map(|(i, passes)| HybridSample {
                    design: format!("d{i}"),
                    embedding: emb.clone(),
                    passes,
                    log_targets: [i as f64 * 0.1, 0.0, -0.1, -0.2],
                })
                .collect();
            p.fit(&samples, &trainer).expect("fit");
            p
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut p = HybridPredictor::seeded(7);
        let s = sample();
        let emb = p.embed(&s);
        let samples = vec![HybridSample {
            design: "adder_4".into(),
            embedding: emb.clone(),
            passes: DEFAULT_PASSES.to_vec(),
            log_targets: [1.0, 0.5, 0.2, 0.1],
        }];
        p.fit(&samples, &Trainer::fast()).expect("fit");
        let text = p.to_text();
        let reloaded = HybridPredictor::from_text(&text).expect("canonical text parses");
        assert_eq!(p, reloaded);
        assert_eq!(
            p.predict_log(&emb, &DEFAULT_PASSES).expect("predict"),
            reloaded.predict_log(&emb, &DEFAULT_PASSES).expect("predict"),
        );
        assert_eq!(text, reloaded.to_text(), "canonical form is a fixed point");
    }

    #[test]
    fn every_single_bit_corruption_is_rejected() {
        let p = HybridPredictor::seeded(3);
        let text = p.to_text();
        let bytes = text.as_bytes();
        // Sample positions across the whole snapshot (header, tensor
        // data, checksum footer) and flip one bit at each.
        let step = (bytes.len() / 64).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0u8, 3, 7] {
                let mut corrupt = bytes.to_vec();
                corrupt[pos] ^= 1 << bit;
                let Ok(corrupt_text) = String::from_utf8(corrupt) else {
                    continue; // Invalid UTF-8 cannot even reach the parser.
                };
                if corrupt_text == text {
                    continue;
                }
                assert!(
                    HybridPredictor::from_text(&corrupt_text).is_err(),
                    "bit {bit} at byte {pos} slipped through"
                );
            }
        }
    }

    #[test]
    fn different_recipes_predict_differently() {
        let p = HybridPredictor::seeded(7);
        let s = sample();
        let emb = p.embed(&s);
        let a = p.predict_secs(&emb, &DEFAULT_PASSES).expect("predict");
        let b = p.predict_secs(&emb, &[Pass::Sweep]).expect("predict");
        assert_ne!(a, b, "the recipe encoding must reach the output");
        assert!(a.iter().all(|&v| v > 0.0));
    }
}
