//! Deterministic synthesis-recipe search with a LOSTIN-style hybrid
//! predictor and joint recipe × VM planning inputs.
//!
//! Three parts, mirroring "Developing Synthesis Flows Without Human
//! Knowledge" (Yu et al.) and "LOSTIN" (Wu et al.) on top of this
//! workspace's cloud-deployment substrate:
//!
//! * [`search`] — a seeded MCTS agent over [`eda_cloud_flow::Pass`]
//!   sequences. Integer fixed-point UCB, canonical tie-breaking, a
//!   keyed evaluation cache, and batched pure evaluations make the
//!   search tree — and the emitted [`RecipeReport`] — byte-identical
//!   at any worker count.
//! * [`hybrid`] — a hybrid (design, recipe) → runtime predictor: a
//!   frozen seeded GCN design embedding concatenated with a positional
//!   recipe encoding through a small trainable dense head, snapshot-
//!   versioned as `recipe-hybrid-predictor v1` with a checksum footer.
//! * [`report`] — the byte-stable [`RecipeReport`], including the
//!   joint (recipe, VM plan) answer per design once the serving tier
//!   has planned over the candidate set.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_recipe::{RecipeSearch, SearchConfig};
//! use eda_cloud_netlist::generators;
//!
//! let aig = generators::build_family("adder", 4).unwrap();
//! let search = RecipeSearch::new(SearchConfig { iters: 8, ..SearchConfig::default() });
//! let outcome = search.run("adder_4", &aig)?;
//! assert_eq!(outcome.tree.root_visits(), 8);
//! # Ok::<(), eda_cloud_recipe::RecipeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encode;
mod error;
mod faults;
pub mod hybrid;
pub mod report;
pub mod search;

pub use encode::{
    candidate_recipes, encode_recipe, pass_index, recipe_from_passes, recipe_key, ALPHABET,
    DEFAULT_PASSES, ENCODING_DIM, MAX_RECIPE_LEN,
};
pub use error::RecipeError;
pub use faults::{NoRecipeFaults, RecipeFaults};
pub use hybrid::{HybridPredictor, HybridSample, EMBED_DIM, HIDDEN_DIM};
pub use report::{DesignReport, JointPlan, RecipeReport};
pub use search::{
    EvalCache, EvalOutcome, NodeStat, RecipeSearch, SearchConfig, SearchOutcome, TrajectoryPoint,
    TreeStats, PPM,
};
