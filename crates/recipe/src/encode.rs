//! The search alphabet and the deterministic recipe-sequence encoding.
//!
//! LOSTIN-style: a recipe is encoded as a fixed-width positional
//! vector — for each of [`MAX_RECIPE_LEN`] slots, a one-hot over the
//! pass alphabet plus one position feature (the slot's fractional
//! position within the recipe). The encoding is a pure function of the
//! pass list, so the hybrid predictor's input — and therefore its
//! output — is bit-identical across runs and worker counts.

use crate::RecipeError;
use eda_cloud_flow::{Pass, Recipe};

/// The pass alphabet the search agent composes recipes from.
///
/// Two refactor seeds are distinct actions: they preserve function but
/// restructure differently, so the search can exploit either.
pub const ALPHABET: [Pass; 5] = [
    Pass::Balance,
    Pass::Rewrite,
    Pass::Refactor(2),
    Pass::Refactor(5),
    Pass::Sweep,
];

/// Longest recipe the positional encoder can represent (and the upper
/// bound on search depth).
pub const MAX_RECIPE_LEN: usize = 6;

/// Width of one positional slot: one-hot over the alphabet + 1
/// position feature.
pub const SLOT_DIM: usize = ALPHABET.len() + 1;

/// Total encoding width.
pub const ENCODING_DIM: usize = MAX_RECIPE_LEN * SLOT_DIM;

/// The default production recipe every searched recipe is judged
/// against: `balance;rewrite;refactor(2)`.
pub const DEFAULT_PASSES: [Pass; 3] = [Pass::Balance, Pass::Rewrite, Pass::Refactor(2)];

/// Index of `pass` in [`ALPHABET`], if it is an alphabet member.
#[must_use]
pub fn pass_index(pass: Pass) -> Option<usize> {
    ALPHABET.iter().position(|&p| p == pass)
}

/// Canonical `;`-joined key for a pass sequence, e.g.
/// `balance;rewrite;refactor(2)`. The empty sequence renders as `raw`.
#[must_use]
pub fn recipe_key(passes: &[Pass]) -> String {
    if passes.is_empty() {
        return "raw".to_owned();
    }
    passes
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(";")
}

/// Build a [`Recipe`] named by its canonical key. The empty sequence
/// maps to [`Recipe::raw`] (the sanctioned pass-free baseline).
///
/// # Errors
///
/// Propagates [`eda_cloud_flow::FlowError`] from recipe construction
/// (unreachable for non-empty sequences, kept typed for composition).
pub fn recipe_from_passes(passes: &[Pass]) -> Result<Recipe, RecipeError> {
    if passes.is_empty() {
        return Ok(Recipe::raw());
    }
    Ok(Recipe::new(recipe_key(passes), passes.to_vec())?)
}

/// Encode a pass sequence into the fixed [`ENCODING_DIM`]-wide vector.
///
/// Slot `i` holds the one-hot of `passes[i]` and, in its last lane, the
/// position feature `(i + 1) / len`. Unused slots are all-zero.
///
/// # Errors
///
/// - [`RecipeError::RecipeTooLong`] when the sequence exceeds
///   [`MAX_RECIPE_LEN`].
/// - [`RecipeError::UnknownPass`] when a pass is outside [`ALPHABET`].
pub fn encode_recipe(passes: &[Pass]) -> Result<Vec<f64>, RecipeError> {
    if passes.len() > MAX_RECIPE_LEN {
        return Err(RecipeError::RecipeTooLong {
            len: passes.len(),
            max: MAX_RECIPE_LEN,
        });
    }
    let mut out = vec![0.0; ENCODING_DIM];
    let len = passes.len();
    for (i, &pass) in passes.iter().enumerate() {
        let Some(j) = pass_index(pass) else {
            return Err(RecipeError::UnknownPass {
                pass: pass.to_string(),
            });
        };
        out[i * SLOT_DIM + j] = 1.0;
        out[i * SLOT_DIM + SLOT_DIM - 1] = (i + 1) as f64 / len as f64;
    }
    Ok(out)
}

/// The candidate set joint planning ranks with the hybrid predictor:
/// the default production recipe plus a spread of alphabet
/// compositions. Deterministic order; the default recipe is always
/// index 0.
#[must_use]
pub fn candidate_recipes() -> Vec<Vec<Pass>> {
    vec![
        DEFAULT_PASSES.to_vec(),
        vec![Pass::Balance, Pass::Rewrite],
        vec![Pass::Rewrite],
        vec![Pass::Sweep, Pass::Balance],
        vec![Pass::Refactor(2), Pass::Balance],
        vec![Pass::Refactor(5), Pass::Rewrite, Pass::Balance],
        vec![Pass::Balance, Pass::Rewrite, Pass::Refactor(2), Pass::Balance, Pass::Rewrite],
        vec![Pass::Sweep, Pass::Rewrite, Pass::Refactor(5)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_canonical() {
        assert_eq!(recipe_key(&[]), "raw");
        assert_eq!(recipe_key(&DEFAULT_PASSES), "balance;rewrite;refactor(2)");
    }

    #[test]
    fn encoding_is_one_hot_with_position() {
        let v = encode_recipe(&[Pass::Rewrite, Pass::Sweep]).expect("encodable");
        assert_eq!(v.len(), ENCODING_DIM);
        // Slot 0: rewrite one-hot at lane 1, position 1/2.
        assert_eq!(v[1], 1.0);
        assert_eq!(v[SLOT_DIM - 1], 0.5);
        // Slot 1: sweep one-hot at lane 4, position 2/2.
        assert_eq!(v[SLOT_DIM + 4], 1.0);
        assert_eq!(v[2 * SLOT_DIM - 1], 1.0);
        // Remaining slots all-zero.
        assert!(v[2 * SLOT_DIM..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn encoding_rejects_out_of_alphabet_and_overlong() {
        let e = encode_recipe(&[Pass::Refactor(99)]).expect_err("unknown refactor seed");
        assert!(matches!(e, RecipeError::UnknownPass { .. }));
        let long = vec![Pass::Balance; MAX_RECIPE_LEN + 1];
        let e = encode_recipe(&long).expect_err("too long");
        assert!(matches!(e, RecipeError::RecipeTooLong { .. }));
    }

    #[test]
    fn candidates_start_with_the_default_recipe() {
        let c = candidate_recipes();
        assert_eq!(c[0], DEFAULT_PASSES.to_vec());
        assert!(c.iter().all(|p| !p.is_empty() && p.len() <= MAX_RECIPE_LEN));
        assert!(c.iter().all(|p| encode_recipe(p).is_ok()));
    }

    #[test]
    fn recipe_from_passes_round_trips() {
        let r = recipe_from_passes(&DEFAULT_PASSES).expect("valid");
        assert_eq!(r.name(), "balance;rewrite;refactor(2)");
        assert_eq!(r.passes(), DEFAULT_PASSES);
        assert_eq!(recipe_from_passes(&[]).expect("raw").name(), "raw");
    }
}
