//! `eda-cloud` — end-to-end workflow for cost-efficient deployment of EDA
//! workloads on the cloud.
//!
//! This is the umbrella crate of the workspace reproducing
//! *"Characterizing and Optimizing EDA Flows for the Cloud"* (DATE 2021).
//! It re-exports every subsystem under one roof so examples and
//! downstream users need a single dependency:
//!
//! * [`tech`] — synthetic standard-cell library.
//! * [`netlist`] — AIG / netlist substrate and benchmark generators.
//! * [`flow`] — synthesis, placement, routing, and STA engines.
//! * [`perf`] — performance-counter and machine-execution models.
//! * [`cloud`] — instance catalog, pricing, provisioning.
//! * [`engine`] — deterministic discrete-event substrate: the
//!   `(time, seq)` event heap, checked simulated-time arithmetic,
//!   sharded multi-region simulation with a conservative lookahead
//!   barrier, and per-tenant weighted fair-share admission.
//! * [`gcn`] — the runtime-prediction Graph Convolutional Network.
//! * [`mckp`] — the multi-choice-knapsack deployment optimizer.
//! * [`fleet`] — deterministic discrete-event fleet simulator.
//! * [`serve`] — deterministic online prediction & planning service.
//! * [`ingest`] — validating front door for external netlists: BLIF,
//!   structural Verilog, and Bookshelf parsers, canonical
//!   fingerprinting, quota enforcement, and OOD gating.
//! * [`recipe`] — deterministic synthesis-recipe search (seeded MCTS)
//!   with a LOSTIN-style hybrid QoR/runtime predictor for joint
//!   recipe × VM planning.
//! * [`lifecycle`] — drift detection, shadow retraining, canary rollout.
//! * [`simtest`] — seeded fault injection, invariant checking, and
//!   fault-plan shrinking over the fleet/serve/lifecycle loops.
//! * [`trace`] — deterministic structured tracing and metrics.
//! * [`core`] — the Figure-1 pipeline tying everything together.
//!
//! # Quick start
//!
//! ```
//! use eda_cloud::core::{CharacterizationConfig, Workflow};
//!
//! let workflow = Workflow::with_defaults();
//! let design = eda_cloud::netlist::generators::openpiton_design("dynamic_node").unwrap();
//! let report = workflow.characterize_design(&design, &CharacterizationConfig::fast())?;
//! assert_eq!(report.stages.len(), 4);
//! # Ok::<(), eda_cloud::core::WorkflowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eda_cloud_cloud as cloud;
pub use eda_cloud_core as core;
pub use eda_cloud_engine as engine;
pub use eda_cloud_fleet as fleet;
pub use eda_cloud_flow as flow;
pub use eda_cloud_gcn as gcn;
pub use eda_cloud_ingest as ingest;
pub use eda_cloud_lifecycle as lifecycle;
pub use eda_cloud_mckp as mckp;
pub use eda_cloud_netlist as netlist;
pub use eda_cloud_perf as perf;
pub use eda_cloud_recipe as recipe;
pub use eda_cloud_serve as serve;
pub use eda_cloud_simtest as simtest;
pub use eda_cloud_tech as tech;
pub use eda_cloud_trace as trace;
